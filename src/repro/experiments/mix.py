"""Dynamic instruction-mix characterization of the benchmark suite.

Not a table in the paper, but the standard workload-characterization
companion: per benchmark, the percentage of dynamic instructions in each
class.  Useful for sanity-checking that the analogues have benchmark-like
instruction profiles (non-numeric C code: ~20-30% memory, ~15-20% branch;
numeric FORTRAN: heavy FP + memory, sparse branches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import SUITE
from repro.experiments.runner import SuiteRunner, TextTable
from repro.isa import OpKind
from repro.vm import iter_trace_chunks

#: Reported classes, in column order.
CLASSES = ("alu", "fpu", "load", "store", "branch", "jump", "call/ret", "other")


def _classify(kind: OpKind, is_return: bool) -> str:
    if kind is OpKind.ALU:
        return "alu"
    if kind is OpKind.FPU:
        return "fpu"
    if kind is OpKind.LOAD:
        return "load"
    if kind is OpKind.STORE:
        return "store"
    if kind is OpKind.BRANCH:
        return "branch"
    if kind is OpKind.JUMP:
        return "jump"
    if kind in (OpKind.CALL, OpKind.JALR) or is_return:
        return "call/ret"
    if kind is OpKind.JR:  # computed jump
        return "jump"
    return "other"


@dataclass
class InstructionMix:
    rows: dict[str, dict[str, float]]  # program -> class -> percent

    def render(self) -> str:
        table = TextTable(
            headers=["Program"] + [f"{c}%" for c in CLASSES],
            title="Dynamic instruction mix",
        )
        for name, mix in self.rows.items():
            table.add(name, *[mix[c] for c in CLASSES])
        return table.render()


def requirements(config) -> list:
    """Farm requests: a trace for every benchmark."""
    from repro.jobs import TraceRequest

    return [TraceRequest(name) for name in SUITE]


def run(runner: SuiteRunner) -> InstructionMix:
    rows: dict[str, dict[str, float]] = {}
    for name in SUITE:
        bench_run = runner.run(name)
        program = bench_run.analyzer.program
        class_of_pc = [
            _classify(instr.kind, instr.is_return)
            for instr in program.instructions
        ]
        counts = {c: 0 for c in CLASSES}
        total = 0
        # Chunk-wise so cached traces stream from disk instead of
        # materializing (the mix is a pure per-record histogram).
        for pcs, _addrs, _takens in iter_trace_chunks(bench_run.trace_source()):
            total += len(pcs)
            for pc in pcs:
                counts[class_of_pc[pc]] += 1
        total = max(1, total)
        rows[name] = {c: 100.0 * counts[c] / total for c in CLASSES}
    return InstructionMix(rows)
