"""Shared experiment infrastructure.

A :class:`SuiteRunner` owns the expensive artifacts — compiled programs,
traces, static analyses, trained predictors — and caches them so the
table/figure modules can share one set of runs.  All experiments in a
session therefore analyze the *same* traces, exactly as the paper derives
every table and figure from one set of pixie runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro import telemetry
from repro.bench import SUITE, BenchmarkSpec
from repro.core import ALL_MODELS, AnalysisResult, LimitAnalyzer, MachineModel
from repro.diagnostics import DiagnosticError, Severity
from repro.prediction import BranchPredictor, BranchStats, ProfilePredictor, branch_stats
from repro.jobs import (
    HIT,
    RUN,
    ArtifactCache,
    ExecutionEngine,
    FarmReport,
    Planner,
    RetryPolicy,
)
from repro.jobs import keys as jobkeys
from repro.vm import CorruptArtifactError, FastVM, Trace


@dataclass(frozen=True)
class RunConfig:
    """Trace budget and execution configuration.

    ``max_steps`` plays the role of the paper's 100M-instruction pixie cap,
    scaled to what a Python interpreter sustains.  ``scale`` overrides each
    benchmark's default workload scale (None keeps the defaults).
    ``verify`` runs the object-code verifier and trace sanitizer over every
    benchmark before its numbers are used, raising
    :class:`~repro.diagnostics.DiagnosticError` on any error-severity
    finding.

    ``cache_dir`` enables the persistent content-addressed artifact cache
    of :mod:`repro.jobs` at that directory (None — the default, which the
    test suite exercises — keeps everything in-process and in-memory, the
    pre-farm behavior).  ``jobs`` is the worker-process count used when
    experiment requirements are prefetched through the farm; 1 runs jobs
    serially in-process.

    ``engine`` selects the analyzer implementation: ``"fused"`` (the
    default single-pass engine) or ``"legacy"`` (the original per-model
    sweep, kept as a differential-testing oracle).  Legacy runs bypass
    the persistent result cache so the oracle path is actually executed
    rather than served a cached fused result.

    ``telemetry_dir`` enables the observability layer of
    :mod:`repro.telemetry` at that directory: spans from every pipeline
    stage land in ``spans.jsonl`` there (farm workers inherit the
    directory through their job payloads), and the process-wide metrics
    registry fills in.  ``profile`` additionally arms the opt-in cProfile
    hooks.  Both default to off, which costs nothing.

    ``retries`` bounds how many times a failed farm job is requeued
    (with exponential backoff and deterministic jitter) before it is
    quarantined as dead; ``job_timeout`` is the per-attempt wall-clock
    budget in seconds (None: unbounded).  ``resume`` skips jobs an
    interrupted identical invocation already retired (per the run
    journal).  ``inject_faults`` arms the deterministic fault injector
    with a spec string (see :mod:`repro.jobs.faults`) — chaos-testing
    only.  See ``docs/robustness.md``.

    ``backend`` picks the farm executor (``serial``, ``pool``, or
    ``remote``; None infers it from ``jobs``/``workers``), and
    ``workers`` lists ``host:port`` addresses of ``repro-worker``
    daemons for the remote backend.  See ``docs/distributed.md``.
    """

    max_steps: int = 150_000
    scale: int | None = None
    verify: bool = False
    jobs: int = 1
    cache_dir: str | Path | None = None
    engine: str = "fused"
    telemetry_dir: str | Path | None = None
    profile: bool = False
    retries: int = 2
    job_timeout: float | None = None
    resume: bool = False
    inject_faults: str | None = None
    backend: str | None = None
    workers: tuple[str, ...] = ()


class BenchmarkRun:
    """One benchmark's trace plus everything derived from it.

    The trace is held either in memory (``trace=``, the no-cache path) or
    in the content-addressed cache behind an ``opener`` producing fresh
    streaming readers.  :attr:`trace` materializes lazily for consumers
    that genuinely need whole-trace columns (the verifier, ablations);
    chunk-wise consumers call :meth:`trace_source` and never pay the
    memory.  :attr:`stats` (Table 2) is likewise computed on first use,
    chunk-wise.
    """

    def __init__(
        self,
        spec: BenchmarkSpec,
        analyzer: LimitAnalyzer,
        predictor: ProfilePredictor,
        trace: Trace | None = None,
        opener=None,
    ):
        if trace is None and opener is None:
            raise ValueError("BenchmarkRun needs a trace or an opener")
        self.spec = spec
        self.analyzer = analyzer
        self.predictor = predictor
        self._trace = trace
        self._opener = opener
        self._stats: BranchStats | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def trace(self) -> Trace:
        """The whole trace in memory (materialized from the cache lazily)."""
        if self._trace is None:
            self._trace = self._opener().to_trace()
        return self._trace

    def trace_source(self):
        """The cheapest full-trace source for chunk-wise consumers.

        A fresh streaming :class:`~repro.vm.trace_io.TraceReader` when
        the trace lives in the artifact cache (bounded memory at any
        budget), else the in-memory :class:`Trace`.
        """
        if self._trace is not None:
            return self._trace
        return self._opener()

    @property
    def stats(self) -> BranchStats:
        """Branch statistics under the run's predictor (computed lazily)."""
        if self._stats is None:
            self._stats = branch_stats(self.trace_source(), self.predictor)
        return self._stats


class SuiteRunner:
    """Caches traces and analysis results across experiment modules.

    With ``RunConfig.cache_dir`` set, every expensive artifact — traces,
    branch profiles, analysis results — is additionally read from and
    written to the persistent content-addressed store of
    :mod:`repro.jobs`, and :meth:`prefetch` can farm the work for a set
    of experiment requests across worker processes before the experiment
    modules render anything.  Without a cache directory the runner is the
    original serial, in-process engine.
    """

    def __init__(self, config: RunConfig | None = None):
        self.config = config if config is not None else RunConfig()
        if self.config.telemetry_dir is not None:
            telemetry.configure(
                self.config.telemetry_dir, profile=self.config.profile
            )
            # One distributed trace per invocation: every root span of
            # this run (and, via job payloads, every farm-worker span)
            # shares it, so repro-trace reassembles the whole run.
            if telemetry.context.current() is None:
                telemetry.context.set_default(telemetry.context.mint())
        self._runs: dict[str, BenchmarkRun] = {}
        self._results: dict[tuple, AnalysisResult] = {}
        self.farm_report = FarmReport()
        self._cache = None
        self._planner = None
        if self.config.cache_dir is not None:
            self._cache = ArtifactCache(self.config.cache_dir)
            self._planner = Planner(self._cache, self.farm_report)

    def _scale_for(self, spec: BenchmarkSpec) -> int:
        return self.config.scale if self.config.scale is not None else spec.default_scale

    def prefetch(self, requests: Iterable) -> None:
        """Produce all artifacts for *requests* up front, possibly in parallel.

        Expands the requests into a compile → trace → profile → analysis
        job graph, skips jobs whose artifact is already cached, and runs
        the rest across ``RunConfig.jobs`` worker processes (serially
        in-process for ``jobs=1``).  Subsequent :meth:`run` /
        :meth:`analyze` calls then load the artifacts instead of
        recomputing.  A no-op without a cache directory (workers ship
        artifacts through the cache).
        """
        if self._cache is None:
            return
        graph = self._planner.plan(
            requests, self.config.scale, self.config.max_steps
        )
        engine = ExecutionEngine(
            self._cache,
            jobs=self.config.jobs,
            retry=RetryPolicy(
                max_attempts=self.config.retries + 1,
                job_timeout=self.config.job_timeout,
            ),
            faults=self.config.inject_faults,
            resume=self.config.resume,
            backend=self.config.backend,
            workers=list(self.config.workers),
        )
        engine.execute(graph, self.farm_report)

    def run(self, name: str) -> BenchmarkRun:
        """Compile, trace, and profile one benchmark (cached)."""
        cached = self._runs.get(name)
        if cached is not None:
            return cached
        spec = SUITE[name]
        with telemetry.span("runner.run", benchmark=name):
            if self._cache is None:
                program = spec.compile(self.config.scale)
                trace = FastVM(program).run(max_steps=self.config.max_steps).trace
                predictor = ProfilePredictor.from_trace(trace)
                run = BenchmarkRun(
                    spec=spec,
                    analyzer=LimitAnalyzer(program),
                    predictor=predictor,
                    trace=trace,
                )
            else:
                program, opener, predictor = self._materialize(spec)
                run = BenchmarkRun(
                    spec=spec,
                    analyzer=LimitAnalyzer(program),
                    predictor=predictor,
                    opener=opener,
                )
            if self.config.verify:
                self._verify(run)
        self._runs[name] = run
        return run

    def _materialize(self, spec: BenchmarkSpec):
        """Produce (or find) one benchmark's trace and profile in the cache.

        The trace is produced by the specialized VM streaming straight
        into the cache — it never materializes in this process — and is
        consumed through streaming readers, so a 100M-step budget costs
        the runner no resident memory.  A cached artifact that fails
        integrity verification has already been quarantined by the cache;
        it is transparently re-produced (and re-stored) here instead of
        crashing the run.
        """
        scale = self._scale_for(spec)
        trace_key = self._trace_key(spec.name)
        program = spec.compile(scale)
        cache = self._cache

        def opener():
            return cache.open_trace_reader(trace_key, program)

        have_trace = False
        if cache.has_trace(trace_key):
            try:
                cache.open_trace_reader(trace_key, program)
                have_trace = True
                self.farm_report.record(trace_key, "trace", spec.name, HIT)
            except CorruptArtifactError as exc:
                self.farm_report.record_failure(
                    trace_key, "trace", spec.name, "corrupt", 1, str(exc),
                    retried=True,
                )
        if not have_trace:
            started = time.time()
            with cache.store_trace_stream(trace_key, program) as writer:
                FastVM(program).run(
                    max_steps=self.config.max_steps, sink=writer
                )
            self.farm_report.record(
                trace_key, "trace", spec.name, RUN, time.time() - started
            )
        profile_key = jobkeys.profile_key(trace_key)
        predictor = None
        if cache.has_profile(profile_key):
            try:
                predictor = cache.load_profile(profile_key)
                self.farm_report.record(profile_key, "profile", spec.name, HIT)
            except CorruptArtifactError as exc:
                self.farm_report.record_failure(
                    profile_key, "profile", spec.name, "corrupt", 1, str(exc),
                    retried=True,
                )
        if predictor is None:
            started = time.time()
            predictor = ProfilePredictor.from_source(opener())
            cache.store_profile(profile_key, predictor)
            self.farm_report.record(
                profile_key, "profile", spec.name, RUN, time.time() - started
            )
        return program, opener, predictor

    def _trace_key(self, name: str) -> str:
        spec = SUITE[name]
        scale = self._scale_for(spec)
        fingerprint = self._planner.fingerprint(name, scale)
        return jobkeys.trace_key(fingerprint, scale, self.config.max_steps)

    def _verify(self, run: BenchmarkRun) -> None:
        """Cross-check the compiled program and its trace (RunConfig.verify)."""
        from repro.analysis.static import analyze_static
        from repro.analysis.static.differential import check_static_vs_dynamic
        from repro.analysis.verify import verify_program
        from repro.vm.sanitize import sanitize_trace

        diagnostics = verify_program(run.analyzer.program, name=run.name)
        diagnostics += sanitize_trace(
            run.trace, analysis=run.analyzer.analysis, name=run.name
        )
        # Static-vs-dynamic differential gate (STA41x).  The trace may be
        # truncated (the runner does not record whether the VM halted), so
        # the halted-only whole-program bound is skipped; every other claim
        # is checked record for record.
        facts = analyze_static(run.analyzer.program, run.analyzer.analysis)
        result = run.analyzer.analyze(run.trace, models=[MachineModel.ORACLE])
        diagnostics += check_static_vs_dynamic(
            facts, run.trace, result=result, halted=False, name=run.name
        )
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        if errors:
            raise DiagnosticError(errors, context=run.name)

    def analyze(
        self,
        name: str,
        models: Sequence[MachineModel] = ALL_MODELS,
        perfect_unrolling: bool = True,
        perfect_inlining: bool = True,
        collect_misprediction_stats: bool = False,
        predictor: BranchPredictor | None = None,
    ) -> AnalysisResult:
        """Limit-analyze one benchmark's trace (cached per option set).

        A custom ``predictor`` bypasses the cache (ablations construct their
        own predictors with internal state).
        """
        if predictor is not None:
            run = self.run(name)
            return run.analyzer.analyze(
                run.trace_source(),
                models=models,
                predictor=predictor,
                perfect_unrolling=perfect_unrolling,
                perfect_inlining=perfect_inlining,
                collect_misprediction_stats=collect_misprediction_stats,
                engine=self.config.engine,
            )
        key = (
            name,
            tuple(models),
            perfect_unrolling,
            perfect_inlining,
            collect_misprediction_stats,
            self.config.engine,
        )
        cached = self._results.get(key)
        if cached is not None:
            return cached
        result_key = None
        # The legacy engine exists as a differential oracle: serving it a
        # persistently cached (fused-produced) result would skip the very
        # code path the caller asked to exercise.
        if self._cache is not None and self.config.engine == "fused":
            result_key = jobkeys.result_key(
                self._trace_key(name),
                tuple(m.label for m in models),
                perfect_unrolling,
                perfect_inlining,
                collect_misprediction_stats,
            )
            # A persistent hit needs neither the trace nor the program.
            if self._cache.has_result(result_key):
                try:
                    cached = self._cache.load_result(result_key)
                    self.farm_report.record(result_key, "analyze", name, HIT)
                    self._results[key] = cached
                    return cached
                except CorruptArtifactError as exc:
                    # Quarantined by the cache; fall through and re-analyze.
                    self.farm_report.record_failure(
                        result_key, "analyze", name, "corrupt", 1, str(exc),
                        retried=True,
                    )
        run = self.run(name)
        started = time.time()
        with telemetry.span(
            "runner.analyze", benchmark=name, engine=self.config.engine
        ):
            cached = run.analyzer.analyze(
                run.trace_source(),
                models=models,
                predictor=run.predictor,
                perfect_unrolling=perfect_unrolling,
                perfect_inlining=perfect_inlining,
                collect_misprediction_stats=collect_misprediction_stats,
                engine=self.config.engine,
            )
        if result_key is not None:
            self._cache.store_result(result_key, cached)
            self.farm_report.record(
                result_key, "analyze", name, RUN, time.time() - started
            )
        self._results[key] = cached
        return cached


@dataclass
class TextTable:
    """Minimal fixed-width table renderer for experiment reports."""

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add(self, *cells: object) -> None:
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.rjust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)
