"""Shared experiment infrastructure.

A :class:`SuiteRunner` owns the expensive artifacts — compiled programs,
traces, static analyses, trained predictors — and caches them so the
table/figure modules can share one set of runs.  All experiments in a
session therefore analyze the *same* traces, exactly as the paper derives
every table and figure from one set of pixie runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench import SUITE, BenchmarkSpec
from repro.core import ALL_MODELS, AnalysisResult, LimitAnalyzer, MachineModel
from repro.diagnostics import DiagnosticError, Severity
from repro.prediction import BranchPredictor, BranchStats, ProfilePredictor, branch_stats
from repro.vm import VM, Trace


@dataclass(frozen=True)
class RunConfig:
    """Trace budget configuration.

    ``max_steps`` plays the role of the paper's 100M-instruction pixie cap,
    scaled to what a Python interpreter sustains.  ``scale`` overrides each
    benchmark's default workload scale (None keeps the defaults).
    ``verify`` runs the object-code verifier and trace sanitizer over every
    benchmark before its numbers are used, raising
    :class:`~repro.diagnostics.DiagnosticError` on any error-severity
    finding.
    """

    max_steps: int = 150_000
    scale: int | None = None
    verify: bool = False


@dataclass
class BenchmarkRun:
    """One benchmark's trace plus everything derived from it."""

    spec: BenchmarkSpec
    trace: Trace
    analyzer: LimitAnalyzer
    predictor: ProfilePredictor
    stats: BranchStats

    @property
    def name(self) -> str:
        return self.spec.name


class SuiteRunner:
    """Caches traces and analysis results across experiment modules."""

    def __init__(self, config: RunConfig | None = None):
        self.config = config if config is not None else RunConfig()
        self._runs: dict[str, BenchmarkRun] = {}
        self._results: dict[tuple, AnalysisResult] = {}

    def run(self, name: str) -> BenchmarkRun:
        """Compile, trace, and profile one benchmark (cached)."""
        cached = self._runs.get(name)
        if cached is not None:
            return cached
        spec = SUITE[name]
        program = spec.compile(self.config.scale)
        result = VM(program).run(max_steps=self.config.max_steps)
        predictor = ProfilePredictor.from_trace(result.trace)
        run = BenchmarkRun(
            spec=spec,
            trace=result.trace,
            analyzer=LimitAnalyzer(program),
            predictor=predictor,
            stats=branch_stats(result.trace, predictor),
        )
        if self.config.verify:
            self._verify(run)
        self._runs[name] = run
        return run

    def _verify(self, run: BenchmarkRun) -> None:
        """Cross-check the compiled program and its trace (RunConfig.verify)."""
        from repro.analysis.verify import verify_program
        from repro.vm.sanitize import sanitize_trace

        diagnostics = verify_program(run.analyzer.program, name=run.name)
        diagnostics += sanitize_trace(
            run.trace, analysis=run.analyzer.analysis, name=run.name
        )
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        if errors:
            raise DiagnosticError(errors, context=run.name)

    def analyze(
        self,
        name: str,
        models: Sequence[MachineModel] = ALL_MODELS,
        perfect_unrolling: bool = True,
        perfect_inlining: bool = True,
        collect_misprediction_stats: bool = False,
        predictor: BranchPredictor | None = None,
    ) -> AnalysisResult:
        """Limit-analyze one benchmark's trace (cached per option set).

        A custom ``predictor`` bypasses the cache (ablations construct their
        own predictors with internal state).
        """
        run = self.run(name)
        if predictor is not None:
            return run.analyzer.analyze(
                run.trace,
                models=models,
                predictor=predictor,
                perfect_unrolling=perfect_unrolling,
                perfect_inlining=perfect_inlining,
                collect_misprediction_stats=collect_misprediction_stats,
            )
        key = (
            name,
            tuple(models),
            perfect_unrolling,
            perfect_inlining,
            collect_misprediction_stats,
        )
        cached = self._results.get(key)
        if cached is None:
            cached = run.analyzer.analyze(
                run.trace,
                models=models,
                predictor=run.predictor,
                perfect_unrolling=perfect_unrolling,
                perfect_inlining=perfect_inlining,
                collect_misprediction_stats=collect_misprediction_stats,
            )
            self._results[key] = cached
        return cached


@dataclass
class TextTable:
    """Minimal fixed-width table renderer for experiment reports."""

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add(self, *cells: object) -> None:
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.rjust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)
