"""Table 2 — branch statistics.

For each benchmark: the profile predictor's conditional-branch prediction
rate and the average number of dynamic instructions between conditional
branches, side by side with the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import SUITE
from repro.experiments.paper_data import PAPER_TABLE2
from repro.experiments.runner import SuiteRunner, TextTable


@dataclass
class Table2Row:
    program: str
    prediction_rate: float
    instructions_between_branches: float
    paper_prediction_rate: float
    paper_instructions_between_branches: float


@dataclass
class Table2:
    rows: list[Table2Row]

    def render(self) -> str:
        table = TextTable(
            headers=[
                "Program", "PredRate%", "(paper)", "Instr/Branch", "(paper)",
            ],
            title="Table 2: Branch Statistics (measured vs. paper)",
        )
        for row in self.rows:
            table.add(
                row.program,
                row.prediction_rate,
                row.paper_prediction_rate,
                row.instructions_between_branches,
                row.paper_instructions_between_branches,
            )
        return table.render()


def requirements(config) -> list:
    """Farm requests: a trace (and profile) for every benchmark."""
    from repro.jobs import TraceRequest

    return [TraceRequest(name) for name in SUITE]


def run(runner: SuiteRunner) -> Table2:
    rows = []
    for name in SUITE:
        stats = runner.run(name).stats
        paper_rate, paper_between = PAPER_TABLE2[name]
        rows.append(
            Table2Row(
                program=name,
                prediction_rate=stats.prediction_rate,
                instructions_between_branches=stats.instructions_between_branches,
                paper_prediction_rate=paper_rate,
                paper_instructions_between_branches=paper_between,
            )
        )
    return Table2(rows)
