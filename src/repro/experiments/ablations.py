"""Ablation studies beyond the paper (DESIGN.md §5).

* **Predictors** — how the SP-CD-MF limit moves with predictor quality,
  from always-taken up to a perfect oracle (which collapses SP-CD-MF into
  ORACLE, §3's observation in reverse).
* **Scheduling window** — the paper uses an unlimited window; this sweep
  quantifies how much of the SP limit a finite window forfeits.
* **Latency** — the paper's unit latencies "measure all of the
  parallelism"; non-unit latencies consume parallelism to fill pipeline
  bubbles.
* **Inlining** — what perfect inlining (removing call/return/stack-pointer
  serialization) is worth on each machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MachineModel
from repro.experiments.runner import SuiteRunner, TextTable
from repro.isa import OpKind
from repro.prediction import (
    AlwaysNotTaken,
    AlwaysTaken,
    BackwardTaken,
    GShare,
    OneBit,
    PerfectPredictor,
    TwoBit,
    branch_stats,
)
from repro.vm.trace import NOT_BRANCH

M = MachineModel


# -- farm requirements ----------------------------------------------------
#
# One requirements() helper per ablation entry point (the CLI pools the
# requests of every selected experiment and prefetches them through
# repro.jobs).  Ablations that build their own predictors or analyzer
# options request only the trace they iterate on; analyses that go through
# SuiteRunner.analyze with default predictors are requested outright.


def predictor_requirements(config) -> list:
    from repro.jobs import TraceRequest

    return [TraceRequest("espresso")]


def window_requirements(config) -> list:
    from repro.jobs import AnalysisRequest

    return [AnalysisRequest("gcc", models=(M.SP,))]


def latency_requirements(config) -> list:
    from repro.jobs import TraceRequest

    return [TraceRequest("spice2g6")]


def inlining_requirements(config) -> list:
    from repro.jobs import AnalysisRequest

    models = (M.BASE, M.SP, M.ORACLE)
    return [
        request
        for name in ("ccom", "eqntott", "latex")
        for request in (
            AnalysisRequest(name, models=models),
            AnalysisRequest(name, models=models, perfect_inlining=False),
        )
    ]


def guarded_requirements(config) -> list:
    return []  # compiles its own demo program, not a suite benchmark


def convergence_requirements(config) -> list:
    from repro.bench import NON_NUMERIC
    from repro.jobs import AnalysisRequest

    return [
        AnalysisRequest(name, max_steps=budget)
        for budget in CONVERGENCE_BUDGETS
        for name in NON_NUMERIC
    ]


def flows_requirements(config) -> list:
    from repro.jobs import AnalysisRequest

    return [
        AnalysisRequest("gcc", models=(M.CD, M.SP_CD)),
        AnalysisRequest("gcc", models=(M.CD_MF, M.SP_CD_MF)),
    ]


@dataclass
class ConvergenceAblation:
    """Harmonic-mean parallelism (non-numeric suite) vs. trace budget.

    Quantifies the main scale difference from the paper: BASE/CD/SP are
    limited by *local* constraints and converge almost immediately, while
    the upper-bound machines (SP-CD-MF, ORACLE) keep growing with trace
    length — which is why our absolute ORACLE values sit below the paper's
    100M-instruction numbers.
    """

    rows: list[tuple[int, dict[MachineModel, float]]]

    def render(self) -> str:
        models = (M.BASE, M.CD_MF, M.SP, M.SP_CD_MF, M.ORACLE)
        table = TextTable(
            headers=["Trace budget"] + [m.label for m in models],
            title="Ablation: non-numeric harmonic mean vs. trace length",
        )
        for budget, values in self.rows:
            table.add(budget, *[values[m] for m in models])
        return table.render()


#: Trace budgets swept by the convergence ablation.
CONVERGENCE_BUDGETS: tuple[int, ...] = (50_000, 100_000, 200_000, 400_000)


def convergence_ablation(
    runner: SuiteRunner | None = None,
    budgets: tuple[int, ...] = CONVERGENCE_BUDGETS,
) -> ConvergenceAblation:
    """Re-run the Table 3 harmonic mean at several trace budgets.

    The per-budget runners inherit the parent runner's workload scale and
    persistent artifact cache, so a prior :meth:`SuiteRunner.prefetch` of
    this ablation's requirements (which is how large ``--max-steps``
    sweeps become tractable) is reused here instead of re-traced.
    """
    from repro.bench import NON_NUMERIC
    from repro.core import ALL_MODELS, harmonic_mean
    from repro.experiments.runner import RunConfig

    scale = runner.config.scale if runner is not None else None
    cache_dir = runner.config.cache_dir if runner is not None else None
    rows: list[tuple[int, dict[MachineModel, float]]] = []
    for budget in budgets:
        budget_runner = SuiteRunner(
            RunConfig(max_steps=budget, scale=scale, cache_dir=cache_dir)
        )
        per_model: dict[MachineModel, list[float]] = {m: [] for m in ALL_MODELS}
        for name in NON_NUMERIC:
            result = budget_runner.analyze(name)
            for model in ALL_MODELS:
                per_model[model].append(result[model].parallelism)
        rows.append(
            (budget, {m: harmonic_mean(v) for m, v in per_model.items()})
        )
    return ConvergenceAblation(rows=rows)


@dataclass
class PredictorAblation:
    rows: list[tuple[str, float, float]]  # (predictor, prediction rate, SP-CD-MF)
    benchmark: str

    def render(self) -> str:
        table = TextTable(
            headers=["Predictor", "PredRate%", "SP-CD-MF parallelism"],
            title=f"Ablation: branch predictors on {self.benchmark}",
        )
        for row in self.rows:
            table.add(*row)
        return table.render()


def predictor_ablation(runner: SuiteRunner, benchmark: str = "espresso") -> PredictorAblation:
    run = runner.run(benchmark)
    outcomes = [taken == 1 for taken in run.trace.takens if taken != NOT_BRANCH]
    perfect = PerfectPredictor()
    perfect.prime(outcomes)
    predictors = [
        AlwaysTaken(),
        AlwaysNotTaken(),
        BackwardTaken(run.trace.program),
        OneBit(),
        TwoBit(),
        GShare(),
        run.predictor,
        perfect,
    ]
    rows = []
    for predictor in predictors:
        stats = branch_stats(run.trace, predictor)
        if isinstance(predictor, PerfectPredictor):
            predictor.prime(outcomes)
        result = runner.analyze(
            benchmark, models=[M.SP_CD_MF], predictor=predictor
        )
        rows.append(
            (predictor.name, stats.prediction_rate, result[M.SP_CD_MF].parallelism)
        )
    return PredictorAblation(rows=rows, benchmark=benchmark)


@dataclass
class WindowAblation:
    rows: list[tuple[str, float]]  # (window label, SP parallelism)
    benchmark: str

    def render(self) -> str:
        table = TextTable(
            headers=["Window", "SP parallelism"],
            title=f"Ablation: scheduling window on {self.benchmark}",
        )
        for row in self.rows:
            table.add(*row)
        return table.render()


def window_ablation(
    runner: SuiteRunner,
    benchmark: str = "gcc",
    windows: tuple[int, ...] = (16, 64, 256, 1024, 4096),
) -> WindowAblation:
    run = runner.run(benchmark)
    rows: list[tuple[str, float]] = []
    for window in windows:
        result = run.analyzer.analyze(
            run.trace, models=[M.SP], predictor=run.predictor, window=window
        )
        rows.append((str(window), result[M.SP].parallelism))
    unlimited = runner.analyze(benchmark, models=[M.SP])
    rows.append(("unlimited", unlimited[M.SP].parallelism))
    return WindowAblation(rows=rows, benchmark=benchmark)


@dataclass
class LatencyAblation:
    rows: list[tuple[str, float, float]]  # (config, ORACLE, SP)
    benchmark: str

    def render(self) -> str:
        table = TextTable(
            headers=["Latencies", "ORACLE", "SP"],
            title=f"Ablation: operation latencies on {self.benchmark}",
        )
        for row in self.rows:
            table.add(*row)
        return table.render()


def latency_ablation(runner: SuiteRunner, benchmark: str = "spice2g6") -> LatencyAblation:
    run = runner.run(benchmark)
    configs: list[tuple[str, dict | None]] = [
        ("unit (paper)", None),
        ("mem=2", {OpKind.LOAD: 2, OpKind.STORE: 2}),
        ("mem=2,fpu=4", {OpKind.LOAD: 2, OpKind.STORE: 2, OpKind.FPU: 4}),
        ("mem=4,fpu=8,mul-ish", {OpKind.LOAD: 4, OpKind.STORE: 4, OpKind.FPU: 8}),
    ]
    rows = []
    for label, latencies in configs:
        result = run.analyzer.analyze(
            run.trace,
            models=[M.ORACLE, M.SP],
            predictor=run.predictor,
            latencies=latencies,
        )
        rows.append(
            (label, result[M.ORACLE].parallelism, result[M.SP].parallelism)
        )
    return LatencyAblation(rows=rows, benchmark=benchmark)


@dataclass
class FlowsAblation:
    """How many flows of control does it take? (paper §6's closing idea:
    "a small-scale multiprocessor system ... would be an interesting
    possibility").  CD-MF / SP-CD-MF limited to k branch (misprediction)
    retirements per cycle, sweeping k from 1 to unlimited."""

    benchmark: str
    rows: list[tuple[str, float, float]]  # (k, CD-MF(k), SP-CD-MF(k))
    single_flow: tuple[float, float]  # exact CD / SP-CD reference points

    def render(self) -> str:
        table = TextTable(
            headers=["Flows k", "CD-MF(k)", "SP-CD-MF(k)"],
            title=f"Ablation: parallelism vs. flows of control on {self.benchmark}",
        )
        table.add("in-order (CD / SP-CD)", *self.single_flow)
        for row in self.rows:
            table.add(*row)
        return table.render()


def flows_ablation(
    runner: SuiteRunner,
    benchmark: str = "gcc",
    flow_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> FlowsAblation:
    run = runner.run(benchmark)
    reference = runner.analyze(benchmark, models=[M.CD, M.SP_CD])
    rows: list[tuple[str, float, float]] = []
    for k in flow_counts:
        result = run.analyzer.analyze(
            run.trace,
            models=[M.CD_MF, M.SP_CD_MF],
            predictor=run.predictor,
            flow_limit=k,
        )
        rows.append(
            (
                str(k),
                result[M.CD_MF].parallelism,
                result[M.SP_CD_MF].parallelism,
            )
        )
    unlimited = runner.analyze(benchmark, models=[M.CD_MF, M.SP_CD_MF])
    rows.append(
        (
            "unlimited",
            unlimited[M.CD_MF].parallelism,
            unlimited[M.SP_CD_MF].parallelism,
        )
    )
    return FlowsAblation(
        benchmark=benchmark,
        rows=rows,
        single_flow=(
            reference[M.CD].parallelism,
            reference[M.SP_CD].parallelism,
        ),
    )


#: A guard-friendly workload: clamps, abs, max-reductions — the classic
#: if-conversion targets — over position-hashed data.
_GUARDED_DEMO = """
int data[1024];
int main() {
    for (int i = 0; i < 1024; i++)
        data[i] = ((i * 2654435761) >> 7) % 801 - 400;
    int clamped = 0; int biggest = 0; int negs = 0; int band = 0;
    for (int rep = 0; rep < 6; rep++) {
        for (int i = 0; i < 1024; i++) {
            int v = data[i] + rep;
            if (v < 0) negs = negs + 1;
            if (v < 0) v = -v;
            if (v > 300) v = 300;
            if (v > biggest) biggest = v;
            if (v > 100 && v < 200) band = band + 1;
            clamped += v;
        }
    }
    return clamped + biggest * 7 + negs * 3 + band;
}
"""


@dataclass
class GuardedAblation:
    """Effect of if-conversion (guarded moves) on the speculative limits —
    the paper's §6 claim that guarded instructions "help increase the
    distance between mispredicted branches"."""

    rows: list[tuple[str, int, float, float, float]]
    # (variant, dynamic branches, mean mispredict distance, SP, SP-CD-MF)

    def render(self) -> str:
        table = TextTable(
            headers=[
                "Variant", "Dyn branches", "Mean mp distance", "SP", "SP-CD-MF",
            ],
            title="Ablation: guarded instructions (if-conversion), paper §6",
        )
        for row in self.rows:
            table.add(*row)
        return table.render()


def guarded_ablation(runner: SuiteRunner | None = None, max_steps: int = 200_000) -> GuardedAblation:
    """Compare the same workload compiled with branches vs. guarded moves."""
    from repro.core import LimitAnalyzer
    from repro.lang import compile_source
    from repro.prediction import ProfilePredictor
    from repro.vm import VM

    rows: list[tuple[str, int, float, float, float]] = []
    for label, if_convert in (("branches", False), ("guarded", True)):
        program = compile_source(_GUARDED_DEMO, name=f"demo-{label}", if_convert=if_convert)
        run = VM(program).run(max_steps=max_steps)
        predictor = ProfilePredictor.from_trace(run.trace)
        result = LimitAnalyzer(program).analyze(
            run.trace,
            models=[M.SP, M.SP_CD_MF],
            predictor=predictor,
            collect_misprediction_stats=True,
        )
        stats = result.misprediction_stats
        assert stats is not None
        distances = stats.distances
        mean_distance = sum(distances) / len(distances) if distances else float("inf")
        branches = sum(1 for _ in run.trace.branch_outcomes())
        rows.append(
            (
                label,
                branches,
                mean_distance,
                result[M.SP].parallelism,
                result[M.SP_CD_MF].parallelism,
            )
        )
    return GuardedAblation(rows=rows)


@dataclass
class InliningAblation:
    rows: list[tuple[str, float, float, float]]  # (program, BASE ratio, SP ratio, ORACLE ratio)

    def render(self) -> str:
        table = TextTable(
            headers=["Program", "BASE x", "SP x", "ORACLE x"],
            title="Ablation: speedup of perfect inlining (removing call/return/$sp)",
        )
        for row in self.rows:
            table.add(*row)
        return table.render()


def inlining_ablation(
    runner: SuiteRunner, benchmarks: tuple[str, ...] = ("ccom", "eqntott", "latex")
) -> InliningAblation:
    rows = []
    for name in benchmarks:
        inlined = runner.analyze(name, models=[M.BASE, M.SP, M.ORACLE])
        raw = runner.analyze(
            name, models=[M.BASE, M.SP, M.ORACLE], perfect_inlining=False
        )
        rows.append(
            (
                name,
                inlined[M.BASE].parallelism / raw[M.BASE].parallelism,
                inlined[M.SP].parallelism / raw[M.SP].parallelism,
                inlined[M.ORACLE].parallelism / raw[M.ORACLE].parallelism,
            )
        )
    return InliningAblation(rows=rows)
