"""Experiment modules regenerating every table and figure of the paper,
plus ablation studies.  See DESIGN.md §4 for the per-experiment index."""

from repro.experiments.runner import BenchmarkRun, RunConfig, SuiteRunner, TextTable

__all__ = ["BenchmarkRun", "RunConfig", "SuiteRunner", "TextTable"]
