"""Figure 5 — parallelism with speculative execution.

The paper's bar chart compares BASE, SP, SP-CD, and SP-CD-MF per
non-numeric benchmark: speculation beats BASE everywhere; adding control
dependence lets instructions cross mispredicted branches; adding multiple
flows removes the serial misprediction bottleneck entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import NON_NUMERIC
from repro.core import MachineModel
from repro.experiments.runner import SuiteRunner, TextTable

M = MachineModel
MODELS = (M.BASE, M.SP, M.SP_CD, M.SP_CD_MF)


@dataclass
class Fig5:
    series: dict[str, dict[MachineModel, float]]

    def render(self) -> str:
        table = TextTable(
            headers=[
                "Program", "BASE", "SP", "SP-CD", "SP-CD-MF",
                "SP/BASE", "SP-CD/SP", "SP-CD-MF/SP-CD",
            ],
            title="Figure 5: Parallelism with Speculative Execution",
        )
        for name, values in self.series.items():
            table.add(
                name,
                values[M.BASE],
                values[M.SP],
                values[M.SP_CD],
                values[M.SP_CD_MF],
                values[M.SP] / values[M.BASE],
                values[M.SP_CD] / values[M.SP],
                values[M.SP_CD_MF] / values[M.SP_CD],
            )
        return table.render()


def requirements(config) -> list:
    """Farm requests: default analysis of the non-numeric benchmarks."""
    from repro.jobs import AnalysisRequest

    return [AnalysisRequest(name) for name in NON_NUMERIC]


def run(runner: SuiteRunner) -> Fig5:
    series: dict[str, dict[MachineModel, float]] = {}
    for name in NON_NUMERIC:
        result = runner.analyze(name)
        series[name] = {m: result[m].parallelism for m in MODELS}
    return Fig5(series)
