"""The paper's published numbers, for side-by-side comparison.

Source: Lam & Wilson, *Limits of Control Flow on Parallelism*, ISCA 1992 —
Table 2 (branch statistics), Table 3 (parallelism per machine model), and
Table 4 (percent change due to perfect loop unrolling).
"""

from __future__ import annotations

from repro.core import MachineModel

M = MachineModel

#: Table 2: program -> (prediction rate %, dynamic instructions between branches)
PAPER_TABLE2: dict[str, tuple[float, float]] = {
    "awk": (93.48, 6.8),
    "ccom": (92.02, 7.5),
    "eqntott": (91.92, 3.4),
    "espresso": (85.64, 6.0),
    "gcc": (89.29, 7.9),
    "irsim": (87.71, 6.7),
    "latex": (87.11, 9.4),
    "matrix300": (99.02, 20.0),
    "spice2g6": (97.66, 13.1),
    "tomcatv": (99.09, 58.8),
}

_T3_ORDER = (M.BASE, M.CD, M.CD_MF, M.SP, M.SP_CD, M.SP_CD_MF, M.ORACLE)


def _t3(*values: float) -> dict[MachineModel, float]:
    return dict(zip(_T3_ORDER, values))


#: Table 3: program -> model -> parallelism.
PAPER_TABLE3: dict[str, dict[MachineModel, float]] = {
    "awk": _t3(2.85, 3.24, 5.32, 9.22, 12.89, 41.88, 242.77),
    "ccom": _t3(2.13, 2.51, 5.61, 6.92, 9.83, 18.05, 46.80),
    "eqntott": _t3(1.98, 2.05, 5.21, 6.40, 18.09, 225.90, 3282.91),
    "espresso": _t3(1.51, 1.54, 7.49, 4.16, 19.55, 402.85, 742.30),
    "gcc": _t3(2.10, 2.55, 14.63, 7.76, 13.18, 66.29, 174.50),
    "irsim": _t3(2.31, 2.66, 11.89, 8.40, 15.82, 45.86, 265.42),
    "latex": _t3(2.71, 3.17, 6.18, 7.60, 9.72, 18.65, 131.69),
    "matrix300": _t3(293, 432, 68324, 36192, 108575, 180632, 188470),
    "spice2g6": _t3(2.14, 2.29, 16.80, 8.11, 25.28, 196.76, 843.60),
    "tomcatv": _t3(22.23, 42.77, 3237, 124, 1881, 3918, 3918),
}

#: Table 3's harmonic-mean row over the seven non-numeric programs.
PAPER_TABLE3_HMEAN: dict[MachineModel, float] = _t3(
    2.14, 2.39, 6.96, 6.80, 13.27, 39.62, 158.26
)

#: Table 4: program -> model -> percent change due to perfect unrolling.
PAPER_TABLE4: dict[str, dict[MachineModel, float]] = {
    "awk": _t3(30, 56, 10, 48, 52, 41, -22),
    "ccom": _t3(-1, 1, 2, 3, 2, -2, -2),
    "eqntott": _t3(0, 1, -54, 11, 11, -4, 3),
    "espresso": _t3(-6, -6, 134, -2, -16, 15, -21),
    "gcc": _t3(2, 2, 2, 14, 18, -3, -4),
    "irsim": _t3(0, 2, 9, 17, 4, -9, -9),
    "latex": _t3(0, 0, -1, 0, 0, 0, 29),
    "matrix300": _t3(2911, 4317, 16, 182136, 5488, 2, 0),
    "spice2g6": _t3(12, 12, 35, 21, 23, 0, -1),
    "tomcatv": _t3(47, 126, -9, 149, 13, -12, -12),
}

#: §5.2: "over 80% of the mispredictions occurring within a distance of 100
#: instructions" (Figure 6).
PAPER_FIG6_WITHIN_100 = 0.80
