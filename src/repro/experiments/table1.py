"""Table 1 — the benchmark suite (descriptive)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import SUITE
from repro.experiments.runner import SuiteRunner, TextTable


@dataclass
class Table1:
    rows: list[tuple[str, str, str]]

    def render(self) -> str:
        table = TextTable(
            headers=["Program", "Language", "Description"],
            title="Table 1: Benchmark Programs",
        )
        for row in self.rows:
            table.add(*row)
        return table.render()


def requirements(config) -> list:
    """Farm requests: purely descriptive, nothing to compute."""
    return []


def run(runner: SuiteRunner | None = None) -> Table1:
    return Table1(
        rows=[
            (spec.name, spec.language, spec.description)
            for spec in SUITE.values()
        ]
    )
