"""Figure 7 — parallelism within misprediction segments, by distance.

Pooling every SP-machine segment from all benchmarks (the paper combines
"the statistics for all of the programs"), this reports the harmonic mean
of segment parallelism per misprediction-distance bin, together with each
bin's frequency (the paper shades frequent bins darker).  Expected shape:
short segments have little parallelism — their instructions are tightly
data dependent — and parallelism grows with distance, but long distances
are rare.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import SUITE
from repro.core import MispredictionStats
from repro.experiments.runner import SuiteRunner, TextTable

#: Bin upper bounds (instructions).
BINS = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class Fig7:
    rows: list[tuple[int, int, float, int]]  # (low, high, hmean parallelism, count)

    def render(self) -> str:
        table = TextTable(
            headers=["Distance", "HMean parallelism", "Segments", "Share%"],
            title="Figure 7: Segment Parallelism vs. Misprediction Distance (pooled)",
        )
        total = sum(count for *_, count in self.rows) or 1
        for low, high, mean, count in self.rows:
            label = f"{low + 1}-{high}"
            table.add(label, mean, count, 100.0 * count / total)
        return table.render()

    def monotone_prefix(self) -> bool:
        """True if parallelism is non-decreasing over the populated bins —
        the paper's qualitative claim."""
        means = [mean for _, _, mean, count in self.rows if count > 0]
        return all(b >= a * 0.8 for a, b in zip(means, means[1:]))


def requirements(config) -> list:
    """Farm requests: full analysis with SP segment statistics collected."""
    from repro.jobs import AnalysisRequest

    return [
        AnalysisRequest(name, collect_misprediction_stats=True) for name in SUITE
    ]


def run(runner: SuiteRunner) -> Fig7:
    pooled = MispredictionStats()
    for name in SUITE:
        result = runner.analyze(name, collect_misprediction_stats=True)
        stats = result.misprediction_stats
        assert stats is not None
        pooled.merge(stats)
    return Fig7(rows=pooled.parallelism_by_distance(list(BINS)))
