"""Figure 4 — parallelism with control dependence analysis.

The paper's bar chart compares BASE, CD, and CD-MF per non-numeric
benchmark, showing that CD alone barely beats BASE (the in-order branch
constraint dominates) while CD-MF — multiple flows of control — unlocks
the parallelism control dependence analysis exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import NON_NUMERIC
from repro.core import MachineModel
from repro.experiments.runner import SuiteRunner, TextTable

M = MachineModel
MODELS = (M.BASE, M.CD, M.CD_MF)


@dataclass
class Fig4:
    series: dict[str, dict[MachineModel, float]]

    def render(self) -> str:
        table = TextTable(
            headers=["Program", "BASE", "CD", "CD-MF", "CD/BASE", "CD-MF/CD"],
            title="Figure 4: Parallelism with Control Dependence Analysis",
        )
        for name, values in self.series.items():
            table.add(
                name,
                values[M.BASE],
                values[M.CD],
                values[M.CD_MF],
                values[M.CD] / values[M.BASE],
                values[M.CD_MF] / values[M.CD],
            )
        return table.render() + "\n" + _bars(self.series)


def _bars(series: dict[str, dict[MachineModel, float]]) -> str:
    """ASCII bar rendering of the figure (log-free, clipped)."""
    peak = max(max(values.values()) for values in series.values())
    scale = 48 / peak if peak > 0 else 1.0
    lines = []
    for name, values in series.items():
        for model in MODELS:
            bar = "#" * max(1, int(values[model] * scale))
            lines.append(f"{name:>10s} {model.label:<6s} |{bar} {values[model]:.2f}")
        lines.append("")
    return "\n".join(lines)


def requirements(config) -> list:
    """Farm requests: default analysis of the non-numeric benchmarks."""
    from repro.jobs import AnalysisRequest

    return [AnalysisRequest(name) for name in NON_NUMERIC]


def run(runner: SuiteRunner) -> Fig4:
    series: dict[str, dict[MachineModel, float]] = {}
    for name in NON_NUMERIC:
        result = runner.analyze(name)
        series[name] = {m: result[m].parallelism for m in MODELS}
    return Fig4(series)
