"""Table 4 — percent change in parallelism due to perfect loop unrolling.

Each benchmark is analyzed twice on every machine model — with and without
removing induction-variable overhead — and the table reports
``100 * (unrolled - rolled) / rolled``.  A positive entry means removing
the induction-variable dependences *improves* parallelism (§5.4 discusses
why the effect can go either way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import SUITE
from repro.core import ALL_MODELS, MachineModel
from repro.experiments.paper_data import PAPER_TABLE4
from repro.experiments.runner import SuiteRunner, TextTable


@dataclass
class Table4:
    percent_change: dict[str, dict[MachineModel, float]]

    def render(self, include_paper: bool = True) -> str:
        table = TextTable(
            headers=["Program"] + [m.label for m in ALL_MODELS],
            title="Table 4: % Change in Parallelism due to Perfect Loop Unrolling",
        )
        for name, values in self.percent_change.items():
            table.add(name, *[f"{values[m]:+.0f}" for m in ALL_MODELS])
            if include_paper:
                table.add(
                    "  (paper)",
                    *[f"{PAPER_TABLE4[name][m]:+.0f}" for m in ALL_MODELS],
                )
        return table.render()


def requirements(config) -> list:
    """Farm requests: every benchmark analyzed rolled and unrolled."""
    from repro.jobs import AnalysisRequest

    return [
        request
        for name in SUITE
        for request in (
            AnalysisRequest(name),
            AnalysisRequest(name, perfect_unrolling=False),
        )
    ]


def run(runner: SuiteRunner) -> Table4:
    percent_change: dict[str, dict[MachineModel, float]] = {}
    for name in SUITE:
        unrolled = runner.analyze(name, perfect_unrolling=True)
        rolled = runner.analyze(name, perfect_unrolling=False)
        percent_change[name] = {
            m: 100.0
            * (unrolled[m].parallelism - rolled[m].parallelism)
            / rolled[m].parallelism
            for m in ALL_MODELS
        }
    return Table4(percent_change=percent_change)
