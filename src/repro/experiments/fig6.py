"""Figure 6 — cumulative distribution of misprediction distances.

For each benchmark, the fraction of mispredictions whose segment (the run
of instructions since the previous misprediction) is at most D instructions
long, sampled at the paper's log-spaced distances.  The paper's key
observation: the distributions are consistent across non-numeric programs,
with over 80% of mispredictions within 100 instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import NON_NUMERIC, SUITE
from repro.experiments.runner import SuiteRunner, TextTable

#: Distance sample points (instructions).
POINTS = (5, 10, 20, 50, 100, 200, 500, 1000, 5000)


@dataclass
class Fig6:
    distributions: dict[str, list[float]]  # program -> CDF at POINTS
    points: tuple[int, ...] = POINTS
    non_numeric_within_100: float = 0.0

    def render(self) -> str:
        table = TextTable(
            headers=["Program"] + [f"<={p}" for p in self.points],
            title="Figure 6: Cumulative Distribution of Misprediction Distances",
        )
        for name, cdf in self.distributions.items():
            table.add(name, *[f"{value:.2f}" for value in cdf])
        rendered = table.render()
        rendered += (
            f"\nnon-numeric mispredictions within 100 instructions: "
            f"{self.non_numeric_within_100:.2f} (paper: >0.80)"
        )
        return rendered


def requirements(config) -> list:
    """Farm requests: full analysis with SP segment statistics collected."""
    from repro.jobs import AnalysisRequest

    return [
        AnalysisRequest(name, collect_misprediction_stats=True) for name in SUITE
    ]


def run(runner: SuiteRunner) -> Fig6:
    distributions: dict[str, list[float]] = {}
    within_100: list[tuple[int, int]] = []  # (count within, total)
    for name in SUITE:
        result = runner.analyze(name, collect_misprediction_stats=True)
        stats = result.misprediction_stats
        assert stats is not None
        distributions[name] = stats.cumulative_distribution(list(POINTS))
        if name in NON_NUMERIC and stats.segments:
            total = len(stats.segments)
            within = sum(1 for d in stats.distances if d <= 100)
            within_100.append((within, total))
    pooled_within = sum(w for w, _ in within_100)
    pooled_total = sum(t for _, t in within_100)
    return Fig6(
        distributions=distributions,
        non_numeric_within_100=pooled_within / pooled_total if pooled_total else 1.0,
    )
