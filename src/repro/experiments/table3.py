"""Table 3 — parallelism for each machine model.

The paper's headline result: per-benchmark parallelism on all seven
abstract machines (perfect inlining and unrolling enabled), with the
harmonic mean over the non-numeric programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import NON_NUMERIC, SUITE
from repro.core import ALL_MODELS, MachineModel, harmonic_mean
from repro.experiments.paper_data import PAPER_TABLE3, PAPER_TABLE3_HMEAN
from repro.experiments.runner import SuiteRunner, TextTable


@dataclass
class Table3:
    parallelism: dict[str, dict[MachineModel, float]]
    harmonic: dict[MachineModel, float]

    def render(self, include_paper: bool = True) -> str:
        table = TextTable(
            headers=["Program"] + [m.label for m in ALL_MODELS],
            title="Table 3: Parallelism for each Machine Model",
        )
        for name, values in self.parallelism.items():
            table.add(name, *[values[m] for m in ALL_MODELS])
            if include_paper:
                table.add(
                    "  (paper)", *[PAPER_TABLE3[name][m] for m in ALL_MODELS]
                )
        table.add("HMean*", *[self.harmonic[m] for m in ALL_MODELS])
        if include_paper:
            table.add("  (paper)", *[PAPER_TABLE3_HMEAN[m] for m in ALL_MODELS])
        rendered = table.render()
        return rendered + "\n*harmonic mean over the non-numeric programs"


def requirements(config) -> list:
    """Farm requests: the default full-model analysis of every benchmark."""
    from repro.jobs import AnalysisRequest

    return [AnalysisRequest(name) for name in SUITE]


def run(runner: SuiteRunner) -> Table3:
    parallelism: dict[str, dict[MachineModel, float]] = {}
    for name in SUITE:
        result = runner.analyze(name)
        parallelism[name] = {m: result[m].parallelism for m in ALL_MODELS}
    harmonic = {
        m: harmonic_mean([parallelism[n][m] for n in NON_NUMERIC])
        for m in ALL_MODELS
    }
    return Table3(parallelism=parallelism, harmonic=harmonic)
