"""Command-line driver: regenerate the paper's tables and figures.

Usage::

    repro-experiments                     # everything, default budget
    repro-experiments table3 fig6        # selected experiments
    repro-experiments --max-steps 500000 # bigger traces (closer to paper)
    repro-experiments --jobs 8           # farm the work across 8 processes
    repro-experiments --cache-dir /tmp/c # persistent artifact cache location
    repro-experiments --no-cache         # don't keep artifacts between runs
    repro-experiments --legacy-engine    # per-model analyzer sweep (oracle)
    repro-experiments --telemetry-dir T --metrics --profile  # observability
    repro-experiments --retries 3 --job-timeout 120  # farm fault tolerance
    repro-experiments --resume           # skip jobs an interrupted run retired
    repro-experiments --inject-faults "stage=trace,mode=raise,times=1,seed=7"
    repro-experiments --list

Tables and figures go to stdout; timing lines and the farm's report go
to stderr, so stdout is byte-identical across worker counts and cache
states.  ``--quiet`` suppresses the stderr chatter entirely, and the
farm's per-job breakdown is only shown when stderr is a terminal (the
stage and total summary lines always appear).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Callable

from repro import telemetry
from repro.asm import AsmError
from repro.diagnostics import DiagnosticError
from repro.jobs import BACKEND_NAMES, FaultPlan, FaultSpecError
from repro.jobs.faults import ENV_VAR as FAULTS_ENV_VAR
from repro.jobs.protocol import parse_worker_address
from repro.lang import CompileError
from repro.experiments import (
    ablations,
    fig4,
    fig5,
    fig6,
    fig7,
    mix,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.runner import RunConfig, SuiteRunner

#: Default location of the persistent artifact cache.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class Experiment:
    """One runnable experiment: its renderer plus its farm requirements."""

    run: Callable[[SuiteRunner], str]
    requirements: Callable[[RunConfig], list]


EXPERIMENTS = {
    "table1": Experiment(
        lambda runner: table1.run(runner).render(), table1.requirements
    ),
    "table2": Experiment(
        lambda runner: table2.run(runner).render(), table2.requirements
    ),
    "table3": Experiment(
        lambda runner: table3.run(runner).render(), table3.requirements
    ),
    "table4": Experiment(
        lambda runner: table4.run(runner).render(), table4.requirements
    ),
    "fig4": Experiment(lambda runner: fig4.run(runner).render(), fig4.requirements),
    "fig5": Experiment(lambda runner: fig5.run(runner).render(), fig5.requirements),
    "fig6": Experiment(lambda runner: fig6.run(runner).render(), fig6.requirements),
    "fig7": Experiment(lambda runner: fig7.run(runner).render(), fig7.requirements),
    "mix": Experiment(lambda runner: mix.run(runner).render(), mix.requirements),
    "ablation-predictors": Experiment(
        lambda runner: ablations.predictor_ablation(runner).render(),
        ablations.predictor_requirements,
    ),
    "ablation-window": Experiment(
        lambda runner: ablations.window_ablation(runner).render(),
        ablations.window_requirements,
    ),
    "ablation-latency": Experiment(
        lambda runner: ablations.latency_ablation(runner).render(),
        ablations.latency_requirements,
    ),
    "ablation-inlining": Experiment(
        lambda runner: ablations.inlining_ablation(runner).render(),
        ablations.inlining_requirements,
    ),
    "ablation-guarded": Experiment(
        lambda runner: ablations.guarded_ablation(runner).render(),
        ablations.guarded_requirements,
    ),
    "ablation-convergence": Experiment(
        lambda runner: ablations.convergence_ablation(runner).render(),
        ablations.convergence_requirements,
    ),
    "ablation-flows": Experiment(
        lambda runner: ablations.flows_ablation(runner).render(),
        ablations.flows_requirements,
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Lam & Wilson (ISCA 1992).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=150_000,
        help="dynamic trace budget per benchmark (default 150000)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="override every benchmark's workload scale",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run the object-code verifier and trace sanitizer over every "
        "benchmark before analyzing it (fails on any error diagnostic)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment farm (default 1: serial "
        "in-process execution); with --backend remote, the per-worker "
        "in-flight bound instead",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="executor backend: serial (in-process), pool (local process "
        "pool), or remote (repro-worker daemons; needs --workers); "
        "default: inferred from --jobs/--workers",
    )
    parser.add_argument(
        "--workers",
        metavar="HOST:PORT,...",
        default=None,
        help="comma-separated repro-worker addresses for the remote "
        "backend (see docs/distributed.md)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"persistent content-addressed artifact cache "
        f"(default {DEFAULT_CACHE_DIR}/)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not keep artifacts between runs (with --jobs > 1, a "
        "throwaway directory still transports artifacts between workers)",
    )
    parser.add_argument(
        "--legacy-engine",
        action="store_true",
        help="analyze with the original per-model sweep instead of the "
        "fused single-pass engine (differential-testing oracle; slower, "
        "bypasses the persistent result cache)",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="write observability output (spans.jsonl, metrics, profiles) "
        "under DIR; inspect it with repro-stats",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="export metrics.json and metrics.prom into the telemetry "
        "directory (requires --telemetry-dir)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="capture cProfile data per experiment and per farm job into "
        "the telemetry directory (requires --telemetry-dir)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="requeue a failed farm job up to N times (with exponential "
        "backoff and deterministic jitter) before quarantining it as dead "
        "(default 2)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per farm job attempt; a job exceeding it "
        "is failed (and its hung worker killed) then retried "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip farm jobs an interrupted identical invocation already "
        "retired (per the cache's run journal); prints a skipped-vs-"
        "executed summary to stderr",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="arm the deterministic fault injector (chaos testing), e.g. "
        "'stage=trace,mode=raise,rate=0.5,times=1,seed=7'; defaults to "
        f"the {FAULTS_ENV_VAR} environment variable when set "
        "(see docs/robustness.md)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress stderr chatter (timing lines and the farm report)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print extra detail to stderr (per-model flow-ledger peaks)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also append every experiment's output to FILE (a full report)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(use --list to see the choices)"
        )
    if args.jobs < 1:
        parser.error("--jobs must be a positive worker count")
    workers = None
    if args.workers is not None:
        workers = [w.strip() for w in args.workers.split(",") if w.strip()]
        if not workers:
            parser.error("--workers needs at least one host:port address")
        for address in workers:
            try:
                parse_worker_address(address)
            except ValueError as exc:
                parser.error(f"--workers: {exc}")
    backend = args.backend
    if backend == "remote" and not workers:
        parser.error("--backend remote requires --workers host:port,...")
    if workers and backend not in (None, "remote"):
        parser.error(f"--workers only applies to --backend remote, not {backend}")
    if args.metrics and args.telemetry_dir is None:
        parser.error("--metrics requires --telemetry-dir")
    if args.profile and args.telemetry_dir is None:
        parser.error("--profile requires --telemetry-dir")
    if args.retries < 0:
        parser.error("--retries must be non-negative")
    if args.job_timeout is not None and args.job_timeout <= 0:
        parser.error("--job-timeout must be positive")
    if args.resume and args.no_cache:
        parser.error("--resume needs the persistent cache (drop --no-cache)")
    inject_faults = args.inject_faults
    if inject_faults is None:
        inject_faults = os.environ.get(FAULTS_ENV_VAR) or None
    if inject_faults is not None:
        try:
            FaultPlan.from_spec(inject_faults)
        except FaultSpecError as exc:
            parser.error(f"--inject-faults: {exc}")

    transport = None
    if args.no_cache:
        # Workers still need a directory to ship artifacts through; use a
        # throwaway one so nothing persists.
        cache_dir = None
        if args.jobs > 1:
            transport = tempfile.TemporaryDirectory(prefix="repro-cache-")
            cache_dir = transport.name
    else:
        cache_dir = args.cache_dir

    report = open(args.output, "a") if args.output else None
    if report:
        report.write(
            f"# repro-experiments report (max_steps={args.max_steps}, "
            f"scale={args.scale or 'defaults'})\n\n"
        )
    runner = SuiteRunner(
        RunConfig(
            max_steps=args.max_steps,
            scale=args.scale,
            verify=args.verify,
            jobs=args.jobs,
            cache_dir=cache_dir,
            engine="legacy" if args.legacy_engine else "fused",
            telemetry_dir=args.telemetry_dir,
            profile=args.profile,
            retries=args.retries,
            job_timeout=args.job_timeout,
            resume=args.resume,
            inject_faults=inject_faults,
            backend=backend,
            workers=tuple(workers) if workers else (),
        )
    )
    try:
        requests = [
            request
            for name in names
            for request in EXPERIMENTS[name].requirements(runner.config)
        ]
        try:
            runner.prefetch(requests)
        except (AsmError, CompileError, DiagnosticError) as exc:
            print(f"prefetch: {exc}", file=sys.stderr)
            return 1
        if args.resume and not args.quiet:
            farm = runner.farm_report
            print(
                f"[farm] resume: {farm.resumed} jobs already retired "
                f"(skipped), {farm.executed} executed, "
                f"{farm.hits} cache hits",
                file=sys.stderr,
            )
        for name in names:
            started = time.time()
            try:
                with telemetry.span("experiment", experiment=name), telemetry.profiled(
                    f"experiment-{name}"
                ):
                    output = EXPERIMENTS[name].run(runner)
            except (AsmError, CompileError, DiagnosticError) as exc:
                # Diagnostic-bearing failures are reported, not raised: the
                # rendered diagnostics carry everything a traceback would.
                print(f"{name}: {exc}", file=sys.stderr)
                return 1
            elapsed = time.time() - started
            print(output)
            print()
            if not args.quiet:
                print(f"[{name}: {elapsed:.1f}s]", file=sys.stderr)
            if report:
                report.write(output + f"\n[{name}: {elapsed:.1f}s]\n\n")
                report.flush()
        if args.verbose:
            _print_flow_peaks()
        if runner.farm_report.total and not args.quiet:
            print(
                runner.farm_report.render(per_job=sys.stderr.isatty()),
                file=sys.stderr,
            )
        if args.metrics:
            telemetry.write_metrics(args.telemetry_dir)
    finally:
        telemetry.shutdown()
        if report:
            report.close()
        if transport is not None:
            transport.cleanup()
    return 0


def _print_flow_peaks() -> None:
    """Surface the per-model flow-ledger peak gauges on stderr.

    The analyzer records peaks into the ``repro_analyzer_flow_ledger_peak``
    gauge whenever a flow-limited analysis runs (the ablation-flows
    experiment), so this works with or without ``--telemetry-dir``.
    """
    samples = telemetry.METRICS.get("repro_analyzer_flow_ledger_peak").to_json()[
        "samples"
    ]
    for sample in samples:
        labels = sample["labels"]
        print(
            f"[flow-peaks] {labels['program']} {labels['model']} "
            f"flows={labels['flows']}: peak {sample['value']:.0f}",
            file=sys.stderr,
        )
    if not samples:
        print(
            "[flow-peaks] no flow-limited analyses ran "
            "(ablation-flows produces them)",
            file=sys.stderr,
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
