"""Command-line driver: regenerate the paper's tables and figures.

Usage::

    repro-experiments                     # everything, default budget
    repro-experiments table3 fig6        # selected experiments
    repro-experiments --max-steps 500000 # bigger traces (closer to paper)
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.asm import AsmError
from repro.diagnostics import DiagnosticError
from repro.lang import CompileError
from repro.experiments import (
    ablations,
    fig4,
    fig5,
    fig6,
    fig7,
    mix,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.runner import RunConfig, SuiteRunner

EXPERIMENTS = {
    "table1": lambda runner: table1.run(runner).render(),
    "table2": lambda runner: table2.run(runner).render(),
    "table3": lambda runner: table3.run(runner).render(),
    "table4": lambda runner: table4.run(runner).render(),
    "fig4": lambda runner: fig4.run(runner).render(),
    "fig5": lambda runner: fig5.run(runner).render(),
    "fig6": lambda runner: fig6.run(runner).render(),
    "fig7": lambda runner: fig7.run(runner).render(),
    "mix": lambda runner: mix.run(runner).render(),
    "ablation-predictors": lambda runner: ablations.predictor_ablation(runner).render(),
    "ablation-window": lambda runner: ablations.window_ablation(runner).render(),
    "ablation-latency": lambda runner: ablations.latency_ablation(runner).render(),
    "ablation-inlining": lambda runner: ablations.inlining_ablation(runner).render(),
    "ablation-guarded": lambda runner: ablations.guarded_ablation(runner).render(),
    "ablation-convergence": lambda runner: ablations.convergence_ablation(runner).render(),
    "ablation-flows": lambda runner: ablations.flows_ablation(runner).render(),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Lam & Wilson (ISCA 1992).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=150_000,
        help="dynamic trace budget per benchmark (default 150000)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="override every benchmark's workload scale",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run the object-code verifier and trace sanitizer over every "
        "benchmark before analyzing it (fails on any error diagnostic)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also append every experiment's output to FILE (a full report)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(use --list to see the choices)"
        )

    report = open(args.output, "a") if args.output else None
    if report:
        report.write(
            f"# repro-experiments report (max_steps={args.max_steps}, "
            f"scale={args.scale or 'defaults'})\n\n"
        )
    runner = SuiteRunner(
        RunConfig(max_steps=args.max_steps, scale=args.scale, verify=args.verify)
    )
    try:
        for name in names:
            started = time.time()
            try:
                output = EXPERIMENTS[name](runner)
            except (AsmError, CompileError, DiagnosticError) as exc:
                # Diagnostic-bearing failures are reported, not raised: the
                # rendered diagnostics carry everything a traceback would.
                print(f"{name}: {exc}", file=sys.stderr)
                return 1
            elapsed = time.time() - started
            print(output)
            print(f"[{name}: {elapsed:.1f}s]")
            print()
            if report:
                report.write(output + f"\n[{name}: {elapsed:.1f}s]\n\n")
                report.flush()
    finally:
        if report:
            report.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
