"""Tiny method+path router for the serve front end.

Routes are regex patterns with named groups; resolution returns the
handler and extracted path parameters, or a structured miss — 404 for an
unknown path, 405 (with the ``Allow`` set) for a known path asked with
the wrong method.  Route *names* feed the ``repro_serve_*`` metric
labels, so metrics stay low-cardinality no matter what job ids appear in
URLs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Route:
    method: str
    pattern: re.Pattern
    name: str
    handler: Callable


@dataclass(frozen=True)
class Match:
    """Outcome of routing one request line."""

    handler: Callable | None
    params: dict[str, str]
    name: str
    #: Methods the path supports when ``handler`` is None because of a
    #: method mismatch; empty means the path is unknown (404).
    allow: tuple[str, ...] = ()


class Router:
    def __init__(self):
        self._routes: list[Route] = []

    def add(self, method: str, pattern: str, name: str, handler: Callable) -> None:
        """Register *pattern* (anchored regex with named groups)."""
        self._routes.append(
            Route(method.upper(), re.compile(f"^{pattern}$"), name, handler)
        )

    def resolve(self, method: str, path: str) -> Match:
        allow: list[str] = []
        for route in self._routes:
            matched = route.pattern.match(path)
            if matched is None:
                continue
            if route.method == method.upper():
                return Match(route.handler, matched.groupdict(), route.name)
            allow.append(route.method)
        if allow:
            return Match(None, {}, "method_not_allowed", tuple(dict.fromkeys(allow)))
        return Match(None, {}, "not_found")
