"""Batch scheduler: drains the fair queue through the experiment farm.

One scheduler loop owns the service's :class:`~repro.jobs.ExecutionEngine`
usage.  It waits for queued submissions, pops a fair batch, and runs the
whole batch as *one* farm invocation on a worker thread — planning every
submission into a single merged :class:`~repro.jobs.JobGraph` so that
identical artifacts requested by different tenants in the same batch are
deduplicated before anything executes, exactly as the batch CLI pools
its requests.  Store and queue mutations happen only on the event-loop
thread; the worker thread touches nothing but the planner, the engine,
and a batch-local :class:`~repro.jobs.FarmReport`.

Per-submission outcomes are recovered from the merged report via
:meth:`~repro.jobs.engine.Planner.request_keys`: a submission fails iff
one of its artifact keys retired dead (its
:class:`~repro.jobs.FailureRecord` provenance rides along on the job
document), and its executed/hit tallies are the report rows for its own
keys.

Draining: :meth:`begin_drain` makes the loop exit once the queue is
empty; everything already accepted still runs to completion, and
:attr:`drained` fires when the last batch has settled.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time

from repro import telemetry
from repro.bench import BenchmarkSpec
from repro.jobs import ArtifactCache, ExecutionEngine, FarmReport, JobGraph, Planner
from repro.jobs import keys as jobkeys
from repro.jobs.report import DEAD, HIT, RESUMED, RUN
from repro.serve import jobstore
from repro.serve.jobstore import JobStore, ServeJob
from repro.serve.queue import FairQueue

#: Artifact accessor per pipeline stage: (cache path method, media type).
STAGE_ARTIFACTS = {
    "compile": ("asm_path", "text/plain; charset=utf-8"),
    "trace": ("trace_path", "application/octet-stream"),
    "analyze": ("result_path", "application/json"),
}


def artifact_location(cache: ArtifactCache, stage: str, key: str):
    """(path, content type) of the artifact a finished job serves."""
    method, content_type = STAGE_ARTIFACTS[stage]
    return getattr(cache, method)(key), content_type


class BatchScheduler:
    """Executes queued submissions in fair batches on the farm."""

    def __init__(
        self,
        cache: ArtifactCache,
        store: JobStore,
        queue: FairQueue,
        *,
        jobs: int = 1,
        batch_limit: int = 8,
        retry=None,
        faults=None,
        telemetry_dir: str | None = None,
        profile: bool = False,
        backend: str | None = None,
        workers: tuple[str, ...] = (),
    ):
        if batch_limit < 1:
            raise ValueError("batch_limit must be positive")
        self.cache = cache
        self.store = store
        self.queue = queue
        self.jobs = jobs
        self.batch_limit = batch_limit
        self.retry = retry
        self.faults = faults
        self.telemetry_dir = telemetry_dir
        self.profile = profile
        self.backend = backend
        self.workers = tuple(workers)
        #: Ad-hoc benchmark registrations, kept for the service lifetime
        #: so coalesced and repeated submissions re-plan identically.
        self._adhoc: dict[str, BenchmarkSpec] = {}
        self._draining = False
        self._drain_requested = asyncio.Event()
        self.drained = asyncio.Event()
        # Service-lifetime farm totals (the healthz document).
        self.batches_total = 0
        self.executed_total = 0
        self.hits_total = 0

    def register_adhoc(self, spec: BenchmarkSpec) -> None:
        self._adhoc.setdefault(spec.name, spec)

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop after the queue empties; already-accepted work completes."""
        self._draining = True
        self._drain_requested.set()
        telemetry.METRICS.gauge("repro_serve_draining").set(1)

    async def run(self) -> None:
        """The scheduler loop; cancelled only via :meth:`begin_drain`."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                if self.queue.depth == 0:
                    if self._draining:
                        break
                    await self._wait_for_work()
                    continue
                batch = self.queue.pop_batch(self.batch_limit)
                telemetry.METRICS.gauge("repro_serve_queue_depth").set(
                    self.queue.depth
                )
                for job in batch:
                    self.store.mark_running(job)
                outcomes = await loop.run_in_executor(
                    None, self._execute_batch, batch
                )
                for job, outcome in zip(batch, outcomes):
                    self._settle(job, outcome)
        finally:
            self.drained.set()

    async def _wait_for_work(self) -> None:
        """Sleep until a submission arrives or a drain is requested."""
        waiters = (
            asyncio.ensure_future(self.queue.wait()),
            asyncio.ensure_future(self._drain_requested.wait()),
        )
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for waiter in waiters:
                waiter.cancel()

    # -- worker-thread side ---------------------------------------------

    def _execute_batch(self, batch: list[ServeJob]) -> list[dict]:
        """Plan and run one batch as a single merged farm invocation."""
        report = FarmReport()
        planner = Planner(
            self.cache,
            report,
            telemetry_dir=self.telemetry_dir,
            profile=self.profile,
            adhoc=self._adhoc,
        )
        merged = JobGraph()
        plans: list[dict] = []  # per-serve-job planning outcome
        started = time.time()
        with telemetry.span("serve.batch", submissions=len(batch)):
            for job in batch:
                plans.append(self._plan_one(planner, merged, job))
            if len(merged):
                engine = ExecutionEngine(
                    self.cache,
                    jobs=self.jobs,
                    retry=self.retry,
                    faults=self.faults,
                    backend=self.backend,
                    workers=list(self.workers),
                )
                try:
                    engine.execute(merged, report)
                except Exception as exc:  # engine-level catastrophe
                    for plan in plans:
                        if plan.get("error") is None:
                            plan["error"] = f"execution failed: {exc}"
        self.batches_total += 1
        self.executed_total += report.executed
        self.hits_total += report.hits
        telemetry.record_span(
            "serve.batch.wall", time.time() - started, submissions=len(batch)
        )
        return [self._outcome(plan, report) for plan in plans]

    def _plan_one(
        self, planner: Planner, merged: JobGraph, job: ServeJob
    ) -> dict:
        """Plan one submission into *merged*; returns its key set.

        A planning failure (an ad-hoc source that does not compile, a
        compile-stage fault) is a per-submission error: it never poisons
        the rest of the batch.

        Each submission gets a ``serve.schedule`` span linked into its
        request's trace (not the batch span's — the batch interleaves
        many traces), and every farm job it plans carries a ``trace_ctx``
        payload parenting worker-side spans under that schedule span.
        Jobs deduplicated across submissions keep the *first* planner's
        context (:meth:`JobGraph.add` is first-wins), matching who
        actually caused the work.
        """
        with telemetry.span(
            "serve.schedule",
            tenant=job.tenant,
            benchmark=job.spec.benchmark,
            stage=job.spec.stage,
        ) as schedule_span:
            ctx = job.trace
            if ctx is not None:
                schedule_span.link(ctx.trace_id, ctx.parent_id)
            plan = self._plan_into(planner, merged, job, schedule_span)
        return plan

    def _plan_into(
        self, planner: Planner, merged: JobGraph, job: ServeJob, schedule_span
    ) -> dict:
        spec = job.spec
        ctx = job.trace
        schedule_id = getattr(schedule_span, "span_id", None)
        trace_ctx = None
        if ctx is not None and schedule_id is not None:
            trace_ctx = {"trace_id": ctx.trace_id, "parent_id": schedule_id}
        try:
            request = spec.to_request()
            if request is None:  # compile stage: runs inside the planner
                bench = planner.spec(spec.benchmark)
                scale = (
                    spec.scale if spec.scale is not None else bench.default_scale
                )
                planner.fingerprint(spec.benchmark, scale)
                compile_key = jobkeys.compile_key(
                    spec.benchmark, scale, bench.source(scale)
                )
                return {
                    "stage": "compile",
                    "keys": (compile_key,),
                    "result_key": compile_key,
                    "error": None,
                }
            request_keys = planner.request_keys(
                request, spec.scale, spec.max_steps
            )
            graph = planner.plan([request], spec.scale, spec.max_steps)
            for farm_job in graph:
                if trace_ctx is not None:
                    farm_job.payload.setdefault("trace_ctx", trace_ctx)
                merged.add(farm_job)
            result_key = (
                request_keys.result if spec.stage == "analyze"
                else request_keys.trace
            )
            return {
                "stage": spec.stage,
                "keys": request_keys.all(),
                "result_key": result_key,
                "error": None,
            }
        except Exception as exc:
            return {
                "stage": spec.stage,
                "keys": (),
                "result_key": None,
                "error": f"planning failed: {exc}",
            }

    def _outcome(self, plan: dict, report: FarmReport) -> dict:
        """Per-submission outcome extracted from the merged batch report."""
        keyset = set(plan["keys"])
        failures = [
            dataclasses.asdict(record)
            for record in report.failures
            if record.key in keyset
        ]
        executed = hits = 0
        dead = []
        for key in plan["keys"]:
            record = report.records.get(key)
            if record is None:
                continue
            if record.status == RUN:
                executed += 1
            elif record.status in (HIT, RESUMED):
                hits += 1
            elif record.status == DEAD:
                dead.append(f"{record.stage}:{key[:12]}")
        error = plan["error"]
        if error is None and dead:
            error = f"farm job(s) dead: {', '.join(dead)}"
        _, content_type = STAGE_ARTIFACTS[plan["stage"]]
        return {
            "status": jobstore.FAILED if error else jobstore.DONE,
            "result_key": None if error else plan["result_key"],
            "content_type": content_type,
            "error": error,
            "failures": failures,
            "executed": executed,
            "hits": hits,
        }

    # -- event-loop side ------------------------------------------------

    def _settle(self, job: ServeJob, outcome: dict) -> None:
        self.store.finish(
            job,
            outcome["status"],
            result_key=outcome["result_key"],
            content_type=outcome["content_type"],
            error=outcome["error"],
            failures=outcome["failures"],
            executed=outcome["executed"],
            hits=outcome["hits"],
        )
        label = (
            "completed" if outcome["status"] == jobstore.DONE else "failed"
        )
        telemetry.METRICS.counter("repro_serve_jobs_total").inc(outcome=label)
