"""In-memory job records: what every poll and result fetch reads.

One :class:`ServeJob` per *distinct active submission*.  The store keys
active jobs by the submission digest, so a second identical submission —
from the same tenant or another — coalesces onto the in-flight job
instead of planning a second graph.  Finished jobs leave the coalescing
index immediately (a repeat of a finished submission is a *new* job,
which the content-addressed cache then serves without executing
anything) and are retained for polling until evicted FIFO past the
retention bound, so a long-lived service holds bounded state no matter
how much traffic it has absorbed.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.serve.submission import SubmissionSpec

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Statuses a job can end in (and leave the coalescing index with).
FINISHED = (DONE, FAILED)


@dataclass
class ServeJob:
    """One accepted submission moving through the service."""

    id: str
    digest: str
    tenant: str
    spec: SubmissionSpec
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: Content address of the artifact the result endpoint serves.
    result_key: str | None = None
    content_type: str = "application/json"
    error: str | None = None
    #: Failure provenance (FailureRecord fields) for this job's keys.
    failures: list[dict] = field(default_factory=list)
    #: Identical submissions folded into this job while it was active.
    coalesced: int = 0
    #: Farm jobs executed (vs served from cache) resolving this job.
    executed: int = 0
    hits: int = 0
    #: Distributed-trace context of the submitting request
    #: (:class:`~repro.telemetry.context.TraceContext`), or None.
    trace: object = None

    def to_json(self) -> dict:
        """The status document ``GET /v1/jobs/<id>`` serves."""
        doc = {
            "job": self.id,
            "status": self.status,
            "stage": self.spec.stage,
            "benchmark": self.spec.benchmark,
            "max_steps": self.spec.max_steps,
            "tenant": self.tenant,
            "submitted_at": round(self.submitted_at, 6),
            "coalesced": self.coalesced,
        }
        if self.trace is not None:
            doc["trace_id"] = self.trace.trace_id
        if self.started_at is not None:
            doc["started_at"] = round(self.started_at, 6)
        if self.finished_at is not None:
            doc["finished_at"] = round(self.finished_at, 6)
            doc["executed"] = self.executed
            doc["cache_hits"] = self.hits
        if self.status == DONE:
            doc["result"] = f"/v1/jobs/{self.id}/result"
            doc["result_key"] = self.result_key
        if self.error is not None:
            doc["error"] = self.error
        if self.failures:
            doc["failures"] = self.failures
        return doc


class JobStore:
    """All jobs the service knows about, with bounded retention."""

    def __init__(self, retain: int = 1024):
        if retain < 1:
            raise ValueError("retain must be positive")
        self.retain = retain
        self._jobs: "OrderedDict[str, ServeJob]" = OrderedDict()
        self._active: dict[str, str] = {}  # submission digest -> job id
        self._seq = itertools.count(1)

    def submit(
        self, spec: SubmissionSpec, tenant: str
    ) -> tuple[ServeJob, bool]:
        """Create a job for *spec*, or coalesce onto the active one.

        Returns ``(job, created)``; ``created`` is False when an
        identical submission is already queued or running, in which case
        the caller must *not* enqueue anything.
        """
        digest = spec.digest()
        active_id = self._active.get(digest)
        if active_id is not None:
            job = self._jobs[active_id]
            job.coalesced += 1
            return job, False
        job = ServeJob(
            id=f"j{next(self._seq):06d}-{digest[:8]}",
            digest=digest,
            tenant=tenant,
            spec=spec,
        )
        self._jobs[job.id] = job
        self._active[digest] = job.id
        return job, True

    def discard(self, job: ServeJob) -> None:
        """Forget a job that was never enqueued (backpressure rejection)."""
        self._active.pop(job.digest, None)
        self._jobs.pop(job.id, None)

    def get(self, job_id: str) -> ServeJob | None:
        return self._jobs.get(job_id)

    def mark_running(self, job: ServeJob) -> None:
        job.status = RUNNING
        job.started_at = time.time()

    def finish(
        self,
        job: ServeJob,
        status: str,
        *,
        result_key: str | None = None,
        content_type: str | None = None,
        error: str | None = None,
        failures: list[dict] | None = None,
        executed: int = 0,
        hits: int = 0,
    ) -> None:
        """Settle a job and release its coalescing slot."""
        assert status in FINISHED, status
        job.status = status
        job.finished_at = time.time()
        job.result_key = result_key
        if content_type is not None:
            job.content_type = content_type
        job.error = error
        job.failures = failures if failures is not None else []
        job.executed = executed
        job.hits = hits
        self._active.pop(job.digest, None)
        self._evict()

    def _evict(self) -> None:
        """Drop the oldest *finished* jobs beyond the retention bound."""
        excess = len(self._jobs) - self.retain
        if excess <= 0:
            return
        for job_id in [
            jid
            for jid, job in self._jobs.items()
            if job.status in FINISHED
        ][:excess]:
            del self._jobs[job_id]

    def counts(self) -> dict[str, int]:
        """Job tally by status (the healthz document)."""
        tally = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in self._jobs.values():
            tally[job.status] = tally.get(job.status, 0) + 1
        return tally

    def tenants(self) -> dict[str, dict[str, int]]:
        """Per-tenant in-flight/served tallies over retained jobs
        (the /v1/stats document)."""
        per: dict[str, dict[str, int]] = {}
        for job in self._jobs.values():
            row = per.setdefault(job.tenant, {"in_flight": 0, "served": 0})
            if job.status in FINISHED:
                row["served"] += 1
            else:
                row["in_flight"] += 1
        return per

    def __len__(self) -> int:
        return len(self._jobs)
