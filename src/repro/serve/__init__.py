"""Analysis-as-a-service front end on the experiment farm.

``repro-serve`` exposes the pipeline — compile, trace, analyze, for
suite benchmarks or ad-hoc MiniC source — over a small HTTP API backed
by the :mod:`repro.jobs` farm and its content-addressed artifact cache.
Stdlib only: the server is raw :mod:`asyncio`, the client raw
:mod:`http.client`.

Multi-tenant by construction: submissions are admitted through a
bounded :class:`~repro.serve.queue.FairQueue` (backpressure via HTTP
429), scheduled round-robin across API tokens, coalesced when identical
submissions race (:class:`~repro.serve.jobstore.JobStore`), and executed
in merged batches by the :class:`~repro.serve.scheduler.BatchScheduler`
so the farm's deduplication and cache do the heavy lifting.  Results are
served as the raw cache artifact bytes — byte-identical to what the
batch ``repro-experiments`` CLI produces for the same request.

See ``docs/serve.md`` for the API reference and deployment notes.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobstore import JobStore, ServeJob
from repro.serve.queue import FairQueue, QueueFull
from repro.serve.scheduler import BatchScheduler, artifact_location
from repro.serve.server import Request, Response, ServeApp, ServeConfig, ServerThread
from repro.serve.submission import (
    SubmissionError,
    SubmissionSpec,
    adhoc_name,
    adhoc_spec,
    parse_submission,
)

__all__ = [
    "BatchScheduler",
    "FairQueue",
    "JobStore",
    "QueueFull",
    "Request",
    "Response",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeJob",
    "ServerThread",
    "SubmissionError",
    "SubmissionSpec",
    "adhoc_name",
    "adhoc_spec",
    "artifact_location",
    "parse_submission",
]
