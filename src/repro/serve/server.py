"""The asyncio HTTP front end: repro analysis as a service.

A deliberately small HTTP/1.1 server on :mod:`asyncio` streams — no
web framework, stdlib only, one request per connection (``Connection:
close``), JSON in and JSON (or raw artifact bytes) out.  All service
state — job store, fair queue, scheduler — lives on the event-loop
thread; the only blocking work is the farm batch, which the scheduler
runs on a worker thread.

Lifecycle: :class:`ServeApp` binds the socket, optionally starts the
scheduler loop, and serves until :meth:`begin_shutdown` (wired to
SIGTERM/SIGINT by the CLI) starts a graceful drain — new submissions get
503, accepted jobs run to completion, then the socket closes.

:class:`ServerThread` hosts a full app on a background thread with its
own event loop, for tests and the load harness.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import telemetry
from repro.jobs import ArtifactCache
from repro.serve.jobstore import DONE, FAILED, JobStore
from repro.serve.queue import FairQueue, QueueFull
from repro.serve.router import Router
from repro.serve.scheduler import BatchScheduler, artifact_location
from repro.serve.submission import SubmissionError, parse_submission
from repro.telemetry.context import (
    TraceContext,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from repro.telemetry.stats_cli import PERCENTILES, percentile

#: Largest request body the server will read (bytes).
MAX_BODY_BYTES = 1_048_576
#: Per-connection budget for reading + answering one request (seconds).
REQUEST_TIMEOUT = 60.0
#: Header naming the tenant; absent requests share the anonymous lane.
TENANT_HEADER = "x-api-token"
#: Header carrying the W3C-style distributed trace context.
TRACEPARENT_HEADER = "traceparent"
#: Request latencies retained per route for the /v1/stats percentiles.
LATENCY_WINDOW = 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Everything the service needs to boot."""

    cache_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port, report it via ServeApp.port
    queue_limit: int = 64
    batch_limit: int = 8
    jobs: int = 1
    retain: int = 1024
    max_steps: int = 150_000
    max_steps_cap: int = 2_000_000
    #: Optional farm knobs, mostly for tests: a RetryPolicy and a fault
    #: injection spec passed through to the ExecutionEngine.
    retry: object = None
    faults: object = None
    telemetry_dir: str | None = None
    profile: bool = False
    retry_after: int = 2  # the 429 Retry-After hint, seconds
    #: Farm executor backend ("serial" | "pool" | "remote"; None infers
    #: from jobs/workers) and repro-worker addresses for "remote".
    backend: str | None = None
    workers: tuple[str, ...] = ()


@dataclass
class Request:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    #: Trace context for work this request spawns: the request's trace
    #: id with the (pre-minted) request span as parent.  Set by the
    #: connection handler before dispatch.
    trace: TraceContext | None = None

    def json(self):
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SubmissionError(f"request body is not valid JSON: {exc}")

    def tenant(self) -> str:
        return self.headers.get(TENANT_HEADER, "").strip() or "anonymous"


@dataclass
class Response:
    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, status: int, payload: dict, **headers: str) -> "Response":
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        return cls(status, body, headers=headers)

    @classmethod
    def error(cls, status: int, message: str, **headers: str) -> "Response":
        return cls.json(status, {"error": message}, **headers)

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


class ServeApp:
    """One service instance: socket + store + queue + scheduler."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.cache = ArtifactCache(config.cache_dir)
        self.store = JobStore(retain=config.retain)
        self.queue = FairQueue(config.queue_limit)
        self.scheduler = BatchScheduler(
            self.cache,
            self.store,
            self.queue,
            jobs=config.jobs,
            batch_limit=config.batch_limit,
            retry=config.retry,
            faults=config.faults,
            telemetry_dir=config.telemetry_dir,
            profile=config.profile,
            backend=config.backend,
            workers=config.workers,
        )
        self.router = Router()
        self.router.add("POST", r"/v1/jobs", "submit", self._submit)
        self.router.add(
            "GET", r"/v1/jobs/(?P<job_id>[\w-]+)", "job", self._job_status
        )
        self.router.add(
            "GET", r"/v1/jobs/(?P<job_id>[\w-]+)/result", "result", self._result
        )
        self.router.add("GET", r"/healthz", "healthz", self._healthz)
        self.router.add("GET", r"/metrics", "metrics", self._metrics)
        self.router.add("GET", r"/v1/stats", "stats", self._stats)
        self._server: asyncio.base_events.Server | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        self.port: int | None = None
        #: Orphan temp files removed from the cache at startup.
        self.swept = 0
        #: Per-route request-latency rings feeding /v1/stats percentiles
        #: (bounded, event-loop-thread only).
        self._latency: dict[str, deque] = {}

    # -- lifecycle ------------------------------------------------------

    async def start(self, run_scheduler: bool = True) -> None:
        """Bind the socket (and start the scheduler loop).

        ``run_scheduler=False`` boots the HTTP surface with nothing
        consuming the queue — tests use it to fill the queue to capacity
        deterministically and observe backpressure.
        """
        self.swept = self.cache.sweep_orphans()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if run_scheduler:
            self._scheduler_task = asyncio.create_task(self.scheduler.run())

    def begin_shutdown(self) -> None:
        """Start a graceful drain (idempotent; signal-handler safe)."""
        if not self._shutdown.is_set():
            self.scheduler.begin_drain()
            self._shutdown.set()

    async def run_until_drained(self) -> None:
        """Serve until :meth:`begin_shutdown`, then drain and close."""
        await self._shutdown.wait()
        if self._scheduler_task is not None:
            await self.scheduler.drained.wait()
        await self.close()

    async def close(self) -> None:
        if self._scheduler_task is not None:
            self.scheduler.begin_drain()
            await self.scheduler.drained.wait()
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @property
    def draining(self) -> bool:
        return self.scheduler.draining or self._shutdown.is_set()

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        route_name = "unparsed"
        method = "?"
        span_id = remote_parent = trace_id = None
        try:
            request, early = await asyncio.wait_for(
                self._read_request(reader), REQUEST_TIMEOUT
            )
            if early is not None:
                response, route_name = early, "protocol_error"
            else:
                method = request.method
                # Continue the caller's trace (traceparent header) or
                # start a fresh one; the request span's id is minted up
                # front so work scheduled on other threads can parent to
                # it before the span itself is emitted below.
                incoming = parse_traceparent(
                    request.headers.get(TRACEPARENT_HEADER)
                )
                trace_id = (
                    incoming.trace_id if incoming is not None else new_trace_id()
                )
                remote_parent = incoming.parent_id if incoming is not None else None
                span_id = telemetry.mint_span_id()
                request.trace = TraceContext(trace_id, span_id)
                response, route_name = self._dispatch(request)
        except asyncio.TimeoutError:
            response, route_name = (
                Response.error(400, "request read timed out"),
                "timeout",
            )
        except ConnectionError:
            writer.close()
            return
        except Exception as exc:  # never leak a traceback to the socket
            response, route_name = (
                Response.error(500, f"internal error: {exc}"),
                "internal_error",
            )
        if trace_id is not None:
            response.headers.setdefault(
                "Traceparent",
                format_traceparent(TraceContext(trace_id, span_id)),
            )
        try:
            writer.write(response.encode())
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
        duration = time.perf_counter() - started
        ring = self._latency.get(route_name)
        if ring is None:
            ring = self._latency[route_name] = deque(maxlen=LATENCY_WINDOW)
        ring.append(duration)
        telemetry.METRICS.counter("repro_serve_requests_total").inc(
            method=method, route=route_name, status=response.status
        )
        telemetry.METRICS.histogram("repro_serve_request_seconds").observe(
            duration, route=route_name
        )
        telemetry.record_span(
            "serve.request",
            duration,
            span_id=span_id,
            parent_id=remote_parent,
            trace_id=trace_id,
            route=route_name,
            status=response.status,
            method=method,
        )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[Request | None, Response | None]:
        """Parse one HTTP/1.1 request; a Response means 'answer this'."""
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return None, Response.error(400, "malformed request line")
        method, target, _ = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return None, Response.error(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            return None, Response.error(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        return Request(method.upper(), path, headers, body), None

    def _dispatch(self, request: Request) -> tuple[Response, str]:
        match = self.router.resolve(request.method, request.path)
        if match.handler is None:
            if match.allow:
                response = Response.error(
                    405,
                    f"method {request.method} not allowed",
                    Allow=", ".join(match.allow),
                )
            else:
                response = Response.error(404, f"no such path: {request.path}")
            return response, match.name
        try:
            return match.handler(request, **match.params), match.name
        except SubmissionError as exc:
            return Response.error(400, str(exc)), match.name

    # -- handlers -------------------------------------------------------

    def _submit(self, request: Request) -> Response:
        tenant = request.tenant()
        telemetry.METRICS.counter("repro_serve_tenant_submissions_total").inc(
            tenant=tenant
        )
        if self.draining:
            telemetry.METRICS.counter("repro_serve_jobs_total").inc(
                outcome="rejected"
            )
            return Response.error(
                503, "service is draining; not accepting new jobs"
            )
        spec, adhoc = parse_submission(
            request.json(),
            default_max_steps=self.config.max_steps,
            max_steps_cap=self.config.max_steps_cap,
        )
        job, created = self.store.submit(spec, tenant)
        if created:
            # The job joins the submitting request's trace: scheduler and
            # farm-worker spans for it all parent under the request span.
            job.trace = request.trace
        if not created:
            telemetry.METRICS.counter("repro_serve_jobs_total").inc(
                outcome="coalesced"
            )
            doc = job.to_json()
            doc["created"] = False
            return Response.json(202, doc)
        if adhoc is not None:
            self.scheduler.register_adhoc(adhoc)
        try:
            self.queue.push(tenant, job)
        except QueueFull:
            self.store.discard(job)
            telemetry.METRICS.counter("repro_serve_backpressure_total").inc()
            telemetry.METRICS.counter("repro_serve_jobs_total").inc(
                outcome="rejected"
            )
            return Response.error(
                429,
                "queue at capacity; retry later",
                **{"Retry-After": str(self.config.retry_after)},
            )
        telemetry.METRICS.gauge("repro_serve_queue_depth").set(self.queue.depth)
        telemetry.METRICS.counter("repro_serve_jobs_total").inc(
            outcome="accepted"
        )
        doc = job.to_json()
        doc["created"] = True
        return Response.json(202, doc)

    def _job_status(self, request: Request, job_id: str) -> Response:
        job = self.store.get(job_id)
        if job is None:
            return Response.error(404, f"no such job: {job_id}")
        return Response.json(200, job.to_json())

    def _result(self, request: Request, job_id: str) -> Response:
        job = self.store.get(job_id)
        if job is None:
            return Response.error(404, f"no such job: {job_id}")
        if job.status == FAILED:
            return Response.json(
                409,
                {
                    "error": job.error or "job failed",
                    "failures": job.failures,
                    "job": job.id,
                },
            )
        if job.status != DONE:
            return Response.json(
                202, {"job": job.id, "status": job.status}
            )
        path, content_type = artifact_location(
            self.cache, job.spec.stage, job.result_key
        )
        if not path.is_file():
            return Response.error(
                404, f"result artifact {job.result_key} is no longer cached"
            )
        return Response(200, path.read_bytes(), content_type=content_type)

    def _healthz(self, request: Request) -> Response:
        return Response.json(
            200,
            {
                "status": "draining" if self.draining else "ok",
                "jobs": self.store.counts(),
                "queue_depth": self.queue.depth,
                "cache_orphans_swept": self.swept,
                "farm": {
                    "batches": self.scheduler.batches_total,
                    "executed": self.scheduler.executed_total,
                    "cache_hits": self.scheduler.hits_total,
                },
            },
        )

    def _metrics(self, request: Request) -> Response:
        text = telemetry.METRICS.render_prometheus()
        return Response(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _stats(self, request: Request) -> Response:
        """Live introspection: queue, tenants, coalescing, latencies."""
        tenants = self.store.tenants()
        submissions = telemetry.METRICS.counter(
            "repro_serve_tenant_submissions_total"
        )
        for labels, value in submissions.samples():
            row = tenants.setdefault(
                labels["tenant"], {"in_flight": 0, "served": 0}
            )
            row["submitted"] = int(value)
        jobs_total = telemetry.METRICS.counter("repro_serve_jobs_total")
        latency = {}
        for route, ring in sorted(self._latency.items()):
            values = sorted(ring)
            row = {"count": len(values), "max_ms": values[-1] * 1000.0}
            for q in PERCENTILES:
                row[f"p{q}_ms"] = percentile(values, q) * 1000.0
            latency[route] = {
                key: round(value, 3) if key != "count" else value
                for key, value in row.items()
            }
        return Response.json(
            200,
            {
                "draining": self.draining,
                "queue": {
                    "depth": self.queue.depth,
                    "capacity": self.config.queue_limit,
                },
                "jobs": self.store.counts(),
                "tenants": tenants,
                "coalesced": int(jobs_total.value(outcome="coalesced")),
                "rejected": int(jobs_total.value(outcome="rejected")),
                "farm": {
                    "batches": self.scheduler.batches_total,
                    "executed": self.scheduler.executed_total,
                    "cache_hits": self.scheduler.hits_total,
                },
                "latency": latency,
            },
        )


class ServerThread:
    """A ServeApp on a daemon thread with its own event loop.

    The in-process deployment used by the test suite and the load
    harness::

        with ServerThread(ServeConfig(cache_dir=...)) as srv:
            client = ServeClient(srv.base_url)
            ...

    ``shutdown()`` (or leaving the context) triggers the same graceful
    drain as SIGTERM on the CLI.
    """

    def __init__(self, config: ServeConfig, run_scheduler: bool = True):
        self.config = config
        self.run_scheduler = run_scheduler
        self.app: ServeApp | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._boot_error is not None:
            raise RuntimeError("repro-serve failed to boot") from self._boot_error
        if self.app is None or self.app.port is None:
            raise RuntimeError("repro-serve did not come up within 30s")
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        try:
            self.app = ServeApp(self.config)
            await self.app.start(run_scheduler=self.run_scheduler)
        except BaseException as exc:
            self._boot_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self.app.run_until_drained()

    @property
    def base_url(self) -> str:
        assert self.app is not None and self.app.port is not None
        return f"http://{self.config.host}:{self.app.port}"

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain gracefully and join the server thread."""
        if self._loop is not None and self.app is not None:
            self._loop.call_soon_threadsafe(self.app.begin_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("repro-serve did not drain in time")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
