"""``repro-serve``: run the analysis service from the command line.

Boots one :class:`~repro.serve.server.ServeApp` on the foreground event
loop, wires SIGTERM/SIGINT to a graceful drain, and exits 0 once the
drain completes.  All state worth keeping lives in the artifact cache
directory, so stopping and restarting the service loses nothing but
in-flight job documents.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro import telemetry
from repro.jobs import BACKEND_NAMES
from repro.jobs.protocol import parse_worker_address
from repro.serve.server import ServeApp, ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve compile/trace/analyze jobs over HTTP, backed by "
        "the experiment farm and its content-addressed artifact cache.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="artifact cache shared with the batch CLI")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="max queued submissions before 429")
    parser.add_argument("--batch-limit", type=int, default=8,
                        help="max submissions per farm batch")
    parser.add_argument("--jobs", type=int, default=1,
                        help="farm worker processes per batch (with "
                        "--backend remote: per-worker in-flight bound)")
    parser.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="farm executor backend (default: inferred "
                        "from --jobs/--workers)")
    parser.add_argument("--workers", metavar="HOST:PORT,...", default=None,
                        help="comma-separated repro-worker addresses for "
                        "the remote backend (see docs/distributed.md)")
    parser.add_argument("--retain", type=int, default=1024,
                        help="finished job documents kept for polling")
    parser.add_argument("--max-steps", type=int, default=150_000,
                        help="default per-job trace step budget")
    parser.add_argument("--max-steps-cap", type=int, default=2_000_000,
                        help="largest max_steps a submission may request")
    parser.add_argument("--telemetry-dir", default=None,
                        help="enable telemetry (spans + farm metrics) here")
    parser.add_argument("--profile", action="store_true",
                        help="profile farm stages (requires --telemetry-dir)")
    parser.add_argument("--quiet", action="store_true")
    return parser


async def _serve(app: ServeApp, quiet: bool) -> None:
    await app.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, app.begin_shutdown)
        except NotImplementedError:  # non-Unix event loop
            pass
    if not quiet:
        print(
            f"repro-serve listening on http://{app.config.host}:{app.port} "
            f"(cache {app.config.cache_dir}, queue limit "
            f"{app.config.queue_limit}, swept {app.swept} orphan(s))",
            flush=True,
        )
    await app.run_until_drained()
    if not quiet:
        print("repro-serve drained, exiting", flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    workers: tuple[str, ...] = ()
    if args.workers is not None:
        workers = tuple(
            w.strip() for w in args.workers.split(",") if w.strip()
        )
        if not workers:
            parser.error("--workers needs at least one host:port address")
        for address in workers:
            try:
                parse_worker_address(address)
            except ValueError as exc:
                parser.error(f"--workers: {exc}")
    if args.backend == "remote" and not workers:
        parser.error("--backend remote requires --workers host:port,...")
    if workers and args.backend not in (None, "remote"):
        parser.error(
            f"--workers only applies to --backend remote, not {args.backend}"
        )
    if args.telemetry_dir:
        telemetry.configure(args.telemetry_dir, profile=args.profile)
    config = ServeConfig(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        batch_limit=args.batch_limit,
        jobs=args.jobs,
        retain=args.retain,
        max_steps=args.max_steps,
        max_steps_cap=args.max_steps_cap,
        telemetry_dir=args.telemetry_dir,
        profile=args.profile,
        backend=args.backend,
        workers=workers,
    )
    app = ServeApp(config)
    try:
        asyncio.run(_serve(app, args.quiet))
    except KeyboardInterrupt:
        pass
    if args.telemetry_dir:
        telemetry.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
