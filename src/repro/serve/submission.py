"""Validated job submissions: the service's request vocabulary.

A submission names either a suite benchmark or carries raw MiniC source
(compiled as an *ad-hoc* benchmark whose name embeds the source digest),
picks a pipeline stage to materialize — ``compile``, ``trace``, or
``analyze`` (the default, which implies the first two) — and an analyzer
option set.  Parsing is strict: unknown fields, unknown models, and
out-of-range budgets are :class:`SubmissionError`\\ s that the server
maps to HTTP 400 before anything touches the queue.

Canonicalization matters more than convenience here: two submissions
that request the same artifacts must produce the same :meth:`digest`
regardless of field order or model-list order, because the digest is the
coalescing key — concurrent identical submissions from different tenants
share one job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.bench import SUITE, BenchmarkSpec
from repro.core.models import MachineModel
from repro.jobs.requests import AnalysisRequest, Request, TraceRequest

#: Pipeline stages a submission may target.
STAGES = ("compile", "trace", "analyze")

#: Upper bound on inline MiniC source, in bytes (pre-queue rejection).
MAX_SOURCE_BYTES = 262_144

#: Fields accepted in a submission body.
FIELDS = frozenset(
    {
        "stage",
        "benchmark",
        "source",
        "scale",
        "max_steps",
        "models",
        "perfect_unrolling",
        "perfect_inlining",
        "misprediction_stats",
    }
)


class SubmissionError(ValueError):
    """A submission body the service refuses (HTTP 400)."""


@dataclass(frozen=True)
class SubmissionSpec:
    """One validated, canonical job submission."""

    stage: str
    benchmark: str
    source: str | None
    scale: int | None
    max_steps: int
    models: tuple[str, ...] | None  # None: the full model set
    perfect_unrolling: bool = True
    perfect_inlining: bool = True
    misprediction_stats: bool = False

    def canonical(self) -> dict:
        """The submission as a canonical JSON-able dict (digest input)."""
        return {
            "stage": self.stage,
            "benchmark": self.benchmark,
            "source": self.source,
            "scale": self.scale,
            "max_steps": self.max_steps,
            "models": sorted(self.models) if self.models is not None else None,
            "perfect_unrolling": self.perfect_unrolling,
            "perfect_inlining": self.perfect_inlining,
            "misprediction_stats": self.misprediction_stats,
        }

    def digest(self) -> str:
        """Coalescing key: sha256 of the canonical submission."""
        material = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def to_request(self) -> Request | None:
        """The farm request this submission plans as (None for compile)."""
        if self.stage == "compile":
            return None
        if self.stage == "trace":
            return TraceRequest(self.benchmark, max_steps=self.max_steps)
        models = None
        if self.models is not None:
            models = tuple(MachineModel(label) for label in self.models)
        return AnalysisRequest(
            self.benchmark,
            models=models,
            perfect_unrolling=self.perfect_unrolling,
            perfect_inlining=self.perfect_inlining,
            collect_misprediction_stats=self.misprediction_stats,
            max_steps=self.max_steps,
        )

    def describe(self) -> str:
        return f"{self.stage} {self.benchmark} (max_steps={self.max_steps})"


def adhoc_name(source: str) -> str:
    """Benchmark name of an ad-hoc MiniC submission (digest-addressed)."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return f"adhoc-{digest[:12]}"


def adhoc_spec(source: str) -> BenchmarkSpec:
    """A :class:`BenchmarkSpec` wrapping client-supplied MiniC source.

    The spec's ``source`` callable ignores the workload scale — ad-hoc
    programs are submitted at a fixed shape — but scale still feeds the
    cache keys, so the content addresses stay well-formed.
    """
    return BenchmarkSpec(
        name=adhoc_name(source),
        language="C",
        description="ad-hoc MiniC submission",
        numeric=False,
        source=lambda scale, _text=source: _text,
    )


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise SubmissionError(message)


def parse_submission(
    payload: object,
    *,
    default_max_steps: int,
    max_steps_cap: int,
) -> tuple[SubmissionSpec, BenchmarkSpec | None]:
    """Validate a POST body into a spec (plus its ad-hoc spec, if any)."""
    _expect(isinstance(payload, dict), "submission body must be a JSON object")
    unknown = sorted(set(payload) - FIELDS)
    _expect(not unknown, f"unknown submission field(s): {', '.join(unknown)}")

    stage = payload.get("stage", "analyze")
    _expect(
        stage in STAGES,
        f"stage must be one of {', '.join(STAGES)} (got {stage!r})",
    )

    benchmark = payload.get("benchmark")
    source = payload.get("source")
    _expect(
        (benchmark is None) != (source is None),
        "provide exactly one of 'benchmark' (a suite name) or 'source' "
        "(inline MiniC)",
    )
    adhoc = None
    if source is not None:
        _expect(isinstance(source, str), "'source' must be a string")
        _expect(
            len(source.encode("utf-8")) <= MAX_SOURCE_BYTES,
            f"'source' exceeds {MAX_SOURCE_BYTES} bytes",
        )
        _expect(bool(source.strip()), "'source' is empty")
        adhoc = adhoc_spec(source)
        benchmark = adhoc.name
    else:
        _expect(isinstance(benchmark, str), "'benchmark' must be a string")
        _expect(
            benchmark in SUITE,
            f"unknown benchmark {benchmark!r} (known: {', '.join(SUITE)})",
        )

    scale = payload.get("scale")
    if scale is not None:
        _expect(
            isinstance(scale, int) and not isinstance(scale, bool) and scale >= 1,
            "'scale' must be a positive integer",
        )
    if source is not None and scale is None:
        scale = 1  # ad-hoc programs have no suite default scale

    max_steps = payload.get("max_steps", default_max_steps)
    _expect(
        isinstance(max_steps, int)
        and not isinstance(max_steps, bool)
        and max_steps >= 1,
        "'max_steps' must be a positive integer",
    )
    _expect(
        max_steps <= max_steps_cap,
        f"'max_steps' exceeds this server's cap of {max_steps_cap}",
    )

    models = payload.get("models")
    if models is not None:
        _expect(
            isinstance(models, list) and models,
            "'models' must be a non-empty list of model labels",
        )
        known = {model.value for model in MachineModel}
        bad = [m for m in models if m not in known]
        _expect(
            not bad,
            f"unknown model label(s): {', '.join(map(str, bad))} "
            f"(known: {', '.join(sorted(known))})",
        )
        models = tuple(dict.fromkeys(models))  # dedupe, keep labels

    flags = {}
    for field in ("perfect_unrolling", "perfect_inlining", "misprediction_stats"):
        value = payload.get(field)
        if value is not None:
            _expect(isinstance(value, bool), f"'{field}' must be a boolean")
            flags[field] = value

    spec = SubmissionSpec(
        stage=stage,
        benchmark=benchmark,
        source=source,
        scale=scale,
        max_steps=max_steps,
        models=models,
        perfect_unrolling=flags.get("perfect_unrolling", True),
        perfect_inlining=flags.get("perfect_inlining", True),
        misprediction_stats=flags.get("misprediction_stats", False),
    )
    return spec, adhoc
