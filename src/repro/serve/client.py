"""Synchronous client for the repro-serve HTTP API.

A thin :mod:`http.client` wrapper — one connection per call, matching
the server's ``Connection: close`` discipline — used by the CI smoke
job, the load harness, and anyone scripting against a running service.
Also a small CLI (``python -m repro.serve.client``) for ad-hoc pokes.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
import urllib.parse


class ServeError(RuntimeError):
    """A non-success response from the service."""

    def __init__(self, status: int, payload: object):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class ServeClient:
    """Talks to one repro-serve instance at *base_url*."""

    def __init__(self, base_url: str, token: str | None = None, timeout: float = 120.0):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(f"expected an http:// base URL, got {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.token = token
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Connection": "close"}
            if self.token:
                headers["X-Api-Token"] = self.token
            if extra_headers:
                headers.update(extra_headers)
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        finally:
            connection.close()

    @staticmethod
    def _json(data: bytes) -> dict:
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {"raw": data.decode("utf-8", "replace")}

    # -- API ------------------------------------------------------------

    def submit(self, submission: dict, traceparent: str | None = None) -> dict:
        """POST a submission; returns the job document (HTTP 202).

        ``traceparent`` joins the submission to an existing distributed
        trace (``00-<trace_id>-<parent span id>-01``); the service echoes
        its own context back in the response's ``Traceparent`` header and
        the job document's ``trace_id``.
        """
        extra = {"Traceparent": traceparent} if traceparent else None
        status, _, data = self._request(
            "POST", "/v1/jobs", submission, extra_headers=extra
        )
        doc = self._json(data)
        if status != 202:
            raise ServeError(status, doc)
        return doc

    def job(self, job_id: str) -> dict:
        status, _, data = self._request("GET", f"/v1/jobs/{job_id}")
        doc = self._json(data)
        if status != 200:
            raise ServeError(status, doc)
        return doc

    def result(self, job_id: str) -> bytes:
        """Raw result artifact bytes; raises unless the job is done."""
        status, _, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            raise ServeError(status, self._json(data))
        return data

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.05) -> dict:
        """Poll until the job settles; returns its final document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["status"] in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['status']} after {timeout}s"
                )
            time.sleep(poll)

    def submit_and_wait(
        self,
        submission: dict,
        timeout: float = 300.0,
        traceparent: str | None = None,
    ) -> tuple[dict, bytes | None]:
        """Submit, wait, and fetch bytes; (final doc, bytes or None)."""
        job_id = self.submit(submission, traceparent=traceparent)["job"]
        doc = self.wait(job_id, timeout=timeout)
        if doc["status"] != "done":
            return doc, None
        return doc, self.result(job_id)

    def healthz(self) -> dict:
        status, _, data = self._request("GET", "/healthz")
        doc = self._json(data)
        if status != 200:
            raise ServeError(status, doc)
        return doc

    def metrics(self) -> str:
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, self._json(data))
        return data.decode("utf-8")

    def stats(self) -> dict:
        """The live introspection document (``GET /v1/stats``)."""
        status, _, data = self._request("GET", "/v1/stats")
        doc = self._json(data)
        if status != 200:
            raise ServeError(status, doc)
        return doc

    def wait_ready(self, timeout: float = 30.0) -> dict:
        """Poll /healthz until the service answers (boot handshake)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (OSError, ServeError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-client",
        description="Submit a job to a running repro-serve and print the result.",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8321")
    parser.add_argument("--token", default=None, help="tenant API token")
    parser.add_argument("--benchmark", help="suite benchmark name")
    parser.add_argument(
        "--source", help="path to a MiniC file to submit ad hoc"
    )
    parser.add_argument("--stage", default="analyze",
                        choices=("compile", "trace", "analyze"))
    parser.add_argument("--max-steps", type=int, default=None)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    if (args.benchmark is None) == (args.source is None):
        parser.error("provide exactly one of --benchmark or --source")
    submission: dict = {"stage": args.stage}
    if args.benchmark:
        submission["benchmark"] = args.benchmark
    else:
        with open(args.source, encoding="utf-8") as handle:
            submission["source"] = handle.read()
    if args.max_steps is not None:
        submission["max_steps"] = args.max_steps

    client = ServeClient(args.url, token=args.token)
    doc, payload = client.submit_and_wait(submission, timeout=args.timeout)
    if payload is None:
        print(json.dumps(doc, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    sys.stdout.buffer.write(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
