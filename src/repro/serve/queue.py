"""Bounded multi-tenant admission queue with round-robin fairness.

The queue is the service's backpressure point: total depth is capped
across all tenants, and a push past capacity raises :class:`QueueFull`,
which the server maps to HTTP 429 with a ``Retry-After`` hint.  Nothing
is ever silently dropped — a submission is either queued or refused at
the door.

Fairness is round-robin over tenants, not FIFO over arrivals: each
tenant has its own FIFO lane, and :meth:`pop_batch` drains lanes by
rotating through the tenants that currently have work.  A tenant
flooding the queue can exhaust *capacity* (new pushes from everyone get
429) but cannot starve *scheduling* — a lone job from a quiet tenant is
picked ahead of the flooder's backlog.

Single-threaded by design: every method must be called from the event
loop thread.  The only coordination primitive is an :class:`asyncio.Event`
the scheduler waits on.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Iterable


class QueueFull(Exception):
    """The queue is at capacity; the submission was refused."""


class FairQueue:
    """Bounded queue of :class:`~repro.serve.jobstore.ServeJob` entries."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lanes: dict[str, Deque] = {}
        #: Tenants with non-empty lanes, in service order.
        self._rotation: Deque[str] = deque()
        self._depth = 0
        self._ready = asyncio.Event()

    @property
    def depth(self) -> int:
        return self._depth

    def push(self, tenant: str, job) -> None:
        """Enqueue *job* for *tenant*, or raise :class:`QueueFull`."""
        if self._depth >= self.capacity:
            raise QueueFull(
                f"queue at capacity ({self.capacity} submissions pending)"
            )
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = deque()
        if not lane:
            self._rotation.append(tenant)
        lane.append(job)
        self._depth += 1
        self._ready.set()

    def pop_batch(self, limit: int) -> list:
        """Dequeue up to *limit* jobs, one per tenant per rotation turn."""
        if limit < 1:
            raise ValueError("limit must be positive")
        batch: list = []
        while self._rotation and len(batch) < limit:
            tenant = self._rotation.popleft()
            lane = self._lanes[tenant]
            batch.append(lane.popleft())
            self._depth -= 1
            if lane:
                self._rotation.append(tenant)
            else:
                del self._lanes[tenant]
        if self._depth == 0:
            self._ready.clear()
        return batch

    async def wait(self) -> None:
        """Block until at least one job is queued."""
        await self._ready.wait()

    def drain_all(self) -> list:
        """Dequeue everything (fair order), emptying the queue."""
        return self.pop_batch(max(self._depth, 1)) if self._depth else []

    def tenants(self) -> Iterable[str]:
        return tuple(self._rotation)
