"""The specialized (generated-dispatch) tracing VM.

:class:`FastVM` executes the same programs as :class:`~repro.vm.machine.VM`
— the repo's pixie equivalent — but replaces the interpreter's giant
``if/elif`` opcode dispatch with *per-program generated code*, the same
technique the fused analyzer uses for its per-shape kernels
(:func:`repro.core.analyzer._emit_kernel`).  For each program it emits and
compiles, once, a factory of small Python closures:

* one **block handler** per basic-block leader, covering the whole
  straight-line run up to and including its terminating control transfer.
  Every operand — register indices, immediates, branch targets, the pc
  recorded in the trace — is folded into the source as a literal, so the
  hot path does no ``instr.rs`` attribute walks, no opcode comparisons,
  and pays the dispatch cost (one list index + call) once per *block*
  rather than once per instruction;
* one **single-instruction handler** per non-leader pc, so computed jumps
  (or a manually set ``pc``) may land mid-block and still execute
  correctly, stepping until the next leader realigns with block dispatch.

Each handler returns the next pc.  The run loop indexes the handler
table while the budget allows and the pc stays in code; everything else
— the return-to-sentinel halt, out-of-range computed jumps, and the
budget tail shorter than the longest block — is delegated to the legacy
interpreter (sharing registers, memory, and output in place), which
keeps the two VMs *exactly* equivalent at every edge: the differential
suite asserts byte-identical traces, branch profiles, outputs, exit
values, steps, and ``halted`` flags on every benchmark.

Streaming: pass ``sink=`` (a :class:`~repro.vm.trace_io.TraceWriter` or
anything with a ``write(pcs, addrs, takens)`` method) and the trace is
flushed chunk-by-chunk instead of accumulating in memory — the producer
side of the bounded-memory RTRC v2 pipeline.  See ``docs/vm.md``.
"""

from __future__ import annotations

import time
import weakref

from repro import telemetry
from repro.isa import registers
from repro.isa.opcodes import Opcode
from repro.isa.program import GLOBALS_BASE, STACK_TOP, Program
from repro.vm.machine import RETURN_SENTINEL, VM, RunResult, VMError
from repro.vm.trace import Trace
from repro.vm.trace_io import DEFAULT_CHUNK_RECORDS


class _Halt(Exception):
    """Internal control-flow signal raised by generated HALT handlers."""


_HALT_SIGNAL = _Halt()

#: Opcodes that terminate a basic block (control leaves the fall-through).
_TERMINALS = frozenset(
    (
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLEZ,
        Opcode.BGTZ,
        Opcode.BLTZ,
        Opcode.BGEZ,
        Opcode.J,
        Opcode.JAL,
        Opcode.JR,
        Opcode.JALR,
        Opcode.HALT,
    )
)

_BIN_OPS = {
    Opcode.ADD: "({rs} + {rt})",
    Opcode.SUB: "({rs} - {rt})",
    Opcode.MUL: "({rs} * {rt})",
    Opcode.AND: "({rs} & {rt})",
    Opcode.OR: "({rs} | {rt})",
    Opcode.XOR: "({rs} ^ {rt})",
    Opcode.NOR: "~({rs} | {rt})",
    Opcode.SLL: "({rs} << ({rt} & 31))",
    Opcode.SRL: "(({rs} & 4294967295) >> ({rt} & 31))",
    Opcode.SRA: "({rs} >> ({rt} & 31))",
}

_CMP_OPS = {
    Opcode.SLT: "<",
    Opcode.SLE: "<=",
    Opcode.SEQ: "==",
    Opcode.SNE: "!=",
    Opcode.SGT: ">",
    Opcode.SGE: ">=",
    Opcode.SLTI: "<",
    Opcode.SLEI: "<=",
    Opcode.SEQI: "==",
    Opcode.SNEI: "!=",
    Opcode.SGTI: ">",
    Opcode.SGEI: ">=",
}

_BRANCH_CONDS = {
    Opcode.BEQ: "regs[{rs}] == regs[{rt}]",
    Opcode.BNE: "regs[{rs}] != regs[{rt}]",
    Opcode.BLEZ: "regs[{rs}] <= 0",
    Opcode.BGTZ: "regs[{rs}] > 0",
    Opcode.BLTZ: "regs[{rs}] < 0",
    Opcode.BGEZ: "regs[{rs}] >= 0",
}


def _wrap(expr: str) -> str:
    """Branchless signed-32-bit wrap of *expr* (matches ``_wrap32``)."""
    return f"(({expr}) & 4294967295 ^ 2147483648) - 2147483648"


def _instr_lines(program: Program, pc: int, traced: bool) -> list[str]:
    """Source lines executing the instruction at *pc* (operands folded).

    Terminal instructions end with ``return``/``raise``; everything else
    falls through to the next emitted instruction.  Semantics mirror the
    legacy interpreter case for case — including the ``$zero`` write
    suppression, the operand-read-before-RA-write order of ``jalr``, the
    trap-free div/rem, and the U+FFFD substitution for surrogate PUTC
    code points.
    """
    instr = program.instructions[pc]
    op = instr.opcode
    n_next = pc + 1
    lines: list[str] = []
    emit = lines.append

    def trace_plain() -> None:
        if traced:
            emit(f"ap({pc}); aa(-1); at(-1)")

    def trace_mem() -> None:
        if traced:
            emit(f"ap({pc}); aa(a); at(-1)")

    rs = instr.rs
    rt = instr.rt
    rd = instr.rd
    imm = instr.imm

    if op in _BIN_OPS:
        if rd:
            expr = _BIN_OPS[op].format(rs=f"regs[{rs}]", rt=f"regs[{rt}]")
            emit(f"regs[{rd}] = {_wrap(expr)}")
        trace_plain()
    elif op is Opcode.ADDI:
        if rd:
            emit(f"regs[{rd}] = {_wrap(f'regs[{rs}] + {imm!r}')}")
        trace_plain()
    elif op in (Opcode.ANDI, Opcode.ORI, Opcode.XORI):
        if rd:
            sym = {Opcode.ANDI: "&", Opcode.ORI: "|", Opcode.XORI: "^"}[op]
            emit(f"regs[{rd}] = {_wrap(f'regs[{rs}] {sym} {imm!r}')}")
        trace_plain()
    elif op is Opcode.SLLI:
        if rd:
            emit(f"regs[{rd}] = {_wrap(f'regs[{rs}] << {imm & 31}')}")
        trace_plain()
    elif op is Opcode.SRLI:
        if rd:
            emit(f"regs[{rd}] = {_wrap(f'(regs[{rs}] & 4294967295) >> {imm & 31}')}")
        trace_plain()
    elif op is Opcode.SRAI:
        if rd:
            emit(f"regs[{rd}] = {_wrap(f'regs[{rs}] >> {imm & 31}')}")
        trace_plain()
    elif op in _CMP_OPS and op.value.endswith("i"):
        if rd:
            emit(f"regs[{rd}] = 1 if regs[{rs}] {_CMP_OPS[op]} {imm!r} else 0")
        trace_plain()
    elif op in _CMP_OPS:
        if rd:
            emit(f"regs[{rd}] = 1 if regs[{rs}] {_CMP_OPS[op]} regs[{rt}] else 0")
        trace_plain()
    elif op is Opcode.DIV:
        if rd:
            emit(f"d = regs[{rt}]")
            emit("if d == 0:")
            emit(f"    regs[{rd}] = 0")
            emit("else:")
            emit(f"    q = abs(regs[{rs}]) // abs(d)")
            emit(f"    if (regs[{rs}] < 0) != (d < 0):")
            emit("        q = -q")
            emit(f"    regs[{rd}] = {_wrap('q')}")
        trace_plain()
    elif op is Opcode.REM:
        if rd:
            emit(f"d = regs[{rt}]")
            emit("if d == 0:")
            emit(f"    regs[{rd}] = regs[{rs}]")
            emit("else:")
            emit(f"    r = abs(regs[{rs}]) % abs(d)")
            emit(f"    regs[{rd}] = {_wrap(f'-r if regs[{rs}] < 0 else r')}")
        trace_plain()
    elif op is Opcode.LI:
        if rd:
            emit(f"regs[{rd}] = {imm!r}")
        trace_plain()
    elif op is Opcode.MOV:
        if rd:
            emit(f"regs[{rd}] = regs[{rs}]")
        trace_plain()
    elif op in (Opcode.MOVZ, Opcode.FMOVZ):
        if rd:
            emit(f"if regs[{rt}] == 0:")
            emit(f"    regs[{rd}] = regs[{rs}]")
        trace_plain()
    elif op in (Opcode.MOVN, Opcode.FMOVN):
        if rd:
            emit(f"if regs[{rt}] != 0:")
            emit(f"    regs[{rd}] = regs[{rs}]")
        trace_plain()
    elif op is Opcode.LW:
        emit(f"a = regs[{rs}] + {imm!r}")
        emit("if a < 0:")
        emit(f'    raise VMError(f"negative memory address {{a}} at pc {pc}")')
        if rd:
            emit(f"regs[{rd}] = mg(a, 0)")
        trace_mem()
    elif op is Opcode.SW:
        emit(f"a = regs[{rs}] + {imm!r}")
        emit("if a < 0:")
        emit(f'    raise VMError(f"negative memory address {{a}} at pc {pc}")')
        emit(f"memory[a] = regs[{rt}]")
        trace_mem()
    elif op is Opcode.FLW:
        emit(f"a = regs[{rs}] + {imm!r}")
        emit("if a < 0:")
        emit(f'    raise VMError(f"negative memory address {{a}} at pc {pc}")')
        emit(f"regs[{rd}] = float(mg(a, 0.0))")
        trace_mem()
    elif op is Opcode.FSW:
        emit(f"a = regs[{rs}] + {imm!r}")
        emit("if a < 0:")
        emit(f'    raise VMError(f"negative memory address {{a}} at pc {pc}")')
        emit(f"memory[a] = float(regs[{rt}])")
        trace_mem()
    elif op in _BRANCH_CONDS:
        cond = _BRANCH_CONDS[op].format(rs=rs, rt=rt)
        emit(f"t = 1 if {cond} else 0")
        emit(f"c = pg({pc})")
        emit("if c is None:")
        emit(f"    c = profile[{pc}] = [0, 0]")
        emit("c[t] += 1")
        if traced:
            emit(f"ap({pc}); aa(-1); at(t)")
        emit(f"return {instr.target} if t else {n_next}")
    elif op is Opcode.J:
        trace_plain()
        emit(f"return {instr.target}")
    elif op is Opcode.JAL:
        emit(f"regs[{registers.RA}] = {n_next}")
        trace_plain()
        emit(f"return {instr.target}")
    elif op is Opcode.JR:
        trace_plain()
        emit(f"return regs[{rs}]")
    elif op is Opcode.JALR:
        emit(f"t = regs[{rs}]")
        emit(f"regs[{registers.RA}] = {n_next}")
        trace_plain()
        emit("return t")
    elif op is Opcode.FADD:
        emit(f"regs[{rd}] = regs[{rs}] + regs[{rt}]")
        trace_plain()
    elif op is Opcode.FSUB:
        emit(f"regs[{rd}] = regs[{rs}] - regs[{rt}]")
        trace_plain()
    elif op is Opcode.FMUL:
        emit(f"regs[{rd}] = regs[{rs}] * regs[{rt}]")
        trace_plain()
    elif op is Opcode.FDIV:
        emit(f"d = regs[{rt}]")
        emit(f"regs[{rd}] = regs[{rs}] / d if d != 0.0 else 0.0")
        trace_plain()
    elif op is Opcode.FNEG:
        emit(f"regs[{rd}] = -regs[{rs}]")
        trace_plain()
    elif op is Opcode.FABS:
        emit(f"regs[{rd}] = abs(regs[{rs}])")
        trace_plain()
    elif op is Opcode.FSQRT:
        emit(f"v = regs[{rs}]")
        emit(f"regs[{rd}] = v**0.5 if v >= 0.0 else 0.0")
        trace_plain()
    elif op is Opcode.FMOV:
        emit(f"regs[{rd}] = regs[{rs}]")
        trace_plain()
    elif op is Opcode.FLI:
        emit(f"regs[{rd}] = {float(imm)!r}")
        trace_plain()
    elif op is Opcode.CVTIF:
        emit(f"regs[{rd}] = float(regs[{rs}])")
        trace_plain()
    elif op is Opcode.CVTFI:
        if rd:
            emit(f"regs[{rd}] = {_wrap(f'int(regs[{rs}])')}")
        trace_plain()
    elif op in (Opcode.FEQ, Opcode.FLT, Opcode.FLE):
        if rd:
            sym = {Opcode.FEQ: "==", Opcode.FLT: "<", Opcode.FLE: "<="}[op]
            emit(f"regs[{rd}] = 1 if regs[{rs}] {sym} regs[{rt}] else 0")
        trace_plain()
    elif op is Opcode.NOP:
        trace_plain()
    elif op is Opcode.HALT:
        trace_plain()
        emit(f"cell[0] = {pc}")
        emit("raise _HALT")
    elif op is Opcode.PRINT:
        emit(f"oa(regs[{rs}])")
        trace_plain()
    elif op is Opcode.FPRINT:
        emit(f"oa(float(regs[{rs}]))")
        trace_plain()
    elif op is Opcode.PUTC:
        # Same surrogate clamp as the legacy interpreter: lone surrogates
        # become U+FFFD so output_text always UTF-8-encodes.
        emit(f"v = regs[{rs}] & 1114111")
        emit('oa("\\ufffd" if 55296 <= v <= 57343 else chr(v))')
        trace_plain()
    else:  # pragma: no cover - every opcode is handled above
        raise VMError(f"unimplemented opcode {op}")
    return lines


def _leaders(program: Program) -> set[int]:
    n = len(program.instructions)
    leaders = {0, program.entry}
    for pc, instr in enumerate(program.instructions):
        if instr.target is not None:
            leaders.add(instr.target)
        if instr.opcode in _TERMINALS and pc + 1 < n:
            leaders.add(pc + 1)
    for targets in program.jump_tables.values():
        leaders.update(targets)
    return {pc for pc in leaders if 0 <= pc < n}


def _emit_factory(program: Program, traced: bool) -> str:
    """Generate the handler-table factory source for one program.

    The factory binds the run's mutable state (registers, memory, trace
    columns, profile, step/halt cells) into ~2n closures and returns the
    pc-indexed handler tuple.  Handlers for block leaders execute whole
    basic blocks; handlers for interior pcs execute one instruction, so
    any dynamically computed pc dispatches correctly.
    """
    n = len(program.instructions)
    leaders = _leaders(program)
    out: list[str] = []
    emit = out.append
    emit("def _bind(regs, memory, output, profile, cpcs, caddrs, ctakens, sc, cell):")
    if traced:
        emit("    ap = cpcs.append")
        emit("    aa = caddrs.append")
        emit("    at = ctakens.append")
    emit("    mg = memory.get")
    emit("    pg = profile.get")
    emit("    oa = output.append")

    def emit_handler(pc: int, block: list[int]) -> None:
        emit(f"    def h{pc}():")
        emit(f"        sc[0] += {len(block)}")
        terminal = False
        for member in block:
            for line in _instr_lines(program, member, traced):
                emit(f"        {line}")
        last = program.instructions[block[-1]].opcode
        terminal = last in _TERMINALS
        if not terminal:
            emit(f"        return {block[-1] + 1}")

    for pc in range(n):
        if pc in leaders:
            block = [pc]
            while program.instructions[block[-1]].opcode not in _TERMINALS:
                nxt = block[-1] + 1
                if nxt >= n or nxt in leaders:
                    break
                block.append(nxt)
            emit_handler(pc, block)
        else:
            emit_handler(pc, [pc])

    handler_list = ", ".join(f"h{pc}" for pc in range(n))
    comma = "," if n == 1 else ""
    emit(f"    return ({handler_list}{comma})")
    emit("")
    return "\n".join(out)


class _Decoded:
    """Per-program compiled artifacts, shared across FastVM instances."""

    __slots__ = (
        "program_ref", "max_block", "n_blocks", "_factories", "_sources"
    )

    def __init__(self, program: Program):
        self.program_ref = weakref.ref(program)
        leaders = _leaders(program)
        self.n_blocks = len(leaders)
        n = len(program.instructions)
        max_block = 1
        for leader in leaders:
            length = 1
            pc = leader
            while (
                program.instructions[pc].opcode not in _TERMINALS
                and pc + 1 < n
                and pc + 1 not in leaders
            ):
                pc += 1
                length += 1
            if length > max_block:
                max_block = length
        self.max_block = max_block
        self._factories: dict[bool, object] = {}
        self._sources: dict[bool, str] = {}

    def factory(self, traced: bool):
        cached = self._factories.get(traced)
        if cached is None:
            program = self.program_ref()
            source = _emit_factory(program, traced)
            namespace = {"VMError": VMError, "_HALT": _HALT_SIGNAL}
            variant = "traced" if traced else "untraced"
            exec(
                compile(source, f"<fastvm {program.name} {variant}>", "exec"),
                namespace,
            )
            cached = namespace["_bind"]
            self._factories[traced] = cached
            self._sources[traced] = source
            if telemetry.enabled():
                telemetry.METRICS.counter(
                    "repro_vm_blocks_compiled_total"
                ).inc(self.n_blocks, program=program.name)
        return cached

    def source(self, traced: bool) -> str:
        self.factory(traced)
        return self._sources[traced]


_DECODE_CACHE: dict[int, tuple[weakref.ref, _Decoded]] = {}


def _decode(program: Program) -> _Decoded:
    entry = _DECODE_CACHE.get(id(program))
    if entry is not None and entry[0]() is program:
        return entry[1]
    # Reap entries whose program has been collected (ids can be reused).
    dead = [key for key, (ref, _) in _DECODE_CACHE.items() if ref() is None]
    for key in dead:
        del _DECODE_CACHE[key]
    decoded = _Decoded(program)
    _DECODE_CACHE[id(program)] = (weakref.ref(program), decoded)
    return decoded


def fastvm_source(program: Program, traced: bool = True) -> str:
    """The generated handler-factory source for *program* (debug/teaching)."""
    return _decode(program).source(traced)


class FastVM:
    """A resettable specialized VM for one program (see module docstring).

    Drop-in equivalent of :class:`~repro.vm.machine.VM`: same ``reset``
    contract, same :class:`RunResult`, same exceptions.  ``run`` adds a
    ``sink=`` mode that streams trace chunks to a writer instead of
    building an in-memory :class:`Trace`.
    """

    def __init__(self, program: Program):
        self.program = program
        self._decoded = _decode(program)
        self.reset()

    def reset(self) -> None:
        self.regs: list[int | float] = [0] * registers.NUM_REGS
        for fp_reg in range(registers.FP_BASE, registers.NUM_REGS):
            self.regs[fp_reg] = 0.0
        self.regs[registers.SP] = STACK_TOP
        self.regs[registers.GP] = GLOBALS_BASE
        self.regs[registers.RA] = RETURN_SENTINEL
        self.memory: dict[int, int | float] = dict(self.program.data)
        self.pc = self.program.entry
        self.output: list[int | float | str] = []

    def run(
        self,
        max_steps: int = 1_000_000,
        trace: bool = True,
        sink=None,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> RunResult:
        """Execute until ``halt``/final return or until *max_steps* retire.

        With ``sink`` set (streaming mode), trace chunks are flushed to
        ``sink.write(pcs, addrs, takens)`` whenever ``chunk_records``
        records accumulate, and the returned :class:`RunResult` carries an
        *empty* trace — the records live wherever the sink put them.  With
        ``trace=False`` only the branch profile and architectural state
        are produced (used for profiling runs that need no trace).
        """
        if sink is not None and not trace:
            raise ValueError("streaming (sink=) requires trace=True")
        program = self.program
        n_code = len(program.instructions)
        cpcs: list[int] = []
        caddrs: list[int] = []
        ctakens: list[int] = []
        profile: dict[int, list[int]] = {}
        sc = [0]
        cell = [0]
        handlers = self._decoded.factory(trace)(
            self.regs,
            self.memory,
            self.output,
            profile,
            cpcs,
            caddrs,
            ctakens,
            sc,
            cell,
        )
        pc = self.pc
        halted = False
        tele_on = telemetry.enabled()
        run_started = time.perf_counter() if tele_on else 0.0

        safe = max_steps - self._decoded.max_block
        try:
            if sink is None:
                while sc[0] < safe and 0 <= pc < n_code:
                    pc = handlers[pc]()
            else:
                while sc[0] < safe and 0 <= pc < n_code:
                    pc = handlers[pc]()
                    if len(cpcs) >= chunk_records:
                        sink.write(cpcs, caddrs, ctakens)
                        del cpcs[:]
                        del caddrs[:]
                        del ctakens[:]
        except _Halt:
            halted = True
            pc = cell[0]
        else:
            remaining = max_steps - sc[0]
            if remaining > 0:
                # Budget tail, sentinel return, or an out-of-range computed
                # jump: the legacy interpreter finishes the run over the
                # same architectural state, reproducing its exact edge
                # semantics (halt flags, VMError messages) step for step.
                if tele_on:
                    telemetry.METRICS.counter(
                        "repro_vm_legacy_tail_total"
                    ).inc(program=program.name)
                tail_steps, halted, pc = self._run_tail(
                    pc, remaining, trace, profile, cpcs, caddrs, ctakens
                )
                sc[0] += tail_steps
        self.pc = pc
        steps = sc[0]

        if sink is not None:
            if cpcs:
                sink.write(cpcs, caddrs, ctakens)
            trace_obj = Trace(program)
        elif trace:
            trace_obj = Trace(program, cpcs, caddrs, ctakens)
        else:
            trace_obj = Trace(program)

        if tele_on:
            elapsed = time.perf_counter() - run_started
            if elapsed > 0:
                telemetry.METRICS.gauge(
                    "repro_vm_instructions_per_second"
                ).set(steps / elapsed, program=program.name)
            telemetry.record_span(
                "vm.run",
                elapsed,
                program=program.name,
                steps=steps,
                halted=halted,
                engine="fast",
            )
        return RunResult(
            trace=trace_obj,
            steps=steps,
            halted=halted,
            exit_value=self.regs[registers.V0],
            output=self.output,
            branch_profile=profile,
        )

    def _run_tail(
        self,
        pc: int,
        remaining: int,
        traced: bool,
        profile: dict[int, list[int]],
        cpcs: list[int],
        caddrs: list[int],
        ctakens: list[int],
    ) -> tuple[int, bool, int]:
        """Finish a run with the legacy interpreter over shared state."""
        vm = VM.__new__(VM)
        vm.program = self.program
        vm.regs = self.regs
        vm.memory = self.memory
        vm.output = self.output
        vm.pc = pc
        result = vm.run(max_steps=remaining, trace=traced)
        for branch_pc, counts in result.branch_profile.items():
            own = profile.get(branch_pc)
            if own is None:
                profile[branch_pc] = counts
            else:
                own[0] += counts[0]
                own[1] += counts[1]
        if traced:
            tail = result.trace
            cpcs.extend(tail.pcs)
            caddrs.extend(tail.addrs)
            ctakens.extend(tail.takens)
        return result.steps, result.halted, vm.pc


def run_program_fast(program: Program, max_steps: int = 1_000_000) -> RunResult:
    """Convenience wrapper: fresh FastVM, one traced run."""
    return FastVM(program).run(max_steps=max_steps)
