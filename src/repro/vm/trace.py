"""Dynamic trace representation.

A :class:`Trace` is the interface between the VM and the limit analyzer:
exactly the information the paper extracts with ``pixie`` — which static
instruction executed, the effective address of each memory access, and the
outcome of each conditional branch.

For compactness the trace is stored as three parallel ``list``\\ s rather
than a list of record objects; :data:`NO_ADDR` / :data:`NOT_BRANCH` mark the
unused fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.isa.program import Program

NO_ADDR = -1
"""Address field value for instructions that do not touch memory."""

NOT_BRANCH = -1
"""Taken field value for instructions that are not conditional branches."""

TAKEN = 1
NOT_TAKEN = 0


@dataclass(frozen=True)
class TraceRecord:
    """One dynamic instruction, in object form (convenience view)."""

    pc: int
    addr: int = NO_ADDR
    taken: int = NOT_BRANCH


@dataclass
class Trace:
    """A dynamic instruction trace plus the program it came from."""

    program: Program
    pcs: list[int] = field(default_factory=list)
    addrs: list[int] = field(default_factory=list)
    takens: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pcs)

    def append(self, pc: int, addr: int = NO_ADDR, taken: int = NOT_BRANCH) -> None:
        self.pcs.append(pc)
        self.addrs.append(addr)
        self.takens.append(taken)

    def record(self, index: int) -> TraceRecord:
        return TraceRecord(self.pcs[index], self.addrs[index], self.takens[index])

    def records(self) -> Iterator[TraceRecord]:
        for pc, addr, taken in zip(self.pcs, self.addrs, self.takens):
            yield TraceRecord(pc, addr, taken)

    def branch_outcomes(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(pc, taken)`` for every conditional branch in the trace."""
        for pc, taken in zip(self.pcs, self.takens):
            if taken != NOT_BRANCH:
                yield pc, taken == TAKEN
