"""Dynamic trace representation.

A :class:`Trace` is the interface between the VM and the limit analyzer:
exactly the information the paper extracts with ``pixie`` — which static
instruction executed, the effective address of each memory access, and the
outcome of each conditional branch.

For compactness the trace is stored as three parallel ``array('q')``
columns rather than a list of record objects: a 150k-instruction trace is
three flat 8-byte-per-entry buffers instead of ~450k boxed Python ints.
:data:`NO_ADDR` / :data:`NOT_BRANCH` mark the unused fields.  The columns
still support ``append`` (the VM builds traces incrementally) and item
assignment (the trace sanitizer's fault-injection tests mutate records in
place); constructor arguments may be any iterable of ints and are
normalized to ``array('q')``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.isa.program import Program

NO_ADDR = -1
"""Address field value for instructions that do not touch memory."""

NOT_BRANCH = -1
"""Taken field value for instructions that are not conditional branches."""

TAKEN = 1
NOT_TAKEN = 0


def _column(values: Iterable[int] | None = None) -> array:
    """A trace column: a flat signed-64-bit array."""
    if values is None:
        return array("q")
    if isinstance(values, array) and values.typecode == "q":
        return values
    return array("q", values)


@dataclass(frozen=True)
class TraceRecord:
    """One dynamic instruction, in object form (convenience view)."""

    pc: int
    addr: int = NO_ADDR
    taken: int = NOT_BRANCH


@dataclass
class Trace:
    """A dynamic instruction trace plus the program it came from."""

    program: Program
    pcs: array = field(default_factory=_column)
    addrs: array = field(default_factory=_column)
    takens: array = field(default_factory=_column)

    def __post_init__(self) -> None:
        # Accept lists (or any int iterable) and normalize to array('q').
        self.pcs = _column(self.pcs)
        self.addrs = _column(self.addrs)
        self.takens = _column(self.takens)

    def __len__(self) -> int:
        return len(self.pcs)

    def append(self, pc: int, addr: int = NO_ADDR, taken: int = NOT_BRANCH) -> None:
        self.pcs.append(pc)
        self.addrs.append(addr)
        self.takens.append(taken)

    def record(self, index: int) -> TraceRecord:
        return TraceRecord(self.pcs[index], self.addrs[index], self.takens[index])

    def records(self) -> Iterator[TraceRecord]:
        for pc, addr, taken in zip(self.pcs, self.addrs, self.takens):
            yield TraceRecord(pc, addr, taken)

    def branch_outcomes(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(pc, taken)`` for every conditional branch in the trace."""
        for pc, taken in zip(self.pcs, self.takens):
            if taken != NOT_BRANCH:
                yield pc, taken == TAKEN
