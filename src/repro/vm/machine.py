"""The tracing interpreter.

:class:`VM` executes a :class:`~repro.isa.Program` and records the dynamic
trace the limit study consumes.  It plays the role of MIPS ``pixie`` in the
paper: instrument, run with a step budget, and hand back (pc, effective
address, branch outcome) per executed instruction, plus per-branch profile
counts used to train the static branch predictor.

Machine semantics:

* 32-bit two's-complement integer arithmetic (results wrap).
* Truncating division; division by zero yields 0 (and ``x % 0 == x``) so
  limit-study runs can never trap.
* Word-addressed memory: one Python value (int or float) per address.
  Uninitialized reads return 0.
* ``$zero`` is hardwired to 0; ``$sp`` starts at :data:`~repro.isa.STACK_TOP`
  and ``$gp`` at the globals base.
* ``jr`` to :data:`RETURN_SENTINEL` halts — so a bare ``main`` that returns
  without a ``__start`` stub terminates cleanly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.isa import registers
from repro.isa.opcodes import Opcode
from repro.isa.program import GLOBALS_BASE, STACK_TOP, Program
from repro.vm.trace import NO_ADDR, NOT_BRANCH, Trace

RETURN_SENTINEL = -1
"""Initial $ra; returning to it ends the program."""

_WRAP = 0xFFFFFFFF
_SIGN = 0x80000000


def _wrap32(value: int) -> int:
    """Wrap *value* to a signed 32-bit integer."""
    value &= _WRAP
    return value - (1 << 32) if value & _SIGN else value


class VMError(Exception):
    """Raised for machine-level faults (bad pc, bad address, bad operand)."""


@dataclass
class RunResult:
    """Outcome of one :meth:`VM.run`."""

    trace: Trace
    steps: int
    halted: bool  # False if the step budget expired first
    exit_value: int | float | None
    output: list[int | float | str] = field(default_factory=list)
    branch_profile: dict[int, list[int]] = field(default_factory=dict)

    @property
    def output_text(self) -> str:
        """Characters emitted with ``putc``, concatenated."""
        return "".join(part for part in self.output if isinstance(part, str))


class VM:
    """A resettable interpreter for one program."""

    def __init__(self, program: Program):
        self.program = program
        self.reset()

    def reset(self) -> None:
        self.regs: list[int | float] = [0] * registers.NUM_REGS
        for fp_reg in range(registers.FP_BASE, registers.NUM_REGS):
            self.regs[fp_reg] = 0.0
        self.regs[registers.SP] = STACK_TOP
        self.regs[registers.GP] = GLOBALS_BASE
        self.regs[registers.RA] = RETURN_SENTINEL
        self.memory: dict[int, int | float] = dict(self.program.data)
        self.pc = self.program.entry
        self.output: list[int | float | str] = []

    def run(self, max_steps: int = 1_000_000, trace: bool = True) -> RunResult:
        """Execute until ``halt``/final return or until *max_steps* retire.

        With ``trace=False`` only the branch profile and architectural state
        are produced (used for profiling runs that need no trace).
        """
        program = self.program
        code = program.instructions
        n_code = len(code)
        regs = self.regs
        memory = self.memory
        trace_obj = Trace(program)
        pcs, addrs, takens = trace_obj.pcs, trace_obj.addrs, trace_obj.takens
        profile: dict[int, list[int]] = {}
        pc = self.pc
        steps = 0
        halted = False
        # Telemetry is sampled once around the whole interpreter loop —
        # one timestamp pair per run, nothing per instruction.
        tele_on = telemetry.enabled()
        run_started = time.perf_counter() if tele_on else 0.0

        while steps < max_steps:
            if pc == RETURN_SENTINEL:
                halted = True
                break
            if not 0 <= pc < n_code:
                raise VMError(f"pc {pc} outside code [0, {n_code})")
            instr = code[pc]
            op = instr.opcode
            steps += 1
            addr = NO_ADDR
            taken = NOT_BRANCH
            next_pc = pc + 1

            if op is Opcode.ADD:
                value = _wrap32(regs[instr.rs] + regs[instr.rt])
                if instr.rd:
                    regs[instr.rd] = value
            elif op is Opcode.ADDI:
                value = _wrap32(regs[instr.rs] + instr.imm)
                if instr.rd:
                    regs[instr.rd] = value
            elif op is Opcode.LW:
                addr = regs[instr.rs] + instr.imm
                self._check_addr(addr, pc)
                if instr.rd:
                    regs[instr.rd] = memory.get(addr, 0)
            elif op is Opcode.SW:
                addr = regs[instr.rs] + instr.imm
                self._check_addr(addr, pc)
                memory[addr] = regs[instr.rt]
            elif op is Opcode.BEQ or op is Opcode.BNE:
                outcome = regs[instr.rs] == regs[instr.rt]
                if op is Opcode.BNE:
                    outcome = not outcome
                taken = 1 if outcome else 0
                counts = profile.get(pc)
                if counts is None:
                    counts = profile[pc] = [0, 0]
                counts[taken] += 1
                if outcome:
                    next_pc = instr.target
            elif op in (Opcode.BLEZ, Opcode.BGTZ, Opcode.BLTZ, Opcode.BGEZ):
                value = regs[instr.rs]
                if op is Opcode.BLEZ:
                    outcome = value <= 0
                elif op is Opcode.BGTZ:
                    outcome = value > 0
                elif op is Opcode.BLTZ:
                    outcome = value < 0
                else:
                    outcome = value >= 0
                taken = 1 if outcome else 0
                counts = profile.get(pc)
                if counts is None:
                    counts = profile[pc] = [0, 0]
                counts[taken] += 1
                if outcome:
                    next_pc = instr.target
            elif op is Opcode.LI:
                if instr.rd:
                    regs[instr.rd] = instr.imm
            elif op is Opcode.MOV:
                if instr.rd:
                    regs[instr.rd] = regs[instr.rs]
            elif op is Opcode.MOVZ or op is Opcode.FMOVZ:
                if instr.rd and regs[instr.rt] == 0:
                    regs[instr.rd] = regs[instr.rs]
            elif op is Opcode.MOVN or op is Opcode.FMOVN:
                if instr.rd and regs[instr.rt] != 0:
                    regs[instr.rd] = regs[instr.rs]
            elif op is Opcode.SUB:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] - regs[instr.rt])
            elif op is Opcode.MUL:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] * regs[instr.rt])
            elif op is Opcode.DIV:
                divisor = regs[instr.rt]
                if instr.rd:
                    if divisor == 0:
                        regs[instr.rd] = 0
                    else:
                        quotient = abs(regs[instr.rs]) // abs(divisor)
                        if (regs[instr.rs] < 0) != (divisor < 0):
                            quotient = -quotient
                        regs[instr.rd] = _wrap32(quotient)
            elif op is Opcode.REM:
                divisor = regs[instr.rt]
                if instr.rd:
                    dividend = regs[instr.rs]
                    if divisor == 0:
                        regs[instr.rd] = dividend
                    else:
                        remainder = abs(dividend) % abs(divisor)
                        regs[instr.rd] = _wrap32(-remainder if dividend < 0 else remainder)
            elif op is Opcode.AND:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] & regs[instr.rt])
            elif op is Opcode.OR:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] | regs[instr.rt])
            elif op is Opcode.XOR:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] ^ regs[instr.rt])
            elif op is Opcode.NOR:
                if instr.rd:
                    regs[instr.rd] = _wrap32(~(regs[instr.rs] | regs[instr.rt]))
            elif op is Opcode.SLL:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] << (regs[instr.rt] & 31))
            elif op is Opcode.SRL:
                if instr.rd:
                    regs[instr.rd] = _wrap32(
                        (regs[instr.rs] & _WRAP) >> (regs[instr.rt] & 31)
                    )
            elif op is Opcode.SRA:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] >> (regs[instr.rt] & 31))
            elif op in (Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE, Opcode.SGT, Opcode.SGE):
                lhs, rhs = regs[instr.rs], regs[instr.rt]
                result = _COMPARE[op](lhs, rhs)
                if instr.rd:
                    regs[instr.rd] = 1 if result else 0
            elif op in (
                Opcode.SLTI, Opcode.SLEI, Opcode.SEQI,
                Opcode.SNEI, Opcode.SGTI, Opcode.SGEI,
            ):
                result = _COMPARE_IMM[op](regs[instr.rs], instr.imm)
                if instr.rd:
                    regs[instr.rd] = 1 if result else 0
            elif op is Opcode.ANDI:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] & instr.imm)
            elif op is Opcode.ORI:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] | instr.imm)
            elif op is Opcode.XORI:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] ^ instr.imm)
            elif op is Opcode.SLLI:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] << (instr.imm & 31))
            elif op is Opcode.SRLI:
                if instr.rd:
                    regs[instr.rd] = _wrap32((regs[instr.rs] & _WRAP) >> (instr.imm & 31))
            elif op is Opcode.SRAI:
                if instr.rd:
                    regs[instr.rd] = _wrap32(regs[instr.rs] >> (instr.imm & 31))
            elif op is Opcode.J:
                next_pc = instr.target
            elif op is Opcode.JAL:
                regs[registers.RA] = pc + 1
                next_pc = instr.target
            elif op is Opcode.JR:
                next_pc = regs[instr.rs]
            elif op is Opcode.JALR:
                target = regs[instr.rs]
                regs[registers.RA] = pc + 1
                next_pc = target
            elif op is Opcode.FLW:
                addr = regs[instr.rs] + instr.imm
                self._check_addr(addr, pc)
                value = memory.get(addr, 0.0)
                regs[instr.rd] = float(value)
            elif op is Opcode.FSW:
                addr = regs[instr.rs] + instr.imm
                self._check_addr(addr, pc)
                memory[addr] = float(regs[instr.rt])
            elif op is Opcode.FADD:
                regs[instr.rd] = regs[instr.rs] + regs[instr.rt]
            elif op is Opcode.FSUB:
                regs[instr.rd] = regs[instr.rs] - regs[instr.rt]
            elif op is Opcode.FMUL:
                regs[instr.rd] = regs[instr.rs] * regs[instr.rt]
            elif op is Opcode.FDIV:
                divisor = regs[instr.rt]
                regs[instr.rd] = regs[instr.rs] / divisor if divisor != 0.0 else 0.0
            elif op is Opcode.FNEG:
                regs[instr.rd] = -regs[instr.rs]
            elif op is Opcode.FABS:
                regs[instr.rd] = abs(regs[instr.rs])
            elif op is Opcode.FSQRT:
                value = regs[instr.rs]
                regs[instr.rd] = value**0.5 if value >= 0.0 else 0.0
            elif op is Opcode.FMOV:
                regs[instr.rd] = regs[instr.rs]
            elif op is Opcode.FLI:
                regs[instr.rd] = float(instr.imm)
            elif op is Opcode.CVTIF:
                regs[instr.rd] = float(regs[instr.rs])
            elif op is Opcode.CVTFI:
                if instr.rd:
                    regs[instr.rd] = _wrap32(int(regs[instr.rs]))
            elif op in (Opcode.FEQ, Opcode.FLT, Opcode.FLE):
                lhs, rhs = regs[instr.rs], regs[instr.rt]
                if op is Opcode.FEQ:
                    result = lhs == rhs
                elif op is Opcode.FLT:
                    result = lhs < rhs
                else:
                    result = lhs <= rhs
                if instr.rd:
                    regs[instr.rd] = 1 if result else 0
            elif op is Opcode.NOP:
                pass
            elif op is Opcode.HALT:
                halted = True
                if trace:
                    pcs.append(pc)
                    addrs.append(addr)
                    takens.append(taken)
                break
            elif op is Opcode.PRINT:
                self.output.append(regs[instr.rs])
            elif op is Opcode.FPRINT:
                self.output.append(float(regs[instr.rs]))
            elif op is Opcode.PUTC:
                # Masking to the Unicode range can still land on a lone
                # surrogate (U+D800-U+DFFF), which chr() happily builds but
                # any UTF-8 write of output_text later rejects.  Substitute
                # U+FFFD, the designated replacement character.
                point = regs[instr.rs] & 0x10FFFF
                if 0xD800 <= point <= 0xDFFF:
                    point = 0xFFFD
                self.output.append(chr(point))
            else:  # pragma: no cover - all opcodes handled above
                raise VMError(f"unimplemented opcode {op}")

            if trace:
                pcs.append(pc)
                addrs.append(addr)
                takens.append(taken)
            pc = next_pc

        self.pc = pc
        if tele_on:
            elapsed = time.perf_counter() - run_started
            if elapsed > 0:
                telemetry.METRICS.gauge(
                    "repro_vm_instructions_per_second"
                ).set(steps / elapsed, program=program.name)
            telemetry.record_span(
                "vm.run",
                elapsed,
                program=program.name,
                steps=steps,
                halted=halted,
            )
        return RunResult(
            trace=trace_obj,
            steps=steps,
            halted=halted,
            exit_value=regs[registers.V0],
            output=self.output,
            branch_profile=profile,
        )

    @staticmethod
    def _check_addr(addr: int, pc: int) -> None:
        if addr < 0:
            raise VMError(f"negative memory address {addr} at pc {pc}")


_COMPARE = {
    Opcode.SLT: lambda a, b: a < b,
    Opcode.SLE: lambda a, b: a <= b,
    Opcode.SEQ: lambda a, b: a == b,
    Opcode.SNE: lambda a, b: a != b,
    Opcode.SGT: lambda a, b: a > b,
    Opcode.SGE: lambda a, b: a >= b,
}

_COMPARE_IMM = {
    Opcode.SLTI: lambda a, b: a < b,
    Opcode.SLEI: lambda a, b: a <= b,
    Opcode.SEQI: lambda a, b: a == b,
    Opcode.SNEI: lambda a, b: a != b,
    Opcode.SGTI: lambda a, b: a > b,
    Opcode.SGEI: lambda a, b: a >= b,
}


def run_program(program: Program, max_steps: int = 1_000_000) -> RunResult:
    """Convenience wrapper: fresh VM, one traced run."""
    return VM(program).run(max_steps=max_steps)
