"""Trace serialization (RTRC, versions 1 and 2).

The original study materialized pixie traces as files and post-processed
them; this module provides the equivalent: a compact binary format so
traces can be captured once and re-analyzed many times (or shipped between
machines).  Paths ending in ``.gz`` are transparently compressed.

Version 2 (the write format) is *chunked* so producers and consumers never
hold a whole trace in memory::

    magic   4 bytes  b"RTRC"
    version u32      currently 2
    chunk   u32      nominal records per frame (framing granularity)
    namelen u16      program-name byte length
    name    bytes    UTF-8 program name (for sanity checks only)
    -- then zero or more frames --
    count   u32      records in this frame (> 0)
    pcs     count * u32
    addrs   count * i64  (NO_ADDR = -1 for non-memory instructions)
    takens  count * i8   (NOT_BRANCH = -1 for non-branches)
    -- then the end marker --
    count   u32      0
    total   u64      sum of all frame counts (consistency check)

The explicit end marker (rather than a record count up front) is what
makes single-pass streaming writes possible: a gzip stream cannot seek
back to patch a header, and a producer does not know the record count
until the run finishes.  A file that ends without the marker was written
by a producer that died mid-store and reads as corrupt.

Version 1 — a single header followed by three whole-file columns — is
still readable everywhere a v2 file is; its compatibility path
materializes the columns (it cannot be memory-bounded) and then serves
them as chunk views.

:class:`TraceWriter` and :class:`TraceReader` are the streaming APIs;
:func:`save_trace` / :func:`load_trace` remain the whole-trace
conveniences built on top of them.  Writers re-frame whatever batch sizes
the caller supplies into exact ``chunk_size`` frames, so the bytes on
disk are a pure function of (records, chunk size) — producers that batch
differently still store byte-identical artifacts under the same
content-addressed key.
"""

from __future__ import annotations

import gzip
import struct
import sys
from array import array
from pathlib import Path
from typing import Iterator, NamedTuple

from repro import telemetry
from repro.isa import Program
from repro.vm.trace import NO_ADDR, Trace

MAGIC = b"RTRC"
VERSION = 2

#: Versions :func:`load_trace` / :class:`TraceReader` accept.
READABLE_VERSIONS = (1, 2)

#: Default records per v2 frame: 64Ki records is ~832 KiB of column data,
#: small enough that a streaming producer/consumer pair stays bounded at
#: any trace budget and large enough that per-frame overhead is noise.
DEFAULT_CHUNK_RECORDS = 1 << 16

_U32_MAX = 0xFFFFFFFF


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or mismatched."""


class CorruptArtifactError(TraceFormatError):
    """An artifact's bytes are damaged — truncated, garbled, or failing
    checksum verification — as opposed to structurally mismatched.

    This is the shared typed error for *damaged* on-disk artifacts: the
    trace reader raises it for truncation, and the farm's
    :class:`~repro.jobs.cache.ArtifactCache` raises it (after
    quarantining the file) for any artifact whose sidecar checksum does
    not match.  ``key``/``path`` carry the artifact's content key and
    quarantine location when known, so the execution engine can
    re-produce exactly the damaged artifact.
    """

    def __init__(self, message: str, key: str | None = None, path: str | None = None):
        # All constructor inputs go through ``args`` so the exception
        # survives pickling across process-pool workers intact.
        super().__init__(message, key, path)
        self.key = key
        self.path = path

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


class TraceChunk(NamedTuple):
    """One frame of trace columns, hoisted to plain lists.

    Lists rather than arrays because every consumer (the fused analyzer
    kernel, predictor training, branch statistics) iterates Python-level;
    ``array.tolist()`` does the unboxing once at C speed.
    """

    pcs: list
    addrs: list
    takens: list


def _open(path: str | Path, mode: str):
    path = str(path)
    if path.endswith(".gz"):
        if "w" in mode:
            # Deterministic gzip output: no mtime, no embedded filename.
            # Content-addressed cache keys assume racing producers store
            # identical bytes; gzip.open would stamp wall-clock time and
            # the (random, temp-sibling) file name into the header.
            raw = open(path, "wb")
            # filename="" keeps the FNAME field out of the header too —
            # GzipFile would otherwise embed raw.name's basename.
            stream = gzip.GzipFile(fileobj=raw, mode="wb", mtime=0, filename="")
            stream.myfileobj = raw  # GzipFile closes myfileobj on close()
            return stream
        return gzip.open(path, mode)
    return open(path, mode)


def _le_bytes(values: array) -> bytes:
    """Array payload bytes, little-endian regardless of host byte order."""
    if sys.byteorder == "big":
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _read_exact(stream, count: int) -> bytes:
    """Read exactly *count* bytes, looping over short reads.

    ``read(n)`` on buffered and gzip streams may legally return fewer than
    *n* bytes; a single short read on a multi-megabyte section would
    otherwise be misreported as a truncated file.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = stream.read(remaining)
        except EOFError as exc:
            # gzip raises EOFError when the compressed stream itself is
            # cut short (e.g. a killed writer or a damaged cache entry).
            raise CorruptArtifactError(f"truncated trace file: {exc}") from exc
        if not chunk:
            raise CorruptArtifactError("truncated trace file")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _payload_bytes(count: int, name_length: int) -> int:
    """Approximate uncompressed RTRC byte size (telemetry only)."""
    return 4 + 14 + name_length + count * (4 + 8 + 1)


# -- column validation -------------------------------------------------------
#
# The fast path converts whole columns through array() constructors and
# C-speed min/max; only when something is out of range does a Python-level
# scan run to name the offending record.  These checks are what keep a
# hand-built trace (or garbled-but-well-framed bytes) from flowing into
# the analyzer as silent nonsense:
#
# * pcs must fit u32 on write (a bare OverflowError otherwise leaked from
#   array("I", ...)) and lie inside the program on read;
# * takens outside {-1, 0, 1} and addrs below NO_ADDR are rejected on
#   both sides.


def _pc_column(pcs, base: int) -> array:
    try:
        return array("I", pcs)
    except (OverflowError, ValueError, TypeError):
        for index, value in enumerate(pcs):
            if not isinstance(value, int) or not 0 <= value <= _U32_MAX:
                raise TraceFormatError(
                    f"trace pc {value!r} at record {base + index} "
                    f"does not fit in u32"
                ) from None
        raise  # pragma: no cover - conversion failed but every value fits


def _addr_column(addrs, base: int) -> array:
    try:
        column = array("q", addrs)
    except (OverflowError, ValueError, TypeError):
        for index, value in enumerate(addrs):
            if not isinstance(value, int) or not -(1 << 63) <= value < (1 << 63):
                raise TraceFormatError(
                    f"trace addr {value!r} at record {base + index} "
                    f"does not fit in i64"
                ) from None
        raise  # pragma: no cover
    if column and min(column) < NO_ADDR:
        index, value = next(
            (i, v) for i, v in enumerate(column) if v < NO_ADDR
        )
        raise TraceFormatError(
            f"trace addr {value} at record {base + index} "
            f"below NO_ADDR ({NO_ADDR})"
        )
    return column


def _taken_column(takens, base: int) -> array:
    try:
        column = array("b", takens)
    except (OverflowError, ValueError, TypeError):
        column = None
    if column is None or (column and not -1 <= min(column) <= max(column) <= 1):
        for index, value in enumerate(takens):
            if not isinstance(value, int) or not -1 <= value <= 1:
                raise TraceFormatError(
                    f"trace taken {value!r} at record {base + index} "
                    f"outside {{-1, 0, 1}}"
                ) from None
        raise AssertionError("unreachable")  # pragma: no cover
    return column


def _check_chunk_pcs(pcs: array, n_code: int, base: int) -> None:
    if pcs and max(pcs) >= n_code:
        index, value = next((i, v) for i, v in enumerate(pcs) if v >= n_code)
        raise TraceFormatError(
            f"trace pc {value} outside program code [0, {n_code})"
            f" at record {base + index}"
        )


class TraceWriter:
    """Streaming RTRC v2 writer with bounded memory.

    Accepts record batches of any size via :meth:`write` and re-frames
    them into exact ``chunk_size`` frames (the tail frame may be short),
    so on-disk bytes do not depend on how the producer batched.  Must be
    closed (or used as a context manager) for the end marker to land; a
    file without it reads as corrupt, which is exactly right for a
    producer that died mid-store.
    """

    def __init__(
        self,
        path: str | Path,
        program: Program,
        chunk_size: int = DEFAULT_CHUNK_RECORDS,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be a positive record count")
        name_bytes = program.name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise TraceFormatError("program name exceeds 65535 UTF-8 bytes")
        self.program = program
        self.chunk_size = chunk_size
        self.total = 0
        self._name_length = len(name_bytes)
        self._pcs = array("I")
        self._addrs = array("q")
        self._takens = array("b")
        self._closed = False
        self._stream = _open(path, "wb")
        try:
            self._stream.write(MAGIC)
            self._stream.write(
                struct.pack("<IIH", VERSION, chunk_size, len(name_bytes))
            )
            self._stream.write(name_bytes)
        except BaseException:
            self._stream.close()
            raise

    def write(self, pcs, addrs, takens) -> None:
        """Append one batch of parallel columns (any equal lengths)."""
        if self._closed:
            raise ValueError("write to a closed TraceWriter")
        if not len(pcs) == len(addrs) == len(takens):
            raise TraceFormatError(
                f"column lengths differ: {len(pcs)} pcs, "
                f"{len(addrs)} addrs, {len(takens)} takens"
            )
        if not len(pcs):
            return
        base = self.total
        self._pcs.extend(_pc_column(pcs, base))
        self._addrs.extend(_addr_column(addrs, base))
        self._takens.extend(_taken_column(takens, base))
        self.total += len(pcs)
        while len(self._pcs) >= self.chunk_size:
            self._emit(self.chunk_size)

    def _emit(self, count: int) -> None:
        stream = self._stream
        stream.write(struct.pack("<I", count))
        stream.write(_le_bytes(self._pcs[:count]))
        stream.write(_le_bytes(self._addrs[:count]))
        stream.write(_le_bytes(self._takens[:count]))
        del self._pcs[:count]
        del self._addrs[:count]
        del self._takens[:count]
        if telemetry.enabled():
            telemetry.METRICS.counter(
                "repro_trace_chunks_written_total"
            ).inc()

    def close(self) -> None:
        """Flush buffered records, write the end marker, close the file."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._pcs:
                self._emit(len(self._pcs))
            self._stream.write(struct.pack("<IQ", 0, self.total))
        finally:
            self._stream.close()
        if telemetry.enabled():
            telemetry.METRICS.counter("repro_trace_bytes_written_total").inc(
                _payload_bytes(self.total, self._name_length)
            )

    def abort(self) -> None:
        """Close the underlying file *without* the end marker.

        Used on error paths: the partial file stays structurally invalid
        (it reads as truncated), which is what a consumer should see for
        an abandoned store.
        """
        if not self._closed:
            self._closed = True
            self._stream.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class TraceReader:
    """Re-iterable streaming reader for RTRC files (v1 and v2).

    Construction parses and validates the header (magic, version, program
    name) so mismatches fail fast; each :meth:`chunks` call then re-opens
    the file and streams validated :class:`TraceChunk` frames.  Being
    re-iterable is what lets one reader serve the multiple passes an
    analysis needs (predictor training, then the fused sweep) without
    ever materializing the columns.

    v2 files are read with bounded memory (one frame at a time).  The v1
    compatibility path must materialize the columns once per pass — the
    v1 layout stores each column as one whole-file run, which cannot be
    streamed in record order.
    """

    def __init__(self, path: str | Path, program: Program):
        self.path = str(path)
        self.program = program
        #: Record count; known up front for v1, set after a full
        #: :meth:`chunks` pass (or footer read) for v2.
        self.total: int | None = None
        with _open(self.path, "rb") as stream:
            self.version, self._v1_count, self._name_length = (
                self._read_header(stream)
            )

    def _read_header(self, stream) -> tuple[int, int, int]:
        magic = stream.read(4)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}; not a trace file")
        (version,) = struct.unpack("<I", _read_exact(stream, 4))
        if version not in READABLE_VERSIONS:
            raise TraceFormatError(f"unsupported trace version {version}")
        if version == 1:
            count, name_length = struct.unpack("<QH", _read_exact(stream, 10))
            self.total = count
        else:
            self.chunk_size, name_length = struct.unpack(
                "<IH", _read_exact(stream, 6)
            )
            count = 0
        name = (
            _read_exact(stream, name_length).decode("utf-8")
            if name_length
            else ""
        )
        if name != self.program.name:
            raise TraceFormatError(
                f"trace was recorded for program {name!r}, "
                f"got {self.program.name!r}"
            )
        return version, count, name_length

    def chunks(self) -> Iterator[TraceChunk]:
        """Stream the trace as validated :class:`TraceChunk` frames."""
        with _open(self.path, "rb") as stream:
            self._read_header(stream)  # skip (already validated)
            if self.version == 1:
                yield from self._v1_chunks(stream)
            else:
                yield from self._v2_chunks(stream)

    def _v1_chunks(self, stream) -> Iterator[TraceChunk]:
        count = self._v1_count
        n_code = len(self.program)
        pcs = array("I")
        pcs.frombytes(_read_exact(stream, 4 * count))
        addrs = array("q")
        addrs.frombytes(_read_exact(stream, 8 * count))
        takens = array("b")
        takens.frombytes(_read_exact(stream, count))
        if sys.byteorder == "big":
            pcs.byteswap()
            addrs.byteswap()
            takens.byteswap()
        self._validate(pcs, addrs, takens, n_code, 0)
        if telemetry.enabled():
            telemetry.METRICS.counter("repro_trace_bytes_read_total").inc(
                _payload_bytes(count, self._name_length)
            )
            telemetry.METRICS.counter("repro_trace_chunks_read_total").inc()
        size = DEFAULT_CHUNK_RECORDS
        for start in range(0, count, size):
            yield TraceChunk(
                pcs[start : start + size].tolist(),
                addrs[start : start + size].tolist(),
                takens[start : start + size].tolist(),
            )

    def _v2_chunks(self, stream) -> Iterator[TraceChunk]:
        n_code = len(self.program)
        tele = telemetry.enabled()
        streamed = 0
        while True:
            (count,) = struct.unpack("<I", _read_exact(stream, 4))
            if count == 0:
                (total,) = struct.unpack("<Q", _read_exact(stream, 8))
                if total != streamed:
                    raise CorruptArtifactError(
                        f"trace end marker records {total} != "
                        f"streamed records {streamed}"
                    )
                self.total = total
                return
            pcs = array("I")
            pcs.frombytes(_read_exact(stream, 4 * count))
            addrs = array("q")
            addrs.frombytes(_read_exact(stream, 8 * count))
            takens = array("b")
            takens.frombytes(_read_exact(stream, count))
            if sys.byteorder == "big":
                pcs.byteswap()
                addrs.byteswap()
                takens.byteswap()
            self._validate(pcs, addrs, takens, n_code, streamed)
            if tele:
                telemetry.METRICS.counter("repro_trace_bytes_read_total").inc(
                    count * (4 + 8 + 1)
                )
                telemetry.METRICS.counter(
                    "repro_trace_chunks_read_total"
                ).inc()
            streamed += count
            yield TraceChunk(pcs.tolist(), addrs.tolist(), takens.tolist())

    @staticmethod
    def _validate(
        pcs: array, addrs: array, takens: array, n_code: int, base: int
    ) -> None:
        _check_chunk_pcs(pcs, n_code, base)
        # Re-run the shared column validators: u32/i64 fit is guaranteed
        # by the on-disk types, so only the range checks can fire here
        # (garbled-but-well-framed bytes).
        _addr_column(addrs, base)
        _taken_column(takens, base)

    def to_trace(self) -> Trace:
        """Materialize the whole file as an in-memory :class:`Trace`.

        The convenience (and v1-equivalent) path: memory is O(trace), so
        prefer :meth:`chunks` at large budgets.
        """
        pcs = array("q")
        addrs = array("q")
        takens = array("q")
        for chunk in self.chunks():
            pcs.extend(chunk.pcs)
            addrs.extend(chunk.addrs)
            takens.extend(chunk.takens)
        return Trace(program=self.program, pcs=pcs, addrs=addrs, takens=takens)


def iter_trace_chunks(source) -> Iterator[TraceChunk]:
    """Stream *source* — a :class:`Trace` or :class:`TraceReader` — as
    :class:`TraceChunk` frames.

    The shared adapter for chunk-wise consumers (the fused analyzer,
    predictor training, branch statistics, the instruction-mix table): an
    in-memory trace is served as ``DEFAULT_CHUNK_RECORDS``-sized views,
    a reader streams straight from disk.
    """
    if isinstance(source, Trace):
        size = DEFAULT_CHUNK_RECORDS
        pcs, addrs, takens = source.pcs, source.addrs, source.takens
        for start in range(0, len(source), size):
            yield TraceChunk(
                pcs[start : start + size].tolist(),
                addrs[start : start + size].tolist(),
                takens[start : start + size].tolist(),
            )
        return
    yield from source.chunks()


def trace_source_program(source) -> Program:
    """The program a :class:`Trace` or :class:`TraceReader` belongs to."""
    return source.program


def save_trace(
    trace: Trace,
    path: str | Path,
    chunk_size: int = DEFAULT_CHUNK_RECORDS,
) -> None:
    """Write *trace* to *path* in the (v2) binary trace format.

    Out-of-range columns — a pc that does not fit u32, a taken outside
    {-1, 0, 1}, an addr below ``NO_ADDR`` — raise
    :class:`TraceFormatError` naming the offending record, instead of
    leaking a bare ``OverflowError`` from the array layer.
    """
    name_bytes_len = len(trace.program.name.encode("utf-8"))
    with telemetry.span(
        "trace.save",
        program=trace.program.name,
        records=len(trace),
        bytes=_payload_bytes(len(trace), name_bytes_len),
    ):
        with TraceWriter(path, trace.program, chunk_size=chunk_size) as writer:
            pcs, addrs, takens = trace.pcs, trace.addrs, trace.takens
            for start in range(0, len(trace), chunk_size):
                end = start + chunk_size
                writer.write(pcs[start:end], addrs[start:end], takens[start:end])


def load_trace(path: str | Path, program: Program) -> Trace:
    """Read a trace (v1 or v2) from *path*, attaching it to *program*.

    The program is identified by name only (the format does not embed
    code); a pc outside the program's code range, a taken outside
    {-1, 0, 1}, or an addr below ``NO_ADDR`` raises
    :class:`TraceFormatError`, which catches most mismatches and all
    garbled-but-well-framed files.
    """
    with telemetry.span("trace.load", program=program.name) as sp:
        reader = TraceReader(path, program)
        trace = reader.to_trace()
        sp.set(
            records=len(trace),
            bytes=_payload_bytes(len(trace), len(program.name.encode("utf-8"))),
        )
    return trace
