"""Trace serialization.

The original study materialized pixie traces as files and post-processed
them; this module provides the equivalent: a compact binary format so
traces can be captured once and re-analyzed many times (or shipped between
machines).  Paths ending in ``.gz`` are transparently compressed.

Format (little-endian)::

    magic   4 bytes  b"RTRC"
    version u32      currently 1
    n       u64      record count
    namelen u16      program-name byte length
    name    bytes    UTF-8 program name (for sanity checks only)
    pcs     n * u32
    addrs   n * i64  (NO_ADDR = -1 for non-memory instructions)
    takens  n * i8   (NOT_BRANCH = -1 for non-branches)
"""

from __future__ import annotations

import gzip
import struct
from array import array
from pathlib import Path

from repro.isa import Program
from repro.vm.trace import Trace

MAGIC = b"RTRC"
VERSION = 1


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or mismatched."""


def _open(path: str | Path, mode: str):
    path = str(path)
    if path.endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write *trace* to *path* in the binary trace format."""
    name_bytes = trace.program.name.encode("utf-8")
    with _open(path, "wb") as stream:
        stream.write(MAGIC)
        stream.write(struct.pack("<IQH", VERSION, len(trace), len(name_bytes)))
        stream.write(name_bytes)
        stream.write(array("I", trace.pcs).tobytes())
        stream.write(array("q", trace.addrs).tobytes())
        stream.write(array("b", trace.takens).tobytes())


def load_trace(path: str | Path, program: Program) -> Trace:
    """Read a trace from *path*, attaching it to *program*.

    The program is identified by name only (the format does not embed
    code); a pc outside the program's code range raises
    :class:`TraceFormatError`, which catches most mismatches.
    """
    with _open(path, "rb") as stream:
        magic = stream.read(4)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}; not a trace file")
        version, count, name_length = struct.unpack("<IQH", stream.read(14))
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        name = stream.read(name_length).decode("utf-8")
        if name != program.name:
            raise TraceFormatError(
                f"trace was recorded for program {name!r}, got {program.name!r}"
            )
        pcs = array("I")
        pcs.frombytes(stream.read(4 * count))
        addrs = array("q")
        addrs.frombytes(stream.read(8 * count))
        takens = array("b")
        takens.frombytes(stream.read(count))
    if len(pcs) != count or len(addrs) != count or len(takens) != count:
        raise TraceFormatError("truncated trace file")
    n_code = len(program)
    for pc in pcs:
        if pc >= n_code:
            raise TraceFormatError(
                f"trace pc {pc} outside program code [0, {n_code})"
            )
    return Trace(
        program=program,
        pcs=list(pcs),
        addrs=list(addrs),
        takens=list(takens),
    )
