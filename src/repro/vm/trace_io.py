"""Trace serialization.

The original study materialized pixie traces as files and post-processed
them; this module provides the equivalent: a compact binary format so
traces can be captured once and re-analyzed many times (or shipped between
machines).  Paths ending in ``.gz`` are transparently compressed.

Format (little-endian)::

    magic   4 bytes  b"RTRC"
    version u32      currently 1
    n       u64      record count
    namelen u16      program-name byte length
    name    bytes    UTF-8 program name (for sanity checks only)
    pcs     n * u32
    addrs   n * i64  (NO_ADDR = -1 for non-memory instructions)
    takens  n * i8   (NOT_BRANCH = -1 for non-branches)
"""

from __future__ import annotations

import gzip
import struct
import sys
from array import array
from pathlib import Path

from repro import telemetry
from repro.isa import Program
from repro.vm.trace import Trace

MAGIC = b"RTRC"
VERSION = 1


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or mismatched."""


class CorruptArtifactError(TraceFormatError):
    """An artifact's bytes are damaged — truncated, garbled, or failing
    checksum verification — as opposed to structurally mismatched.

    This is the shared typed error for *damaged* on-disk artifacts: the
    trace reader raises it for truncation, and the farm's
    :class:`~repro.jobs.cache.ArtifactCache` raises it (after
    quarantining the file) for any artifact whose sidecar checksum does
    not match.  ``key``/``path`` carry the artifact's content key and
    quarantine location when known, so the execution engine can
    re-produce exactly the damaged artifact.
    """

    def __init__(self, message: str, key: str | None = None, path: str | None = None):
        # All constructor inputs go through ``args`` so the exception
        # survives pickling across process-pool workers intact.
        super().__init__(message, key, path)
        self.key = key
        self.path = path

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


def _open(path: str | Path, mode: str):
    path = str(path)
    if path.endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


def _le_bytes(values: array) -> bytes:
    """Array payload bytes, little-endian regardless of host byte order."""
    if sys.byteorder == "big":
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _read_exact(stream, count: int) -> bytes:
    """Read exactly *count* bytes, looping over short reads.

    ``read(n)`` on buffered and gzip streams may legally return fewer than
    *n* bytes; a single short read on a multi-megabyte section would
    otherwise be misreported as a truncated file.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = stream.read(remaining)
        except EOFError as exc:
            # gzip raises EOFError when the compressed stream itself is
            # cut short (e.g. a killed writer or a damaged cache entry).
            raise CorruptArtifactError(f"truncated trace file: {exc}") from exc
        if not chunk:
            raise CorruptArtifactError("truncated trace file")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _payload_bytes(count: int, name_length: int) -> int:
    """Uncompressed RTRC byte size: header + name + three columns."""
    return 4 + 14 + name_length + count * (4 + 8 + 1)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write *trace* to *path* in the binary trace format."""
    name_bytes = trace.program.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise TraceFormatError("program name exceeds 65535 UTF-8 bytes")
    with telemetry.span(
        "trace.save",
        program=trace.program.name,
        records=len(trace),
        bytes=_payload_bytes(len(trace), len(name_bytes)),
    ):
        with _open(path, "wb") as stream:
            stream.write(MAGIC)
            stream.write(struct.pack("<IQH", VERSION, len(trace), len(name_bytes)))
            stream.write(name_bytes)
            stream.write(_le_bytes(array("I", trace.pcs)))
            stream.write(_le_bytes(array("q", trace.addrs)))
            stream.write(_le_bytes(array("b", trace.takens)))
    if telemetry.enabled():
        telemetry.METRICS.counter("repro_trace_bytes_written_total").inc(
            _payload_bytes(len(trace), len(name_bytes))
        )


def load_trace(path: str | Path, program: Program) -> Trace:
    """Read a trace from *path*, attaching it to *program*.

    The program is identified by name only (the format does not embed
    code); a pc outside the program's code range raises
    :class:`TraceFormatError`, which catches most mismatches.
    """
    with telemetry.span("trace.load", program=program.name) as sp, \
            _open(path, "rb") as stream:
        magic = stream.read(4)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}; not a trace file")
        version, count, name_length = struct.unpack("<IQH", _read_exact(stream, 14))
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        sp.set(records=count, bytes=_payload_bytes(count, name_length))
        name = _read_exact(stream, name_length).decode("utf-8") if name_length else ""
        if name != program.name:
            raise TraceFormatError(
                f"trace was recorded for program {name!r}, got {program.name!r}"
            )
        pcs = array("I")
        pcs.frombytes(_read_exact(stream, 4 * count))
        addrs = array("q")
        addrs.frombytes(_read_exact(stream, 8 * count))
        takens = array("b")
        takens.frombytes(_read_exact(stream, count))
    if telemetry.enabled():
        telemetry.METRICS.counter("repro_trace_bytes_read_total").inc(
            _payload_bytes(count, name_length)
        )
    if sys.byteorder == "big":
        pcs.byteswap()
        addrs.byteswap()
        takens.byteswap()
    n_code = len(program)
    if count and max(pcs) >= n_code:
        bad = max(pcs)
        raise TraceFormatError(
            f"trace pc {bad} outside program code [0, {n_code})"
        )
    # Trace normalizes the narrower on-disk column types to array('q').
    return Trace(
        program=program,
        pcs=pcs,
        addrs=addrs,
        takens=takens,
    )
