"""Trace sanitizer (``TR3xx`` diagnostics): replay a dynamic trace against
the static :class:`~repro.analysis.summary.ProgramAnalysis`.

The limit analyzer consumes the trace and the static analysis together; a
mismatch between them (a codegen bug, a stale analysis, a corrupted trace)
silently skews every parallelism number.  The sanitizer walks the trace
once and checks:

* ``TR306`` — every pc indexes a real instruction of the analyzed program;
* ``TR304``/``TR305`` — the branch-outcome and memory-address side fields
  are set exactly for conditional branches / memory operations;
* ``TR301`` — every dynamic edge (``pcs[i]`` → ``pcs[i+1]``) is one the
  static CFG admits: branch fall-through/target consistent with the
  recorded outcome, jump and call targets, returns matching a shadow
  return stack, computed jumps landing on a declared jump-table target;
* ``TR302`` — every control-dependence pc the analyzer would consume
  (``cd_of_pc``) names a conditional branch or computed jump of the same
  function (the reverse-dominance-frontier property);
* ``TR303`` — every pc that perfect unrolling would remove
  (``loop_overhead``) is of overhead shape: a self-increment ``addi``, an
  index comparison, or a conditional branch — matching §4.2 of the paper.

Reports are deduplicated per (code, pc) and capped at *max_reports* so a
systematically broken trace stays readable.
"""

from __future__ import annotations

from repro.analysis.cfg import _computed_jump_targets
from repro.analysis.induction import _COMPARE_OPS
from repro.analysis.summary import ProgramAnalysis, analyze_program
from repro.diagnostics import Diagnostic, Severity
from repro.isa import Opcode, OpKind, registers
from repro.vm.trace import NO_ADDR, NOT_BRANCH, TAKEN, Trace


def sanitize_trace(
    trace: Trace,
    analysis: ProgramAnalysis | None = None,
    name: str | None = None,
    max_reports: int = 100,
) -> list[Diagnostic]:
    """Check *trace* against *analysis* (computed from the trace's program
    when not supplied).  Returns the diagnostics found."""
    if analysis is None:
        analysis = analyze_program(trace.program)
    program = analysis.program
    source = name if name is not None else program.name
    instructions = program.instructions
    n = len(instructions)
    entries = {cfg.function.start for cfg in analysis.cfgs}

    diagnostics: list[Diagnostic] = []
    seen: set[tuple[str, int]] = set()

    def report(code: str, message: str, pc: int | None) -> None:
        key = (code, pc if pc is not None else -1)
        if key in seen or len(diagnostics) >= max_reports:
            return
        seen.add(key)
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                source=source,
                pc=pc,
            )
        )

    if trace.program is not program:
        report("TR306", "trace was recorded against a different program", None)
        return diagnostics

    pcs, addrs, takens = trace.pcs, trace.addrs, trace.takens
    return_stack: list[int] = []
    executed: set[int] = set()

    for i, pc in enumerate(pcs):
        if not 0 <= pc < n:
            report("TR306", f"trace pc {pc} is outside the program", pc)
            continue
        executed.add(pc)
        instr = instructions[pc]

        if (takens[i] != NOT_BRANCH) != instr.is_cond_branch:
            detail = (
                "has no branch outcome"
                if instr.is_cond_branch
                else "carries a branch outcome"
            )
            report(
                "TR304",
                f"{instr.render()} at pc {pc} {detail}",
                pc,
            )
        if (addrs[i] != NO_ADDR) != instr.is_mem:
            detail = (
                "has no memory address"
                if instr.is_mem
                else "carries a memory address"
            )
            report("TR305", f"{instr.render()} at pc {pc} {detail}", pc)

        last = i + 1 == len(pcs)
        if instr.kind is OpKind.HALT:
            if not last:
                report("TR306", f"execution continues past halt at pc {pc}", pc)
            continue
        if last:
            # jr to the VM's return sentinel legitimately ends the run.
            continue
        next_pc = pcs[i + 1]
        expected = _expected_successors(
            program, instr, pc, takens[i], entries, return_stack
        )
        if expected is not None and next_pc not in expected:
            report(
                "TR301",
                f"dynamic edge pc {pc} -> pc {next_pc} does not exist in the "
                f"CFG ({instr.render()}; expected "
                f"{sorted(expected)})",
                pc,
            )

    _check_control_dependence(analysis, executed, report)
    _check_loop_overhead(analysis, report)
    return diagnostics


def _expected_successors(
    program,
    instr,
    pc: int,
    taken: int,
    entries: set[int],
    return_stack: list[int],
) -> set[int] | None:
    """The pcs the next trace record may hold, or None when unknowable."""
    if instr.is_cond_branch:
        return {instr.target} if taken == TAKEN else {pc + 1}
    if instr.is_direct_jump:
        return {instr.target}
    if instr.kind is OpKind.CALL:  # jal
        return_stack.append(pc + 1)
        return {instr.target}
    if instr.kind is OpKind.JALR:
        return_stack.append(pc + 1)
        return set(entries)  # an indirect call must land on some entry
    if instr.is_return:
        if not return_stack:
            return None  # returning past the traced region
        return {return_stack.pop()}
    if instr.is_computed_jump:
        targets = set(_computed_jump_targets(program, pc))
        return targets or None  # undeclared computed jumps are unknowable
    return {pc + 1}


def _check_control_dependence(analysis: ProgramAnalysis, executed, report) -> None:
    instructions = analysis.program.instructions
    checked: set[int] = set()
    for pc in sorted(executed):
        for dep_pc in analysis.cd_of_pc[pc]:
            if dep_pc in checked:
                continue
            checked.add(dep_pc)
            if not 0 <= dep_pc < len(instructions):
                report(
                    "TR302",
                    f"control dependence of pc {pc} names pc {dep_pc}, "
                    "which is outside the program",
                    pc,
                )
                continue
            dep = instructions[dep_pc]
            if not (dep.is_cond_branch or dep.is_computed_jump):
                report(
                    "TR302",
                    f"control dependence of pc {pc} names pc {dep_pc} "
                    f"({dep.render()}), which is not a branch",
                    pc,
                )
            elif analysis.func_of_pc[dep_pc] != analysis.func_of_pc[pc]:
                report(
                    "TR302",
                    f"control dependence of pc {pc} names pc {dep_pc} in a "
                    "different function",
                    pc,
                )


def _check_loop_overhead(analysis: ProgramAnalysis, report) -> None:
    instructions = analysis.program.instructions
    for pc in sorted(analysis.loop_overhead):
        instr = instructions[pc]
        is_increment = (
            instr.opcode is Opcode.ADDI
            and instr.rd == instr.rs
            and instr.rd != registers.ZERO
        )
        is_compare = instr.opcode in _COMPARE_OPS
        if not (is_increment or is_compare or instr.is_cond_branch):
            report(
                "TR303",
                f"loop-overhead pc {pc} ({instr.render()}) is neither an "
                "induction increment, an index comparison, nor a branch",
                pc,
            )
