"""Tracing interpreter for the repro ISA (the study's ``pixie`` equivalent)."""

from repro.vm.machine import RETURN_SENTINEL, VM, RunResult, VMError, run_program
from repro.vm.sanitize import sanitize_trace
from repro.vm.trace import (
    NO_ADDR,
    NOT_BRANCH,
    NOT_TAKEN,
    TAKEN,
    Trace,
    TraceRecord,
)
from repro.vm.trace_io import (
    CorruptArtifactError,
    TraceFormatError,
    load_trace,
    save_trace,
)

__all__ = [
    "CorruptArtifactError",
    "NO_ADDR",
    "NOT_BRANCH",
    "NOT_TAKEN",
    "RETURN_SENTINEL",
    "RunResult",
    "TAKEN",
    "Trace",
    "TraceFormatError",
    "TraceRecord",
    "VM",
    "VMError",
    "load_trace",
    "run_program",
    "sanitize_trace",
    "save_trace",
]
