"""Tracing interpreter for the repro ISA (the study's ``pixie`` equivalent)."""

from repro.vm.fastvm import FastVM, fastvm_source, run_program_fast
from repro.vm.machine import RETURN_SENTINEL, VM, RunResult, VMError, run_program
from repro.vm.sanitize import sanitize_trace
from repro.vm.trace import (
    NO_ADDR,
    NOT_BRANCH,
    NOT_TAKEN,
    TAKEN,
    Trace,
    TraceRecord,
)
from repro.vm.trace_io import (
    CorruptArtifactError,
    TraceChunk,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    iter_trace_chunks,
    load_trace,
    save_trace,
)

__all__ = [
    "CorruptArtifactError",
    "FastVM",
    "NO_ADDR",
    "NOT_BRANCH",
    "NOT_TAKEN",
    "RETURN_SENTINEL",
    "RunResult",
    "TAKEN",
    "Trace",
    "TraceChunk",
    "TraceFormatError",
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "VM",
    "VMError",
    "fastvm_source",
    "iter_trace_chunks",
    "load_trace",
    "run_program",
    "run_program_fast",
    "sanitize_trace",
    "save_trace",
]
