"""Result containers for the limit analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.models import MachineModel
from repro.core.stats import MispredictionStats


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean, the paper's aggregate over benchmarks."""
    if not values:
        raise ValueError("harmonic mean of no values")
    if any(value <= 0 for value in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / value for value in values)


@dataclass(frozen=True)
class ModelResult:
    """Parallelism of one trace on one machine model.

    ``sequential_time`` counts the instructions that remain after perfect
    inlining/unrolling (removed instructions contribute to neither time, per
    §4.4); ``parallel_time`` is the completion time of the last instruction.
    """

    model: MachineModel
    sequential_time: int
    parallel_time: int

    @property
    def parallelism(self) -> float:
        if self.parallel_time == 0:
            return 1.0  # empty trace: define parallelism as 1
        return self.sequential_time / self.parallel_time

    def to_json(self) -> dict:
        """JSON-serializable form (exact: times are integers)."""
        return {
            "model": self.model.value,
            "sequential_time": self.sequential_time,
            "parallel_time": self.parallel_time,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ModelResult":
        return cls(
            model=MachineModel(payload["model"]),
            sequential_time=payload["sequential_time"],
            parallel_time=payload["parallel_time"],
        )


@dataclass
class AnalysisResult:
    """Results of analyzing one trace under a set of machine models."""

    program_name: str
    trace_length: int
    models: dict[MachineModel, ModelResult] = field(default_factory=dict)
    misprediction_stats: MispredictionStats | None = None
    counted_instructions: int = 0
    removed_instructions: int = 0
    #: Which analyzer implementation produced this result ("fused" or
    #: "legacy").  Provenance only: excluded from equality so differential
    #: tests can compare the two engines' outputs directly.
    engine: str = field(default="fused", compare=False)

    @property
    def parallelism(self) -> dict[MachineModel, float]:
        return {model: result.parallelism for model, result in self.models.items()}

    def __getitem__(self, model: MachineModel) -> ModelResult:
        return self.models[model]

    def speedup_over(self, model: MachineModel, baseline: MachineModel) -> float:
        """Ratio of *model*'s parallelism to *baseline*'s."""
        return self.models[model].parallelism / self.models[baseline].parallelism

    def to_json(self) -> dict:
        """JSON-serializable form; round-trips through :meth:`from_json`.

        Every field is integral (parallelism is a derived property), so
        the round trip is exact — a result loaded from the artifact cache
        renders identically to the result that was stored.
        """
        return {
            "program_name": self.program_name,
            "trace_length": self.trace_length,
            "counted_instructions": self.counted_instructions,
            "removed_instructions": self.removed_instructions,
            "engine": self.engine,
            "models": [self.models[model].to_json() for model in self.models],
            "misprediction_stats": (
                None
                if self.misprediction_stats is None
                else self.misprediction_stats.to_json()
            ),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AnalysisResult":
        result = cls(
            program_name=payload["program_name"],
            trace_length=payload["trace_length"],
            counted_instructions=payload["counted_instructions"],
            removed_instructions=payload["removed_instructions"],
            engine=payload.get("engine", "fused"),
        )
        for entry in payload["models"]:
            model_result = ModelResult.from_json(entry)
            result.models[model_result.model] = model_result
        if payload["misprediction_stats"] is not None:
            result.misprediction_stats = MispredictionStats.from_json(
                payload["misprediction_stats"]
            )
        return result
