"""The seven abstract machine models (paper §3, Figure 1).

Each machine is defined purely by its *control-flow constraint* — the only
thing that distinguishes them; true data dependences are enforced
identically on all of them.

=========  ====================================================================
Machine    Control constraint on a trace instruction
=========  ====================================================================
BASE       waits for the most recent preceding branch
CD         waits for its immediate control-dependence branch instance;
           all branches execute in original sequential order, one per cycle
CD-MF      waits for its immediate control-dependence branch instance
SP         waits for the most recent preceding *mispredicted* branch;
           mispredicted branches execute in order, one per cycle
SP-CD      waits for the most recent mispredicted branch on its control-
           dependence ancestor chain; mispredicted branches execute in order
SP-CD-MF   waits for the most recent mispredicted branch on its control-
           dependence ancestor chain
ORACLE     no control constraint (perfect branch prediction)
=========  ====================================================================

"Branch" here means a control transfer whose outcome is data dependent:
conditional branches and computed jumps.  Direct jumps and calls never
constrain anything (and calls/returns are removed by perfect inlining).
"""

from __future__ import annotations

import enum


class MachineModel(enum.Enum):
    """Abstract machine models of the limit study."""

    BASE = "BASE"
    CD = "CD"
    CD_MF = "CD-MF"
    SP = "SP"
    SP_CD = "SP-CD"
    SP_CD_MF = "SP-CD-MF"
    ORACLE = "ORACLE"

    # -- technique flags ---------------------------------------------------

    @property
    def uses_control_dependence(self) -> bool:
        """Does the machine use compile-time control dependence analysis?"""
        return self in (
            MachineModel.CD,
            MachineModel.CD_MF,
            MachineModel.SP_CD,
            MachineModel.SP_CD_MF,
        )

    @property
    def uses_speculation(self) -> bool:
        """Does the machine speculate past predicted branches?"""
        return self in (
            MachineModel.SP,
            MachineModel.SP_CD,
            MachineModel.SP_CD_MF,
        )

    @property
    def uses_multiple_flows(self) -> bool:
        """Can the machine follow multiple flows of control at once?

        (The ORACLE machine trivially can: it has no branch ordering.)
        """
        return self in (
            MachineModel.CD_MF,
            MachineModel.SP_CD_MF,
            MachineModel.ORACLE,
        )

    @property
    def orders_branches(self) -> bool:
        """Must all branches execute in sequential order (one per cycle)?"""
        return self is MachineModel.CD

    @property
    def orders_mispredictions(self) -> bool:
        """Must mispredicted branches execute in order (one per cycle)?

        True for every single-flow speculative machine.  For the SP machine
        the ordering already falls out of its global constraint; it is
        explicit only for SP-CD.
        """
        return self in (MachineModel.SP, MachineModel.SP_CD)

    @property
    def label(self) -> str:
        return self.value


#: All models in the paper's Table 3 column order.
ALL_MODELS: tuple[MachineModel, ...] = (
    MachineModel.BASE,
    MachineModel.CD,
    MachineModel.CD_MF,
    MachineModel.SP,
    MachineModel.SP_CD,
    MachineModel.SP_CD_MF,
    MachineModel.ORACLE,
)

#: Models that need no branch predictor.
NON_SPECULATIVE_MODELS: tuple[MachineModel, ...] = (
    MachineModel.BASE,
    MachineModel.CD,
    MachineModel.CD_MF,
    MachineModel.ORACLE,
)
