"""The trace-driven parallelism limit analyzer (paper §4.4).

For every instruction in a dynamic trace, the analyzer computes the earliest
cycle in which it could complete given

* **true data dependences** — a read waits for the immediately preceding
  write to the same register or memory word (anti- and output dependences
  are ignored; memory disambiguation is perfect because actual addresses
  come from the trace);
* the **control-flow constraint** of the machine model being simulated
  (see :mod:`repro.core.models`).

All instructions have unit latency (configurable for ablations), resources
are unbounded, and the scheduling window is the whole trace (also
configurable).  The resulting parallelism is the sequential execution time
over the completion time of the last instruction.

Program transformations (§4.2) are applied as trace filters:

* **perfect inlining** removes calls, returns, and stack-pointer
  manipulations;
* **perfect unrolling** removes loop-index increments, index comparisons,
  and the branches they feed (found by :mod:`repro.analysis.induction`).

Removed instructions contribute to neither the sequential nor the parallel
time and never constrain anything — with one refinement: a *removed branch*
still records a control-dependence instance whose time is the branch's own
inherited control constraint (not its execution time).  This keeps an
enclosing data-dependent branch constraining a counted loop's body even
after the loop's own overhead branch is unrolled away, while still exposing
full cross-iteration parallelism for top-level counted loops.

Interprocedural control dependence follows §4.4.1 exactly: basic-block
instances are numbered sequentially; each static branch remembers the
sequence number, constraint time, and owning procedure invocation of its
most recent instance; a stack of active procedures carries the control
dependence inherited from each call site; and recursion falls back to "no
constraint" (an upper bound), detected when a reverse-dominance-frontier
branch last executed in a *later* procedure invocation than the current one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.summary import ProgramAnalysis, analyze_program
from repro.core.models import ALL_MODELS, MachineModel
from repro.core.results import AnalysisResult, ModelResult
from repro.core.stats import MispredictionStats
from repro.isa import OpKind, Program, registers
from repro.prediction.base import BranchPredictor, misprediction_flags
from repro.prediction.profile import ProfilePredictor
from repro.vm.trace import Trace


@dataclass(frozen=True)
class _StaticTables:
    """Flat per-pc tables sized for the hot loop."""

    reads: tuple[tuple[int, ...], ...]
    writes: tuple[tuple[int, ...], ...]
    is_load: tuple[bool, ...]
    is_store: tuple[bool, ...]
    is_branchlike: tuple[bool, ...]  # conditional branch or computed jump
    is_call: tuple[bool, ...]
    is_return: tuple[bool, ...]
    is_leader: tuple[bool, ...]
    cd_pcs: tuple[tuple[int, ...], ...]
    ignored: tuple[bool, ...]
    latency: tuple[int, ...]


def _build_tables(
    analysis: ProgramAnalysis,
    perfect_inlining: bool,
    perfect_unrolling: bool,
    latencies: dict[OpKind, int] | None,
) -> _StaticTables:
    program = analysis.program
    reads: list[tuple[int, ...]] = []
    writes: list[tuple[int, ...]] = []
    is_load: list[bool] = []
    is_store: list[bool] = []
    is_branchlike: list[bool] = []
    is_call: list[bool] = []
    is_return: list[bool] = []
    is_leader: list[bool] = []
    ignored: list[bool] = []
    latency: list[int] = []
    for pc, instr in enumerate(program.instructions):
        reads.append(tuple(r for r in instr.reads if r != registers.ZERO))
        writes.append(tuple(r for r in instr.writes if r != registers.ZERO))
        is_load.append(instr.is_load)
        is_store.append(instr.is_store)
        is_branchlike.append(instr.is_cond_branch or instr.is_computed_jump)
        is_call.append(instr.is_call)
        is_return.append(instr.is_return)
        is_leader.append(analysis.is_block_leader(pc))
        skip = False
        if perfect_inlining and (instr.is_call or instr.is_return or instr.writes_sp):
            skip = True
        if perfect_unrolling and pc in analysis.loop_overhead:
            skip = True
        ignored.append(skip)
        latency.append(latencies.get(instr.kind, 1) if latencies else 1)
    return _StaticTables(
        reads=tuple(reads),
        writes=tuple(writes),
        is_load=tuple(is_load),
        is_store=tuple(is_store),
        is_branchlike=tuple(is_branchlike),
        is_call=tuple(is_call),
        is_return=tuple(is_return),
        is_leader=tuple(is_leader),
        cd_pcs=analysis.cd_of_pc,
        ignored=tuple(ignored),
        latency=tuple(latency),
    )


class LimitAnalyzer:
    """Reusable analyzer for one program: run many traces/models/options.

    The static analysis (CFG, control dependence, loop overhead) is computed
    once per program; each :meth:`analyze` call replays a trace under the
    requested machine models.
    """

    def __init__(
        self,
        program: Program,
        analysis: ProgramAnalysis | None = None,
    ):
        self.program = program
        self.analysis = analysis if analysis is not None else analyze_program(program)
        self._table_cache: dict[tuple, _StaticTables] = {}

    # ------------------------------------------------------------------

    def analyze(
        self,
        trace: Trace,
        models: Sequence[MachineModel] = ALL_MODELS,
        predictor: BranchPredictor | None = None,
        perfect_inlining: bool = True,
        perfect_unrolling: bool = True,
        collect_misprediction_stats: bool = False,
        window: int | None = None,
        latencies: dict[OpKind, int] | None = None,
        flow_limit: int | None = None,
    ) -> AnalysisResult:
        """Compute the parallelism of *trace* for each requested model.

        ``predictor`` defaults to the paper's setup: a profile-based static
        predictor trained on this very trace.  ``window`` optionally limits
        the scheduling window to the last N counted instructions (ablation;
        the paper uses an unlimited window).  ``latencies`` optionally maps
        opcode kinds to latencies (ablation; the paper uses unit latency).

        ``flow_limit`` models a machine with *k* flows of control (the
        paper's §6 "small-scale multiprocessor"): at most k branches — for
        SP machines, k *mispredicted* branches — may execute per cycle.
        It interpolates between the single-flow machines (whose in-order
        constraint is slightly stricter than k=1) and the -MF machines
        (k=∞, the default).  Branches are placed greedily in trace order.
        """
        if trace.program is not self.program:
            raise ValueError("trace was produced by a different program")
        if window is not None and window < 1:
            raise ValueError("window must be a positive instruction count")
        if flow_limit is not None and flow_limit < 1:
            raise ValueError("flow_limit must be a positive flow count")

        key = (perfect_inlining, perfect_unrolling, _freeze_latencies(latencies))
        tables = self._table_cache.get(key)
        if tables is None:
            tables = _build_tables(
                self.analysis, perfect_inlining, perfect_unrolling, latencies
            )
            self._table_cache[key] = tables

        needs_prediction = any(model.uses_speculation for model in models)
        mp_flags: list[bool] | None = None
        if needs_prediction:
            if predictor is None:
                predictor = ProfilePredictor.from_trace(trace)
            mp_flags = misprediction_flags(trace, predictor)

        result = AnalysisResult(
            program_name=self.program.name, trace_length=len(trace)
        )
        for model in models:
            stats = (
                MispredictionStats()
                if collect_misprediction_stats and model is MachineModel.SP
                else None
            )
            seq_time, parallel_time, counted = _run_model(
                model, trace, tables, mp_flags, window, stats,
                flow_limit=flow_limit,
            )
            result.models[model] = ModelResult(
                model=model, sequential_time=seq_time, parallel_time=parallel_time
            )
            result.counted_instructions = counted
            result.removed_instructions = len(trace) - counted
            if stats is not None:
                result.misprediction_stats = stats
        return result

    def schedule(
        self,
        trace: Trace,
        model: MachineModel,
        predictor: BranchPredictor | None = None,
        perfect_inlining: bool = True,
        perfect_unrolling: bool = True,
    ) -> list[int | None]:
        """Per-trace-index completion cycles under *model* (debug/teaching).

        Removed instructions (perfect inlining/unrolling) get ``None``.
        Intended for small traces — e.g. printing a Figure 3-style schedule
        of the paper's worked example.
        """
        key = (perfect_inlining, perfect_unrolling, None)
        tables = self._table_cache.get(key)
        if tables is None:
            tables = _build_tables(
                self.analysis, perfect_inlining, perfect_unrolling, None
            )
            self._table_cache[key] = tables
        mp_flags = None
        if model.uses_speculation:
            if predictor is None:
                predictor = ProfilePredictor.from_trace(trace)
            mp_flags = misprediction_flags(trace, predictor)
        out: list[int | None] = []
        _run_model(model, trace, tables, mp_flags, None, None, schedule=out)
        return out


def _freeze_latencies(latencies: dict[OpKind, int] | None):
    if latencies is None:
        return None
    return tuple(sorted((kind.value, lat) for kind, lat in latencies.items()))


def _run_model(
    model: MachineModel,
    trace: Trace,
    tables: _StaticTables,
    mp_flags: list[bool] | None,
    window: int | None,
    stats: MispredictionStats | None,
    schedule: list[int | None] | None = None,
    flow_limit: int | None = None,
) -> tuple[int, int, int]:
    """One pass over the trace for one machine model.

    Returns ``(sequential_time, parallel_time, counted_instructions)``.
    """
    # -- model behaviour flags, hoisted out of the loop --------------------
    is_oracle = model is MachineModel.ORACLE
    is_base = model is MachineModel.BASE
    uses_cd = model.uses_control_dependence
    uses_sp = model.uses_speculation
    order_branches = model.orders_branches
    order_mp = model.orders_mispredictions
    if uses_sp and mp_flags is None:
        raise ValueError(f"model {model} needs misprediction flags")

    # -- static tables, as locals -------------------------------------------
    reads = tables.reads
    writes = tables.writes
    is_load = tables.is_load
    is_store = tables.is_store
    is_branchlike = tables.is_branchlike
    is_call = tables.is_call
    is_return = tables.is_return
    is_leader = tables.is_leader
    cd_pcs = tables.cd_pcs
    ignored = tables.ignored
    latency = tables.latency

    pcs = trace.pcs
    addrs = trace.addrs

    # -- dynamic state --------------------------------------------------------
    reg_time = [0] * registers.NUM_REGS
    mem_time: dict[int, int] = {}
    seq = 0  # basic-block instance sequence number
    # Per static branch: most recent instance's sequence number, recorded
    # constraint time, and owning procedure invocation (its start sequence).
    branch_seq: dict[int, int] = {}
    branch_time: dict[int, int] = {}
    branch_proc: dict[int, int] = {}
    # Stack of active procedures: (inherited CD constraint time,
    # block sequence at the call, callee's start sequence).
    stack: list[tuple[int, int, int]] = [(0, 0, 0)]
    last_branch_time = 0  # BASE constraint / CD branch-ordering state
    last_mp_time = 0  # SP constraint / misprediction-ordering state

    seq_time = 0
    makespan = 0
    counted = 0

    # Finite scheduling window (ablation): completion times of the last
    # `window` counted instructions, as a ring buffer.
    ring: list[int] | None = None
    ring_idx = 0
    if window is not None:
        ring = [0] * window

    # Misprediction segment statistics (SP pass only).
    seg_len = 0
    seg_cycles: set[int] = set()

    # k-flow machines: branch retirements per cycle (flow_limit only).
    cycle_branches: dict[int, int] = {}

    for i in range(len(pcs)):
        pc = pcs[i]
        if is_leader[pc]:
            seq += 1

        # -- control-flow constraint of this machine model ------------------
        if is_oracle:
            control = 0
        elif is_base:
            control = last_branch_time
        elif uses_cd:
            top = stack[-1]
            best_seq = top[1]
            control = top[0]
            cur_proc = top[2]
            recursion = False
            for branch_pc in cd_pcs[pc]:
                s = branch_seq.get(branch_pc, -1)
                if s >= 0 and branch_proc[branch_pc] > cur_proc:
                    # Paper §4.4.1: a reverse-dominance-frontier branch last
                    # executed in a deeper invocation -> recursion; ignore
                    # the control dependence for this instance (upper bound).
                    recursion = True
                    break
                if s > best_seq:
                    best_seq = s
                    control = branch_time[branch_pc]
            if recursion:
                control = 0
        else:  # SP
            control = last_mp_time

        if ignored[pc]:
            # Removed by perfect inlining/unrolling: zero time, no effects.
            # A removed branch still records a control-dependence instance
            # carrying its own inherited constraint.
            if schedule is not None:
                schedule.append(None)
            if uses_cd:
                if is_branchlike[pc]:
                    branch_seq[pc] = seq
                    branch_time[pc] = control
                    branch_proc[pc] = stack[-1][2]
                if is_call[pc]:
                    stack.append((control, seq, seq + 1))
                elif is_return[pc] and len(stack) > 1:
                    stack.pop()
            continue

        # -- data dependences -----------------------------------------------
        ready = control
        for reg in reads[pc]:
            t = reg_time[reg]
            if t > ready:
                ready = t
        if is_load[pc]:
            t = mem_time.get(addrs[i], 0)
            if t > ready:
                ready = t
        if ring is not None:
            t = ring[ring_idx]
            if t > ready:
                ready = t
        completion = ready + latency[pc]

        # -- ordering constraints ----------------------------------------------
        branchlike = is_branchlike[pc]
        mispredicted = branchlike and uses_sp and mp_flags[i]  # type: ignore[index]
        if branchlike:
            if order_branches and completion <= last_branch_time:
                completion = last_branch_time + 1
            if mispredicted and order_mp and completion <= last_mp_time:
                completion = last_mp_time + 1
            if flow_limit is not None and (
                mispredicted or (not uses_sp and not is_oracle)
            ):
                # k flows of control: at most k branch retirements (for SP
                # machines, k misprediction recoveries) per cycle.  ORACLE
                # is exempt: with perfect prediction branches never switch
                # the flow of control.
                while cycle_branches.get(completion, 0) >= flow_limit:
                    completion += 1
                cycle_branches[completion] = cycle_branches.get(completion, 0) + 1

        # -- record results ---------------------------------------------------
        for reg in writes[pc]:
            reg_time[reg] = completion
        if is_store[pc]:
            mem_time[addrs[i]] = completion
        if ring is not None:
            ring[ring_idx] = completion
            ring_idx += 1
            if ring_idx == len(ring):
                ring_idx = 0

        if branchlike:
            if is_base or order_branches:
                last_branch_time = completion
            if uses_cd:
                branch_seq[pc] = seq
                branch_time[pc] = (
                    (completion if mispredicted else control) if uses_sp else completion
                )
                branch_proc[pc] = stack[-1][2]
            if mispredicted:
                last_mp_time = completion
        if uses_cd:
            if is_call[pc]:
                stack.append((control, seq, seq + 1))
            elif is_return[pc] and len(stack) > 1:
                stack.pop()

        counted += 1
        seq_time += latency[pc]
        if schedule is not None:
            schedule.append(completion)
        if completion > makespan:
            makespan = completion

        if stats is not None:
            seg_len += 1
            seg_cycles.add(completion)
            if mispredicted:
                stats.add(seg_len, max(len(seg_cycles), 1))
                seg_len = 0
                seg_cycles.clear()

    return seq_time, makespan, counted
