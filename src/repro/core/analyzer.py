"""The trace-driven parallelism limit analyzer (paper §4.4).

For every instruction in a dynamic trace, the analyzer computes the earliest
cycle in which it could complete given

* **true data dependences** — a read waits for the immediately preceding
  write to the same register or memory word (anti- and output dependences
  are ignored; memory disambiguation is perfect because actual addresses
  come from the trace);
* the **control-flow constraint** of the machine model being simulated
  (see :mod:`repro.core.models`).

All instructions have unit latency (configurable for ablations), resources
are unbounded, and the scheduling window is the whole trace (also
configurable).  The resulting parallelism is the sequential execution time
over the completion time of the last instruction.

Program transformations (§4.2) are applied as trace filters:

* **perfect inlining** removes calls, returns, and stack-pointer
  manipulations;
* **perfect unrolling** removes loop-index increments, index comparisons,
  and the branches they feed (found by :mod:`repro.analysis.induction`).

Removed instructions contribute to neither the sequential nor the parallel
time and never constrain anything — with one refinement: a *removed branch*
still records a control-dependence instance whose time is the branch's own
inherited control constraint (not its execution time).  This keeps an
enclosing data-dependent branch constraining a counted loop's body even
after the loop's own overhead branch is unrolled away, while still exposing
full cross-iteration parallelism for top-level counted loops.

Interprocedural control dependence follows §4.4.1 exactly: basic-block
instances are numbered sequentially; each static branch remembers the
sequence number, constraint time, and owning procedure invocation of its
most recent instance; a stack of active procedures carries the control
dependence inherited from each call site; and recursion falls back to "no
constraint" (an upper bound), detected when a reverse-dominance-frontier
branch last executed in a *later* procedure invocation than the current one.

Execution engines
-----------------

Every table and figure evaluates the same trace under up to seven machine
models, so :meth:`LimitAnalyzer.analyze` ships two engines:

* the **fused engine** (the default) makes *one* sweep over the trace and
  updates the dynamic state of every requested model simultaneously.  The
  per-instruction decode (pc, leader/ignored flags, read/write registers,
  latency, control-dependence ancestors) is shared across models, and so is
  the §4.4.1 ancestor scan: which ancestor instance is the *most recent*
  (or whether recursion voids the constraint) depends only on sequence and
  invocation numbers, never on any model's clock, so the winner is selected
  once and each control-dependence model merely reads its own recorded time
  for that winner.  The sweep itself is a specialized kernel generated and
  compiled once per (model set, option shape) — model behaviour flags are
  folded away at generation time instead of being re-tested on every
  instruction (see :func:`_emit_kernel`);
* the **legacy engine** (``engine="legacy"``) is the original
  one-sweep-per-model path, kept verbatim as a differential-testing oracle.
  The two engines must produce byte-identical results; the differential
  suite and ``bench/analyzer_bench.py`` verify this on every benchmark.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass
from typing import Sequence

from repro import telemetry
from repro.analysis.summary import ProgramAnalysis, analyze_program, ignored_pcs
from repro.core.models import ALL_MODELS, MachineModel
from repro.core.results import AnalysisResult, ModelResult
from repro.core.stats import MispredictionStats
from repro.isa import OpKind, Program, registers
from repro.prediction.base import (
    BranchPredictor,
    chunk_misprediction_flags,
    misprediction_flags,
)
from repro.prediction.profile import ProfilePredictor
from repro.vm.trace import Trace
from repro.vm.trace_io import TraceReader, iter_trace_chunks, trace_source_program

#: The analyzer's execution engines (see module docstring).
ENGINES = ("fused", "legacy")

# -- per-pc flag bits packed into _StaticTables.flags --------------------------
F_LEADER = 1  # first instruction of a basic block
F_IGNORED = 2  # removed by perfect inlining/unrolling
F_BRANCH = 4  # conditional branch or computed jump
F_LOAD = 8
F_STORE = 16
F_CALL = 32
F_RETURN = 64


@dataclass(frozen=True)
class _StaticTables:
    """Per-pc decode tables sized for the hot loop.

    The canonical representation is *flat packed arrays*: one ``array('q')``
    of flag bitmasks and latencies indexed by pc, and CSR-style
    (offsets, values) pairs for the variable-length read/write register
    lists and control-dependence ancestor lists.  The engines hoist these
    into plain lists once per ``analyze`` call (an O(program) copy amortized
    over the O(trace) sweep), so the inner loop does only index arithmetic —
    no per-instruction tuple construction or attribute lookups.

    The original tuple-of-tuples views are kept alongside for the legacy
    differential-oracle path, which is preserved verbatim.
    """

    # flat packed arrays (fused engine)
    flags: array  # per-pc bitmask of F_* bits
    lat: array  # per-pc latency
    reads_off: array  # CSR offsets into reads_flat, len n_pcs + 1
    reads_flat: array
    writes_off: array
    writes_flat: array
    cd_off: array
    cd_flat: array
    cd_gid: array  # per-pc id of its distinct ancestor list (0 = empty)
    # tuple views (legacy engine, preserved as the differential oracle)
    reads: tuple[tuple[int, ...], ...]
    writes: tuple[tuple[int, ...], ...]
    is_load: tuple[bool, ...]
    is_store: tuple[bool, ...]
    is_branchlike: tuple[bool, ...]  # conditional branch or computed jump
    is_call: tuple[bool, ...]
    is_return: tuple[bool, ...]
    is_leader: tuple[bool, ...]
    cd_pcs: tuple[tuple[int, ...], ...]
    ignored: tuple[bool, ...]
    latency: tuple[int, ...]


def _build_tables(
    analysis: ProgramAnalysis,
    perfect_inlining: bool,
    perfect_unrolling: bool,
    latencies: dict[OpKind, int] | None,
) -> _StaticTables:
    program = analysis.program
    removed = ignored_pcs(analysis, perfect_inlining, perfect_unrolling)
    reads: list[tuple[int, ...]] = []
    writes: list[tuple[int, ...]] = []
    is_load: list[bool] = []
    is_store: list[bool] = []
    is_branchlike: list[bool] = []
    is_call: list[bool] = []
    is_return: list[bool] = []
    is_leader: list[bool] = []
    ignored: list[bool] = []
    latency: list[int] = []
    for pc, instr in enumerate(program.instructions):
        reads.append(tuple(r for r in instr.reads if r != registers.ZERO))
        writes.append(tuple(r for r in instr.writes if r != registers.ZERO))
        is_load.append(instr.is_load)
        is_store.append(instr.is_store)
        is_branchlike.append(instr.is_cond_branch or instr.is_computed_jump)
        is_call.append(instr.is_call)
        is_return.append(instr.is_return)
        is_leader.append(analysis.is_block_leader(pc))
        ignored.append(pc in removed)
        latency.append(latencies.get(instr.kind, 1) if latencies else 1)

    # Pack the flat-array representation.
    flags = array("q")
    for pc in range(len(latency)):
        bits = 0
        if is_leader[pc]:
            bits |= F_LEADER
        if ignored[pc]:
            bits |= F_IGNORED
        if is_branchlike[pc]:
            bits |= F_BRANCH
        if is_load[pc]:
            bits |= F_LOAD
        if is_store[pc]:
            bits |= F_STORE
        if is_call[pc]:
            bits |= F_CALL
        if is_return[pc]:
            bits |= F_RETURN
        flags.append(bits)

    def _csr(rows: Sequence[Sequence[int]]) -> tuple[array, array]:
        offsets = array("q", [0])
        flat = array("q")
        for row in rows:
            flat.extend(row)
            offsets.append(len(flat))
        return offsets, flat

    reads_off, reads_flat = _csr(reads)
    writes_off, writes_flat = _csr(writes)
    cd_off, cd_flat = _csr(analysis.cd_of_pc)

    # Number the distinct ancestor lists: instructions sharing a list (the
    # common case — a whole basic block) share a group id, letting the
    # fused engine reuse one resolved control time across the group until
    # the dynamic control-dependence state changes.
    gids: dict[tuple[int, ...], int] = {(): 0}
    cd_gid = array(
        "q", (gids.setdefault(row, len(gids)) for row in analysis.cd_of_pc)
    )

    return _StaticTables(
        flags=flags,
        lat=array("q", latency),
        reads_off=reads_off,
        reads_flat=reads_flat,
        writes_off=writes_off,
        writes_flat=writes_flat,
        cd_off=cd_off,
        cd_flat=cd_flat,
        cd_gid=cd_gid,
        reads=tuple(reads),
        writes=tuple(writes),
        is_load=tuple(is_load),
        is_store=tuple(is_store),
        is_branchlike=tuple(is_branchlike),
        is_call=tuple(is_call),
        is_return=tuple(is_return),
        is_leader=tuple(is_leader),
        cd_pcs=analysis.cd_of_pc,
        ignored=tuple(ignored),
        latency=tuple(latency),
    )


class LimitAnalyzer:
    """Reusable analyzer for one program: run many traces/models/options.

    The static analysis (CFG, control dependence, loop overhead) is computed
    once per program; each :meth:`analyze` call replays a trace under the
    requested machine models.

    After an ``analyze`` call with ``flow_limit`` set,
    :attr:`last_flow_peaks` holds, per model, the peak number of live
    entries in the per-cycle branch-retirement table — the quantity the
    flow-limit pruning fix (see :func:`_run_model`) keeps bounded for the
    branch-ordering machines.
    """

    def __init__(
        self,
        program: Program,
        analysis: ProgramAnalysis | None = None,
    ):
        self.program = program
        self.analysis = analysis if analysis is not None else analyze_program(program)
        self._table_cache: dict[tuple, _StaticTables] = {}
        self.last_flow_peaks: dict[MachineModel, int] = {}

    # ------------------------------------------------------------------

    def analyze(
        self,
        trace: Trace | TraceReader,
        models: Sequence[MachineModel] = ALL_MODELS,
        predictor: BranchPredictor | None = None,
        perfect_inlining: bool = True,
        perfect_unrolling: bool = True,
        collect_misprediction_stats: bool = False,
        window: int | None = None,
        latencies: dict[OpKind, int] | None = None,
        flow_limit: int | None = None,
        engine: str = "fused",
    ) -> AnalysisResult:
        """Compute the parallelism of *trace* for each requested model.

        ``predictor`` defaults to the paper's setup: a profile-based static
        predictor trained on this very trace.  ``window`` optionally limits
        the scheduling window to the last N counted instructions (ablation;
        the paper uses an unlimited window).  ``latencies`` optionally maps
        opcode kinds to latencies (ablation; the paper uses unit latency;
        latencies must be >= 1).

        ``flow_limit`` models a machine with *k* flows of control (the
        paper's §6 "small-scale multiprocessor"): at most k branches — for
        SP machines, k *mispredicted* branches — may execute per cycle.
        It interpolates between the single-flow machines (whose in-order
        constraint is slightly stricter than k=1) and the -MF machines
        (k=∞, the default).  Branches are placed greedily in trace order.

        ``models`` must name at least one machine; repeated models are
        evaluated once (the result keeps the first occurrence's position).

        ``engine`` selects the fused single-pass engine (default) or the
        legacy one-sweep-per-model path kept as a differential-testing
        oracle; both produce byte-identical results.

        ``trace`` may be an in-memory :class:`Trace` or a streaming
        :class:`~repro.vm.trace_io.TraceReader`.  The fused engine
        consumes a reader chunk by chunk — misprediction flags included —
        so memory stays bounded at any trace budget; the legacy oracle is
        a one-sweep-*per-model* path and materializes the reader first.
        """
        source = trace
        if trace_source_program(source) is not self.program:
            raise ValueError("trace was produced by a different program")
        if window is not None and window < 1:
            raise ValueError("window must be a positive instruction count")
        if flow_limit is not None and flow_limit < 1:
            raise ValueError("flow_limit must be a positive flow count")
        if latencies is not None and any(lat < 1 for lat in latencies.values()):
            raise ValueError("latencies must be positive cycle counts")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        models = _dedupe_models(models)

        streaming = isinstance(source, TraceReader)
        if streaming and engine == "legacy":
            source = source.to_trace()
            streaming = False

        key = (perfect_inlining, perfect_unrolling, _freeze_latencies(latencies))
        tables = self._table_cache.get(key)
        if tables is None:
            tables = _build_tables(
                self.analysis, perfect_inlining, perfect_unrolling, latencies
            )
            self._table_cache[key] = tables

        needs_prediction = any(model.uses_speculation for model in models)
        if needs_prediction and predictor is None:
            predictor = ProfilePredictor.from_source(source)
        mp_flags: list[bool] | None = None
        if needs_prediction and engine == "legacy":
            mp_flags = misprediction_flags(source, predictor)

        stats = (
            MispredictionStats()
            if collect_misprediction_stats and MachineModel.SP in models
            else None
        )
        known_records = source.total if streaming else len(source)
        result = AnalysisResult(
            program_name=self.program.name,
            trace_length=known_records or 0,
            engine=engine,
        )
        flow_peaks: dict[MachineModel, int] = {}

        tele_on = telemetry.enabled()
        sweep_started = time.perf_counter() if tele_on else 0.0
        with telemetry.span(
            "analyzer.analyze",
            program=self.program.name,
            engine=engine,
            models=[model.label for model in models],
            trace_records=known_records,
        ) as sp:
            if engine == "legacy":
                counted = 0
                seq_time = 0
                total = len(source)
                for model in models:
                    model_stats = stats if model is MachineModel.SP else None
                    with telemetry.span(
                        "analyzer.model",
                        program=self.program.name,
                        model=model.label,
                    ) as msp:
                        seq_time, parallel_time, counted, flow_peak = _run_model(
                            model, source, tables, mp_flags, window, model_stats,
                            flow_limit=flow_limit,
                        )
                        msp.set(cycles=parallel_time)
                    result.models[model] = ModelResult(
                        model=model,
                        sequential_time=seq_time,
                        parallel_time=parallel_time,
                    )
                    flow_peaks[model] = flow_peak
            else:
                chunks = _chunk_feed(
                    source, predictor, needs_prediction, self.program
                )
                counted, seq_time, total, makespans, peaks, kernel_tele = _run_fused(
                    models, chunks, tables, window, stats, flow_limit,
                    latencies, telemetry_on=tele_on,
                )
                for model, makespan, peak in zip(models, makespans, peaks):
                    result.models[model] = ModelResult(
                        model=model, sequential_time=seq_time, parallel_time=makespan
                    )
                    flow_peaks[model] = peak
                if kernel_tele is not None:
                    self._record_kernel_telemetry(kernel_tele, sp)

            result.trace_length = total
            result.counted_instructions = counted
            result.removed_instructions = total - counted
            if stats is not None:
                result.misprediction_stats = stats
            self.last_flow_peaks = flow_peaks if flow_limit is not None else {}

            if flow_limit is not None:
                # Flow-ledger peaks go to the gauge unconditionally: the
                # flow-limited path is rare (ablation-flows only) and the
                # gauge is what `repro-experiments --verbose` surfaces.
                peak_gauge = telemetry.METRICS.gauge(
                    "repro_analyzer_flow_ledger_peak"
                )
                for model, peak in flow_peaks.items():
                    peak_gauge.set_max(
                        peak,
                        program=self.program.name,
                        model=model.label,
                        flows=flow_limit,
                    )
            if tele_on:
                elapsed = time.perf_counter() - sweep_started
                if elapsed > 0:
                    telemetry.METRICS.gauge(
                        "repro_analyzer_instructions_per_second"
                    ).set(
                        total / elapsed,
                        program=self.program.name,
                        engine=engine,
                    )
                sp.set(
                    counted=counted,
                    trace_records=total,
                    cycles={
                        model.label: model_result.parallel_time
                        for model, model_result in result.models.items()
                    },
                )
        return result

    def _record_kernel_telemetry(self, kernel_tele: dict, sp) -> None:
        """Publish the fused kernel's end-of-sweep counter samples."""
        name = self.program.name
        state_gauge = telemetry.METRICS.gauge("repro_analyzer_value_state_entries")
        state_gauge.set(kernel_tele["mem_entries"], program=name, state="memory")
        for key, value in kernel_tele.items():
            if key.startswith("bt_"):
                state_gauge.set(
                    value, program=name, state=f"branch_table_{key[3:]}"
                )
        lookups = kernel_tele.get("cd_lookups", 0)
        if lookups:
            hit_ratio = 1.0 - kernel_tele["cd_scans"] / lookups
            telemetry.METRICS.gauge("repro_analyzer_cd_cache_hit_ratio").set(
                hit_ratio, program=name
            )
            sp.set(cd_cache_hit_ratio=hit_ratio)
        sp.set(value_state_entries=kernel_tele["mem_entries"])

    def schedule(
        self,
        trace: Trace,
        model: MachineModel,
        predictor: BranchPredictor | None = None,
        perfect_inlining: bool = True,
        perfect_unrolling: bool = True,
    ) -> list[int | None]:
        """Per-trace-index completion cycles under *model* (debug/teaching).

        Removed instructions (perfect inlining/unrolling) get ``None``.
        Intended for small traces — e.g. printing a Figure 3-style schedule
        of the paper's worked example.  Uses the legacy single-model path;
        the completion cycles it reports are exactly the ones the fused
        engine aggregates (``max`` of the non-``None`` entries equals
        ``analyze(...)[model].parallel_time``; the schedule-consistency
        tests assert this).
        """
        key = (perfect_inlining, perfect_unrolling, None)
        tables = self._table_cache.get(key)
        if tables is None:
            tables = _build_tables(
                self.analysis, perfect_inlining, perfect_unrolling, None
            )
            self._table_cache[key] = tables
        mp_flags = None
        if model.uses_speculation:
            if predictor is None:
                predictor = ProfilePredictor.from_trace(trace)
            mp_flags = misprediction_flags(trace, predictor)
        out: list[int | None] = []
        _run_model(model, trace, tables, mp_flags, None, None, schedule=out)
        return out


def _dedupe_models(models: Sequence[MachineModel]) -> tuple[MachineModel, ...]:
    """Validate and deduplicate the requested model list, keeping order."""
    ordered: list[MachineModel] = []
    for model in models:
        if not isinstance(model, MachineModel):
            raise ValueError(f"not a machine model: {model!r}")
        if model not in ordered:
            ordered.append(model)
    if not ordered:
        raise ValueError("analyze() requires at least one machine model")
    return tuple(ordered)


def _freeze_latencies(latencies: dict[OpKind, int] | None):
    if latencies is None:
        return None
    return tuple(sorted((kind.value, lat) for kind, lat in latencies.items()))


def _as_list(column) -> list:
    """Hoist a trace/table column into a plain list for the hot loop.

    ``array('q')`` is the storage format; CPython indexes lists faster
    (array indexing boxes a fresh int per access), so both engines convert
    each column once per sweep — one C-speed pass, amortized over the
    O(trace) Python-level loop.
    """
    if isinstance(column, list):
        return column
    return column.tolist() if hasattr(column, "tolist") else list(column)


# ======================================================================
# Fused engine: one sweep, all models
# ======================================================================
#
# The kernel is generated and compiled once per *spec* — the ordered tuple
# of requested models plus which optional features (window, flow limit,
# misprediction stats) are active — and cached for the life of the process.
# Generation folds every model-behaviour flag of the legacy loop
# (is_oracle/uses_cd/orders_branches/...) into straight-line code, so each
# model's per-instruction block touches only the state that model needs.
#
# Model-independent work is emitted exactly once per instruction:
#
# * the decode: pc, flag bits, latency, read/write register ids (CSR index
#   arithmetic into the flat tables), effective address, misprediction flag;
# * basic-block sequence numbering and the procedure stack *structure*
#   (§4.4.1): which block instance is current, which invocation owns it;
# * the control-dependence ancestor scan: the most-recent-instance winner
#   (or the recursion fallback) is selected purely by sequence/invocation
#   numbers, which are identical across models — only the *time* recorded
#   for the winner is per-model state.

_KERNEL_CACHE: dict[tuple, tuple] = {}

_CD_MODELS = frozenset(
    (
        MachineModel.CD,
        MachineModel.CD_MF,
        MachineModel.SP_CD,
        MachineModel.SP_CD_MF,
    )
)


def _kernel_spec(
    models: tuple[MachineModel, ...],
    window: int | None,
    flow_limit: int | None,
    stats: MispredictionStats | None,
    latencies: dict[OpKind, int] | None,
    telemetry_on: bool = False,
) -> tuple:
    return (
        tuple(model.value for model in models),
        window is not None,
        flow_limit is not None,
        stats is not None,
        latencies is None,  # unit latency: fold the +1 into the kernel
        telemetry_on,  # telemetry variant: end-of-sweep counter sampling
    )


def _chunk_feed(
    source,
    predictor: BranchPredictor | None,
    needs_prediction: bool,
    program: Program,
):
    """Yield ``(pcs, addrs, mp)`` triples for the fused kernel.

    The streaming front end of the fused engine: each trace chunk is
    paired with its misprediction flags, computed incrementally — the
    predictor is reset once, then trained across chunk boundaries in
    trace order, so the flags (and therefore every model's schedule) are
    identical to a whole-trace pass no matter how the trace is framed.
    An in-memory :class:`Trace` flows through the same path as a
    :class:`~repro.vm.trace_io.TraceReader`; only the chunk origin
    differs.
    """
    is_computed_jump: list[bool] | None = None
    if needs_prediction:
        assert predictor is not None
        predictor.reset()
        is_computed_jump = [
            instr.is_computed_jump for instr in program.instructions
        ]
    for pcs, addrs, takens in iter_trace_chunks(source):
        mp = (
            chunk_misprediction_flags(pcs, addrs, takens, predictor, is_computed_jump)
            if needs_prediction
            else None
        )
        yield pcs, addrs, mp


def _run_fused(
    models: tuple[MachineModel, ...],
    chunks,
    tables: _StaticTables,
    window: int | None,
    stats: MispredictionStats | None,
    flow_limit: int | None,
    latencies: dict[OpKind, int] | None,
    telemetry_on: bool = False,
) -> tuple[int, int, int, tuple[int, ...], tuple[int, ...], dict | None]:
    """One fused sweep over *chunks* for every model in *models*.

    *chunks* is an iterable of ``(pcs, addrs, mp)`` column triples (see
    :func:`_chunk_feed`); the kernel carries every model's state across
    chunk boundaries, so the sweep is identical to a whole-trace pass
    while holding only one chunk in memory at a time.

    Returns ``(counted, sequential_time, total_records, makespans,
    flow_peaks, kernel_telemetry)`` with the per-model tuples in request
    order.  ``kernel_telemetry`` is None unless the telemetry kernel
    variant ran; the variant adds only end-of-sweep sampling (value-state
    map sizes) plus one integer increment on the CD ancestor-scan *miss*
    path — no per-instruction Python calls — and is compiled and cached
    separately, so the disabled kernels are byte-identical to the
    uninstrumented ones.
    """
    kernel = _kernel_for(
        _kernel_spec(models, window, flow_limit, stats, latencies, telemetry_on)
    )
    out = kernel(chunks, tables, window, flow_limit, stats)
    if telemetry_on:
        return out
    counted, seq_time, total, makespans, peaks = out
    return counted, seq_time, total, makespans, peaks, None


def _kernel_for(spec: tuple):
    cached = _KERNEL_CACHE.get(spec)
    if cached is None:
        source = _emit_kernel(spec)
        namespace: dict = {}
        exec(compile(source, f"<fused-kernel {spec[0]}>", "exec"), namespace)
        cached = (namespace["_kernel"], source)
        _KERNEL_CACHE[spec] = cached
    return cached[0]


def fused_kernel_source(
    models: Sequence[MachineModel] = ALL_MODELS,
    window: bool = False,
    flow_limit: bool = False,
    misprediction_stats: bool = False,
    unit_latency: bool = True,
    telemetry_on: bool = False,
) -> str:
    """The generated fused-kernel source for a model set (debug/teaching)."""
    spec = (
        tuple(model.value for model in _dedupe_models(models)),
        window,
        flow_limit,
        misprediction_stats,
        unit_latency,
        telemetry_on,
    )
    _kernel_for(spec)
    return _KERNEL_CACHE[spec][1]


def _emit_kernel(spec: tuple) -> str:
    """Generate the fused-kernel source for one (models, options) spec.

    The emission strategy is *struct of blocks*: every shared condition —
    operand counts, the memory/branch flag bits, the control-dependence
    winner case split — is tested exactly once per instruction, and each
    block contains the corresponding statements for **all** requested
    models.  (The alternative, one self-contained block per model, would
    re-test every condition per model; with seven models that roughly
    doubles the interpreted instruction count.)  Value-producing state
    (registers, memory, the scheduling window) holds one n-tuple of
    completion cycles per location, shared by all models; scalar per-model
    state lives in flat local names suffixed with the model's index —
    ``c3`` is model 3's completion cycle for the current instruction,
    ``mk3`` its makespan, ``bt3`` its branch table, and so on.
    """
    model_values, has_window, has_flow, has_stats, unit_lat, has_tele = spec
    models = tuple(MachineModel(value) for value in model_values)
    n = len(models)
    cd = [m for m in range(n) if models[m] in _CD_MODELS]
    any_cd = bool(cd)
    any_sp = any(model.uses_speculation for model in models)
    n_regs = registers.NUM_REGS
    sp_m = (
        models.index(MachineModel.SP)
        if has_stats and MachineModel.SP in models
        else None
    )

    out: list[str] = []
    emit = out.append

    def emit_all(template: str, indices=None) -> None:
        for m in range(n) if indices is None else indices:
            emit(template.format(m=m))

    def emit_ct(indent: str) -> None:
        # Resolve the shared winner into each CD model's control time.
        emit(f"{indent}if win == -2:")
        emit(f"{indent}    " + " = ".join(f"ct{m}" for m in cd) + " = 0")
        emit(f"{indent}elif win == -1:")
        emit_all(f"{indent}    ct{{m}} = sv{{m}}[-1]", cd)
        emit(f"{indent}else:")
        emit_all(f"{indent}    ct{{m}} = bt{{m}}[win]", cd)

    # Completion/timestamp tuples: all models' clocks for one register,
    # memory word, or window slot travel as one n-tuple, so a write is a
    # single store of the shared completion tuple `cc` instead of n stores,
    # and a read is one fetch plus an unpack.
    tvars = ", ".join(f"t{m}" for m in range(n)) + ("," if n == 1 else "")
    cc_tuple = "(" + ", ".join(f"c{m}" for m in range(n)) + ("," if n == 1 else "") + ")"
    zeros = "(" + ", ".join("0" for _ in range(n)) + ("," if n == 1 else "") + ")"

    def emit_max(fetch: str, indent: str) -> None:
        # Fold one dependence source into every model's ready time.
        emit(f"{indent}{tvars} = {fetch}")
        for m in range(n):
            emit(f"{indent}if t{m} > y{m}:")
            emit(f"{indent}    y{m} = t{m}")

    def emit_flow(m: int, indent: str) -> None:
        # Greedy k-flow placement: bump the completion past full cycles.
        emit(f"{indent}while cg{m}(c{m}, 0) >= flow_limit:")
        emit(f"{indent}    c{m} += 1")
        emit(f"{indent}cb{m}[c{m}] = cg{m}(c{m}, 0) + 1")
        emit(f"{indent}if len(cb{m}) > pk{m}:")
        emit(f"{indent}    pk{m} = len(cb{m})")

    def emit_prune(m: int, floor: str, indent: str) -> None:
        # Drop retirement-table entries at or below the ordering floor:
        # every later branch is clamped strictly above it.
        emit(f"{indent}if cb{m}:")
        emit(f"{indent}    for k_ in [k_ for k_ in cb{m} if k_ <= {floor}]:")
        emit(f"{indent}        del cb{m}[k_]")

    # -- prologue: hoist tables, initialize per-model state ----------------
    emit("def _kernel(chunks, tables, window, flow_limit, sp_stats):")
    emit("    flags = tables.flags.tolist()")
    emit("    lat = tables.lat.tolist()")
    emit("    roff = tables.reads_off.tolist()")
    emit("    rflat = tables.reads_flat.tolist()")
    emit("    woff = tables.writes_off.tolist()")
    emit("    wflat = tables.writes_flat.tolist()")
    if any_cd:
        emit("    coff = tables.cd_off.tolist()")
        emit("    cflat = tables.cd_flat.tolist()")
        emit("    cgid = tables.cd_gid.tolist()")
    # Counted-instruction and sequential-time totals are plain per-pc sums
    # over the trace; fold them at C speed per chunk instead of per
    # iteration in the Python loop.
    emit("    ignx = [1 if f & 2 else 0 for f in flags]")
    emit("    counted = 0")
    emit("    total = 0")
    if not unit_lat:
        emit("    latx = [0 if f & 2 else l for f, l in zip(flags, lat)]")
        emit("    seq_time = 0")
    if any_cd:
        emit("    seq = 0")
        emit("    bseq = {}")
        emit("    bseq_get = bseq.get")
        emit("    bproc = {}")
        emit("    stack = [(0, 0)]")
        emit("    ep = 0")
        emit("    k_gid = -1")
        emit("    k_ep = -1")
        emit("    proc = 0")
        if has_tele:
            emit("    cdsc = 0")
    if has_window:
        emit("    ring_idx = 0")
    emit("    addr = mpi = 0")
    emit(f"    rta = [{zeros}] * {n_regs}")
    emit("    mem = {}")
    emit("    gm = mem.get")
    if has_window:
        emit(f"    rg = [{zeros}] * window")
    for m, model in enumerate(models):
        emit(f"    # state: {model.value}")
        emit(f"    mk{m} = 0")
        if model in (MachineModel.BASE, MachineModel.CD):
            emit(f"    lb{m} = 0")
        if model in (MachineModel.SP, MachineModel.SP_CD):
            emit(f"    lmp{m} = 0")
        if model in _CD_MODELS:
            emit(f"    bt{m} = {{}}")
            emit(f"    sv{m} = [0]")
        if has_flow and _flow_limited(model):
            emit(f"    cb{m} = {{}}")
            emit(f"    cg{m} = cb{m}.get")
        emit(f"    pk{m} = 0")
        if has_stats and model is MachineModel.SP:
            emit("    seg_len = 0")
            emit("    seg_cycles = set()")
            emit("    scadd = seg_cycles.add")
            emit("    spadd = sp_stats.add")

    # -- chunk loop: every model's state lives outside it, so sweeping N
    # chunks is *identical* to sweeping their concatenation — only peak
    # memory changes.  The per-instruction loop below is emitted exactly
    # as for a whole-trace pass and re-indented one level at the end.
    emit("    for pcs, addrs, mp in chunks:")
    emit("        total += len(pcs)")
    emit("        counted += len(pcs) - sum(map(ignx.__getitem__, pcs))")
    if not unit_lat:
        emit("        seq_time += sum(map(latx.__getitem__, pcs))")
    loop_start = len(out)
    emit("    for i in range(len(pcs)):")
    emit("        pc = pcs[i]")
    emit("        fl = flags[pc]")
    if any_cd:
        emit(f"        if fl & {F_LEADER}:")
        emit("            seq += 1")
        # Shared §4.4.1 ancestor scan: the winner (most recent ancestor
        # instance, stack inheritance, or the recursion fallback) is
        # selected by sequence/invocation numbers only — identical for
        # every CD model, so it is computed once and resolved straight
        # into each CD model's control time ct{m}.  The result depends
        # only on the instruction's ancestor list (its cd group) and the
        # dynamic CD state, which mutates only at branch records and
        # call/return stack operations (epoch `ep`) — so consecutive
        # instructions of a basic block hit the one-entry cache and skip
        # the scan entirely.  Most instructions have a single ancestor;
        # that case is unrolled ahead of the loop.
        emit("        gid = cgid[pc]")
        emit("        if gid != k_gid or ep != k_ep:")
        emit("            k_gid = gid")
        emit("            k_ep = ep")
        if has_tele:
            emit("            cdsc += 1")
        emit("            top = stack[-1]")
        emit("            best = top[0]")
        emit("            proc = top[1]")
        emit("            win = -1")
        emit("            ca = coff[pc]")
        emit("            ce = coff[pc + 1]")
        emit("            if ce > ca:")
        emit("                b = cflat[ca]")
        emit("                s = bseq_get(b, -1)")
        emit("                if s >= 0:")
        emit("                    if bproc[b] > proc:")
        emit("                        win = -2")
        emit("                    elif s > best:")
        emit("                        best = s")
        emit("                        win = b")
        emit("                if ce > ca + 1 and win != -2:")
        emit("                    for j in range(ca + 1, ce):")
        emit("                        b = cflat[j]")
        emit("                        s = bseq_get(b, -1)")
        emit("                        if s >= 0:")
        emit("                            if bproc[b] > proc:")
        emit("                                win = -2")
        emit("                                break")
        emit("                            if s > best:")
        emit("                                best = s")
        emit("                                win = b")
        emit_ct("            ")

    # -- removed instructions: zero time, CD bookkeeping only --------------
    emit(f"        if fl & {F_IGNORED}:")
    if any_cd:
        emit(f"            if fl & {F_BRANCH}:")
        emit("                bseq[pc] = seq")
        emit("                bproc[pc] = proc")
        emit_all("                bt{m}[pc] = ct{m}", cd)
        emit("                ep += 1")
        emit(f"            elif fl & {F_CALL}:")
        emit("                stack.append((seq, seq + 1))")
        emit_all("                sv{m}.append(ct{m})", cd)
        emit("                ep += 1")
        emit(f"            elif (fl & {F_RETURN}) and len(stack) > 1:")
        emit("                stack.pop()")
        emit_all("                sv{m}.pop()", cd)
        emit("                ep += 1")
    emit("            continue")

    # -- counted: control constraint -> per-model ready time y{m} ---------
    if not unit_lat:
        emit("        lt = lat[pc]")
    for m, model in enumerate(models):
        if model in _CD_MODELS:
            emit(f"        y{m} = ct{m}")
        elif model is MachineModel.BASE:
            emit(f"        y{m} = lb{m}")
        elif model is MachineModel.SP:
            emit(f"        y{m} = lmp{m}")
        else:  # ORACLE
            emit(f"        y{m} = 0")

    # -- data dependences ---------------------------------------------------
    emit("        r0_ = roff[pc]")
    emit("        nr = roff[pc + 1] - r0_")
    emit("        if nr:")
    emit_max("rta[rflat[r0_]]", "            ")
    emit("            if nr > 1:")
    emit_max("rta[rflat[r0_ + 1]]", "                ")
    emit("                if nr > 2:")
    emit("                    for j in range(r0_ + 2, r0_ + nr):")
    emit_max("rta[rflat[j]]", "                        ")
    emit(f"        if fl & {F_LOAD | F_STORE}:")
    emit("            addr = addrs[i]")
    emit(f"            if fl & {F_LOAD}:")
    emit("                v = gm(addr)")
    emit("                if v is not None:")
    emit_max("v", "                    ")
    if has_window:
        emit_max("rg[ring_idx]", "        ")
    emit_all("        c{m} = y{m} + 1" if unit_lat else "        c{m} = y{m} + lt")

    # -- branch-likes: ordering clamps, flow placement, branch records -----
    b1 = "            "
    b2 = "                "
    if any(model is not MachineModel.ORACLE for model in models):
        emit(f"        if fl & {F_BRANCH}:")
        if any_sp:
            emit(b1 + "mpi = mp[i]")
        for m, model in enumerate(models):
            flow_here = has_flow and _flow_limited(model)
            if model is MachineModel.BASE:
                if flow_here:
                    emit_flow(m, b1)
                emit(b1 + f"lb{m} = c{m}")
                if flow_here:
                    emit_prune(m, f"lb{m}", b1)
            elif model is MachineModel.CD:
                emit(b1 + f"if c{m} <= lb{m}:")
                emit(b1 + f"    c{m} = lb{m} + 1")
                if flow_here:
                    emit_flow(m, b1)
                emit(b1 + f"lb{m} = c{m}")
                emit(b1 + f"bt{m}[pc] = c{m}")
                if flow_here:
                    emit_prune(m, f"lb{m}", b1)
            elif model is MachineModel.CD_MF:
                if flow_here:
                    emit_flow(m, b1)
                emit(b1 + f"bt{m}[pc] = c{m}")
            elif model is MachineModel.SP:
                emit(b1 + "if mpi:")
                emit(b2 + f"if c{m} <= lmp{m}:")
                emit(b2 + f"    c{m} = lmp{m} + 1")
                if flow_here:
                    emit_flow(m, b2)
                emit(b2 + f"lmp{m} = c{m}")
                if flow_here:
                    emit_prune(m, f"lmp{m}", b2)
            elif model is MachineModel.SP_CD:
                emit(b1 + "if mpi:")
                emit(b2 + f"if c{m} <= lmp{m}:")
                emit(b2 + f"    c{m} = lmp{m} + 1")
                if flow_here:
                    emit_flow(m, b2)
                emit(b2 + f"bt{m}[pc] = c{m}")
                emit(b2 + f"lmp{m} = c{m}")
                if flow_here:
                    emit_prune(m, f"lmp{m}", b2)
                emit(b1 + "else:")
                emit(b2 + f"bt{m}[pc] = ct{m}")
            elif model is MachineModel.SP_CD_MF:
                # A correctly predicted branch records its *inherited*
                # constraint, not its completion: speculation hides it.
                emit(b1 + "if mpi:")
                if flow_here:
                    emit_flow(m, b2)
                emit(b2 + f"bt{m}[pc] = c{m}")
                emit(b1 + "else:")
                emit(b2 + f"bt{m}[pc] = ct{m}")
            # ORACLE: branches constrain nothing.
        if any_cd:
            emit(b1 + "bseq[pc] = seq")
            emit(b1 + "bproc[pc] = proc")
            emit(b1 + "ep += 1")
            # Counted calls/returns exist only with inlining disabled.
            emit(f"        elif fl & {F_CALL}:")
            emit("            stack.append((seq, seq + 1))")
            emit_all("            sv{m}.append(ct{m})", cd)
            emit("            ep += 1")
            emit(f"        elif (fl & {F_RETURN}) and len(stack) > 1:")
            emit("            stack.pop()")
            emit_all("            sv{m}.pop()", cd)
            emit("            ep += 1")

    # -- record results -----------------------------------------------------
    emit(f"        cc = {cc_tuple}")
    emit("        w0_ = woff[pc]")
    emit("        nw = woff[pc + 1] - w0_")
    emit("        if nw:")
    emit("            rta[wflat[w0_]] = cc")
    emit("            if nw > 1:")
    emit("                for j in range(w0_ + 1, w0_ + nw):")
    emit("                    rta[wflat[j]] = cc")
    emit(f"        if fl & {F_STORE}:")
    emit("            mem[addr] = cc")
    if has_window:
        emit("        rg[ring_idx] = cc")
        emit("        ring_idx += 1")
        emit("        if ring_idx == window:")
        emit("            ring_idx = 0")
    for m in range(n):
        emit(f"        if c{m} > mk{m}:")
        emit(f"            mk{m} = c{m}")
    if sp_m is not None:
        emit("        seg_len += 1")
        emit(f"        scadd(c{sp_m})")
        emit(f"        if fl & {F_BRANCH} and mpi:")
        emit("            spadd(seg_len, max(len(seg_cycles), 1))")
        emit("            seg_len = 0")
        emit("            seg_cycles.clear()")

    # Nest the per-instruction loop inside the chunk loop.
    for idx in range(loop_start, len(out)):
        out[idx] = "    " + out[idx]

    if unit_lat:
        emit("    seq_time = counted")
    if sp_m is not None:
        emit("    # flush the segment trailing the last misprediction")
        emit("    if seg_len:")
        emit("        spadd(seg_len, max(len(seg_cycles), 1))")
    makespans = ", ".join(f"mk{m}" for m in range(n))
    peaks = ", ".join(f"pk{m}" for m in range(n))
    comma = "," if n == 1 else ""
    if has_tele:
        # End-of-sweep counter sampling (telemetry variant only): the
        # value-state map sizes and the ancestor-scan miss count, read once
        # after the loop — never per instruction.
        emit("    tele = {'mem_entries': len(mem)}")
        if any_cd:
            emit("    tele['cd_scans'] = cdsc")
            emit("    tele['cd_lookups'] = total")
            for m in cd:
                emit(f"    tele['bt_{models[m].value}'] = len(bt{m})")
        emit(
            f"    return counted, seq_time, total, ({makespans}{comma}), "
            f"({peaks}{comma}), tele"
        )
    else:
        emit(
            f"    return counted, seq_time, total, "
            f"({makespans}{comma}), ({peaks}{comma})"
        )
    emit("")
    return "\n".join(out)


def _flow_limited(model: MachineModel) -> bool:
    """Can *model* ever consume a flow of control (``flow_limit``)?

    ORACLE is exempt: with perfect prediction branches never switch the
    flow of control.  Speculative machines consume a flow only on a
    misprediction; the single-flow non-speculative machines on every
    branch.
    """
    return model is not MachineModel.ORACLE


# ======================================================================
# Legacy engine: one sweep per model (differential-testing oracle)
# ======================================================================


def _run_model(
    model: MachineModel,
    trace: Trace,
    tables: _StaticTables,
    mp_flags: list[bool] | None,
    window: int | None,
    stats: MispredictionStats | None,
    schedule: list[int | None] | None = None,
    flow_limit: int | None = None,
) -> tuple[int, int, int, int]:
    """One pass over the trace for one machine model.

    Returns ``(sequential_time, parallel_time, counted_instructions,
    flow_peak)`` where ``flow_peak`` is the peak live size of the per-cycle
    branch-retirement table (0 without ``flow_limit``).
    """
    # -- model behaviour flags, hoisted out of the loop --------------------
    is_oracle = model is MachineModel.ORACLE
    is_base = model is MachineModel.BASE
    uses_cd = model.uses_control_dependence
    uses_sp = model.uses_speculation
    order_branches = model.orders_branches
    order_mp = model.orders_mispredictions
    if uses_sp and mp_flags is None:
        raise ValueError(f"model {model} needs misprediction flags")

    # -- static tables, as locals -------------------------------------------
    reads = tables.reads
    writes = tables.writes
    is_load = tables.is_load
    is_store = tables.is_store
    is_branchlike = tables.is_branchlike
    is_call = tables.is_call
    is_return = tables.is_return
    is_leader = tables.is_leader
    cd_pcs = tables.cd_pcs
    ignored = tables.ignored
    latency = tables.latency

    pcs = _as_list(trace.pcs)
    addrs = _as_list(trace.addrs)

    # -- dynamic state --------------------------------------------------------
    reg_time = [0] * registers.NUM_REGS
    mem_time: dict[int, int] = {}
    seq = 0  # basic-block instance sequence number
    # Per static branch: most recent instance's sequence number, recorded
    # constraint time, and owning procedure invocation (its start sequence).
    branch_seq: dict[int, int] = {}
    branch_time: dict[int, int] = {}
    branch_proc: dict[int, int] = {}
    # Stack of active procedures: (inherited CD constraint time,
    # block sequence at the call, callee's start sequence).
    stack: list[tuple[int, int, int]] = [(0, 0, 0)]
    last_branch_time = 0  # BASE constraint / CD branch-ordering state
    last_mp_time = 0  # SP constraint / misprediction-ordering state

    seq_time = 0
    makespan = 0
    counted = 0

    # Finite scheduling window (ablation): completion times of the last
    # `window` counted instructions, as a ring buffer.
    ring: list[int] | None = None
    ring_idx = 0
    if window is not None:
        ring = [0] * window

    # Misprediction segment statistics (SP pass only).
    seg_len = 0
    seg_cycles: set[int] = set()

    # k-flow machines: branch retirements per cycle (flow_limit only).
    # For the branch-ordering machines every later branch is clamped
    # strictly above the ordering clock, so entries at or below it can
    # never be probed again and are pruned (the clock is a sound floor on
    # any future branch's retirement cycle); the -MF machines have no such
    # floor and keep the full table, whose size is bounded by the schedule
    # height rather than the branch count.
    cycle_branches: dict[int, int] = {}
    flow_peak = 0

    for i in range(len(pcs)):
        pc = pcs[i]
        if is_leader[pc]:
            seq += 1

        # -- control-flow constraint of this machine model ------------------
        if is_oracle:
            control = 0
        elif is_base:
            control = last_branch_time
        elif uses_cd:
            top = stack[-1]
            best_seq = top[1]
            control = top[0]
            cur_proc = top[2]
            recursion = False
            for branch_pc in cd_pcs[pc]:
                s = branch_seq.get(branch_pc, -1)
                if s >= 0 and branch_proc[branch_pc] > cur_proc:
                    # Paper §4.4.1: a reverse-dominance-frontier branch last
                    # executed in a deeper invocation -> recursion; ignore
                    # the control dependence for this instance (upper bound).
                    recursion = True
                    break
                if s > best_seq:
                    best_seq = s
                    control = branch_time[branch_pc]
            if recursion:
                control = 0
        else:  # SP
            control = last_mp_time

        if ignored[pc]:
            # Removed by perfect inlining/unrolling: zero time, no effects.
            # A removed branch still records a control-dependence instance
            # carrying its own inherited constraint.
            if schedule is not None:
                schedule.append(None)
            if uses_cd:
                if is_branchlike[pc]:
                    branch_seq[pc] = seq
                    branch_time[pc] = control
                    branch_proc[pc] = stack[-1][2]
                if is_call[pc]:
                    stack.append((control, seq, seq + 1))
                elif is_return[pc] and len(stack) > 1:
                    stack.pop()
            continue

        # -- data dependences -----------------------------------------------
        ready = control
        for reg in reads[pc]:
            t = reg_time[reg]
            if t > ready:
                ready = t
        if is_load[pc]:
            t = mem_time.get(addrs[i], 0)
            if t > ready:
                ready = t
        if ring is not None:
            t = ring[ring_idx]
            if t > ready:
                ready = t
        completion = ready + latency[pc]

        # -- ordering constraints ----------------------------------------------
        branchlike = is_branchlike[pc]
        mispredicted = branchlike and uses_sp and mp_flags[i]  # type: ignore[index]
        if branchlike:
            if order_branches and completion <= last_branch_time:
                completion = last_branch_time + 1
            if mispredicted and order_mp and completion <= last_mp_time:
                completion = last_mp_time + 1
            if flow_limit is not None and (
                mispredicted or (not uses_sp and not is_oracle)
            ):
                # k flows of control: at most k branch retirements (for SP
                # machines, k misprediction recoveries) per cycle.  ORACLE
                # is exempt: with perfect prediction branches never switch
                # the flow of control.
                while cycle_branches.get(completion, 0) >= flow_limit:
                    completion += 1
                cycle_branches[completion] = (
                    cycle_branches.get(completion, 0) + 1
                )
                if len(cycle_branches) > flow_peak:
                    flow_peak = len(cycle_branches)

        # -- record results ---------------------------------------------------
        for reg in writes[pc]:
            reg_time[reg] = completion
        if is_store[pc]:
            mem_time[addrs[i]] = completion
        if ring is not None:
            ring[ring_idx] = completion
            ring_idx += 1
            if ring_idx == len(ring):
                ring_idx = 0

        if branchlike:
            if is_base or order_branches:
                last_branch_time = completion
                if flow_limit is not None and cycle_branches:
                    # Ordering floor: later branches retire strictly above.
                    for cyc in [
                        cyc for cyc in cycle_branches if cyc <= last_branch_time
                    ]:
                        del cycle_branches[cyc]
            if uses_cd:
                branch_seq[pc] = seq
                branch_time[pc] = (
                    (completion if mispredicted else control) if uses_sp else completion
                )
                branch_proc[pc] = stack[-1][2]
            if mispredicted:
                last_mp_time = completion
                if order_mp and flow_limit is not None and cycle_branches:
                    for cyc in [
                        cyc for cyc in cycle_branches if cyc <= last_mp_time
                    ]:
                        del cycle_branches[cyc]
        if uses_cd:
            if is_call[pc]:
                stack.append((control, seq, seq + 1))
            elif is_return[pc] and len(stack) > 1:
                stack.pop()

        counted += 1
        seq_time += latency[pc]
        if schedule is not None:
            schedule.append(completion)
        if completion > makespan:
            makespan = completion

        if stats is not None:
            seg_len += 1
            seg_cycles.add(completion)
            if mispredicted:
                stats.add(seg_len, max(len(seg_cycles), 1))
                seg_len = 0
                seg_cycles.clear()

    if stats is not None and seg_len:
        # Flush the segment trailing the last misprediction: those
        # instructions execute under the SP machine like any other segment
        # and were previously dropped from the statistics.
        stats.add(seg_len, max(len(seg_cycles), 1))

    return seq_time, makespan, counted, flow_peak
