"""Misprediction-distance statistics (paper §5.2, Figures 6 and 7).

For the SP machine, mispredictions are scheduling barriers: parallelism
exists only between consecutive mispredicted branches.  Each *segment*
between two mispredictions has two vital characteristics (the paper's
words): its **misprediction distance** — the number of (counted)
instructions in the segment — and its **degree of parallelism** — the
segment's instruction count over the time span it needs on the SP machine.

The limit analyzer collects per-segment records during its SP pass;
:class:`MispredictionStats` turns them into the paper's two figures:

* Figure 6 — cumulative distribution of misprediction distances;
* Figure 7 — harmonic mean of segment parallelism per distance, shaded by
  how often that distance occurs (here: reported alongside the frequency).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Segment:
    """One run of instructions between consecutive mispredicted branches.

    ``span`` is the number of *distinct cycles* in which the segment's
    instructions complete on the SP machine.  (Measuring wall-clock from
    the misprediction to the last completion instead would charge a
    segment for data-dependence chains that lag across many segments,
    producing "parallelism" below 1; occupied cycles measure how parallel
    the segment itself is, which is what §5.2 discusses.)
    """

    length: int  # counted instructions in the segment
    span: int  # distinct SP-machine cycles the segment's instructions occupy

    @property
    def parallelism(self) -> float:
        return self.length / self.span if self.span > 0 else 1.0


@dataclass
class MispredictionStats:
    """Collected SP-machine segment records for one trace."""

    segments: list[Segment] = field(default_factory=list)

    def add(self, length: int, span: int) -> None:
        if length > 0:
            self.segments.append(Segment(length, span))

    @property
    def distances(self) -> list[int]:
        return [segment.length for segment in self.segments]

    def cumulative_distribution(self, points: list[int]) -> list[float]:
        """Fraction of mispredictions with distance <= each of *points*
        (Figure 6's y values)."""
        if not self.segments:
            return [1.0] * len(points)
        sorted_distances = sorted(self.distances)
        total = len(sorted_distances)
        out: list[float] = []
        idx = 0
        for point in sorted(points):
            while idx < total and sorted_distances[idx] <= point:
                idx += 1
            out.append(idx / total)
        return out

    def fraction_within(self, distance: int) -> float:
        """Fraction of mispredictions occurring within *distance* instructions."""
        if not self.segments:
            return 1.0
        within = sum(1 for d in self.distances if d <= distance)
        return within / len(self.segments)

    def parallelism_by_distance(
        self, bins: list[int]
    ) -> list[tuple[int, int, float, int]]:
        """Figure 7's series: for each distance bin, the harmonic mean of
        segment parallelism and the bin's frequency.

        *bins* are ascending upper bounds; if any segment is longer than the
        last bound, a final open bin collects the rest.  Returns
        ``(low, high, harmonic_mean_parallelism, count)`` rows; bins with no
        segments report a parallelism of 0.0.
        """
        edges = [0] + sorted(bins)
        max_distance = max(self.distances, default=0)
        spans = list(zip(edges, edges[1:]))
        if max_distance > edges[-1]:
            spans.append((edges[-1], max_distance))
        rows: list[tuple[int, int, float, int]] = []
        for low, high in spans:
            members = [s for s in self.segments if low < s.length <= high]
            if members:
                inverse_sum = sum(1.0 / s.parallelism for s in members)
                mean = len(members) / inverse_sum
            else:
                mean = 0.0
            rows.append((low, high, mean, len(members)))
        return rows

    def merge(self, other: "MispredictionStats") -> None:
        """Pool another trace's segments (Figure 7 combines all benchmarks)."""
        self.segments.extend(other.segments)

    def to_json(self) -> dict:
        """JSON-serializable form (segments as exact integer pairs)."""
        return {
            "segments": [[s.length, s.span] for s in self.segments],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "MispredictionStats":
        return cls(
            segments=[Segment(length, span) for length, span in payload["segments"]]
        )
