"""The paper's primary contribution: seven abstract machine models and the
trace-driven parallelism limit analyzer."""

from repro.core.analyzer import LimitAnalyzer
from repro.core.models import ALL_MODELS, NON_SPECULATIVE_MODELS, MachineModel
from repro.core.results import AnalysisResult, ModelResult, harmonic_mean
from repro.core.stats import MispredictionStats, Segment

__all__ = [
    "ALL_MODELS",
    "AnalysisResult",
    "LimitAnalyzer",
    "MachineModel",
    "MispredictionStats",
    "ModelResult",
    "NON_SPECULATIVE_MODELS",
    "Segment",
    "harmonic_mean",
]
