"""Microbenchmark: specialized (generated-dispatch) VM vs. the legacy interpreter.

Runs each benchmark at the same trace budget under both VMs and reports
the speedup.  Every pair of runs is first checked for *identical*
results — trace columns, branch profile, output, exit value, steps,
halted flag — so a timing report for a divergent VM is impossible; this
doubles as a coarse differential test (the fine-grained one, including
byte-identical RTRC files, lives in ``tests/vm/test_fastvm_differential.py``).

Usage::

    repro-vm-bench                          # all benchmarks, default budget
    repro-vm-bench --max-steps 200000       # CI budget
    repro-vm-bench --min-speedup 3.0        # fail below 3x
    repro-vm-bench espresso gcc --repeats 5
    repro-vm-bench --stream-check --max-steps 10000000 --rss-limit-mb 200

``--stream-check`` switches to the bounded-memory gate: one benchmark is
traced with the specialized VM *streaming* into a v2 RTRC writer (no
in-memory trace), then read back chunk-wise, and the process's peak RSS
(``resource.getrusage``) must stay under ``--rss-limit-mb`` — a ceiling
far below what materialized whole-trace columns would cost at the same
budget.  Run it in a fresh process (as the CI job does): ``ru_maxrss``
is a process-lifetime high-water mark.

Timing uses ``time.process_time`` (CPU time) with the VMs interleaved
and the best of ``--repeats`` kept per VM, the same discipline as
``repro-analyzer-bench``.
"""

from __future__ import annotations

import argparse
import os
import resource
import sys
import tempfile
import time

from repro.bench import history as bench_history
from repro.bench.suite import SUITE
from repro.vm.fastvm import FastVM
from repro.vm.machine import VM, RunResult
from repro.vm.trace_io import TraceReader, TraceWriter


def _equivalent(a: RunResult, b: RunResult) -> bool:
    return (
        a.steps == b.steps
        and a.halted == b.halted
        and a.exit_value == b.exit_value
        and a.output == b.output
        and a.branch_profile == b.branch_profile
        and list(a.trace.pcs) == list(b.trace.pcs)
        and list(a.trace.addrs) == list(b.trace.addrs)
        and list(a.trace.takens) == list(b.trace.takens)
    )


def bench_one(
    name: str, max_steps: int, repeats: int, scale: int | None = None
) -> tuple[float, float]:
    """Best-of-*repeats* CPU seconds for (fast, legacy) on one benchmark.

    Raises :class:`AssertionError` if the two VMs diverge in any
    observable way.
    """
    program = SUITE[name].compile(scale)
    fast_vm = FastVM(program)
    legacy_vm = VM(program)
    # Warm-up runs: compile the handler table and check equivalence
    # before timing anything.
    fast = fast_vm.run(max_steps=max_steps)
    legacy = legacy_vm.run(max_steps=max_steps)
    assert _equivalent(fast, legacy), f"{name}: fast and legacy VMs diverge"
    best_fast = best_legacy = float("inf")
    for _ in range(repeats):
        fast_vm.reset()
        started = time.process_time()
        fast_vm.run(max_steps=max_steps)
        best_fast = min(best_fast, time.process_time() - started)
        legacy_vm.reset()
        started = time.process_time()
        legacy_vm.run(max_steps=max_steps)
        best_legacy = min(best_legacy, time.process_time() - started)
    return best_fast, best_legacy


def stream_check(
    name: str,
    max_steps: int,
    rss_limit_mb: int,
    scale: int | None = None,
    history: str | None = None,
) -> int:
    """Trace *name* at *max_steps* streaming to disk; gate on peak RSS."""
    program = SUITE[name].compile(scale)
    started = time.process_time()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "stream.rtrc.gz")
        with TraceWriter(path, program) as writer:
            result = FastVM(program).run(max_steps=max_steps, sink=writer)
            records = writer.total
        size_mb = os.path.getsize(path) / (1 << 20)
        # Read the stream back chunk-wise (consumer side of the bound).
        read_back = 0
        for chunk in TraceReader(path, program).chunks():
            read_back += len(chunk.pcs)
    elapsed = time.process_time() - started
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes there, KB on Linux
        peak_kb //= 1024
    peak_mb = peak_kb / 1024
    print(
        f"stream-check {name}: {result.steps} steps, {records} records "
        f"written and {read_back} read back, {size_mb:.1f} MiB on disk, "
        f"peak RSS {peak_mb:.0f} MiB, {elapsed:.1f}s CPU"
    )
    if history:
        bench_history.append(
            history,
            "vm-bench",
            {
                f"stream.{name}.peak_rss_mb": bench_history.entry(
                    peak_mb, "MiB", bench_history.LOWER
                ),
                f"stream.{name}.cpu_s": bench_history.entry(
                    elapsed, "s", bench_history.LOWER
                ),
            },
        )
    if records != result.steps or read_back != records:
        print(
            f"FAIL: record counts diverge (steps {result.steps}, "
            f"written {records}, read {read_back})",
            file=sys.stderr,
        )
        return 1
    if peak_mb > rss_limit_mb:
        print(
            f"FAIL: peak RSS {peak_mb:.0f} MiB exceeds the "
            f"{rss_limit_mb} MiB ceiling — the trace path is not streaming",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-vm-bench",
        description="Benchmark the specialized VM against the legacy interpreter.",
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmarks to run (default: the whole suite)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=200_000,
        help="dynamic trace budget per benchmark (default 200000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per VM; the best is kept (default 3)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless every benchmark's speedup is >= X",
    )
    parser.add_argument(
        "--stream-check",
        action="store_true",
        help="bounded-memory gate: stream one benchmark's trace to disk "
        "and fail if peak RSS exceeds --rss-limit-mb",
    )
    parser.add_argument(
        "--rss-limit-mb",
        type=int,
        default=200,
        metavar="MB",
        help="peak-RSS ceiling for --stream-check (default 200)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="workload scale passed to the benchmark compiler (default: "
        "the suite's native scale); raise it so long budgets actually "
        "execute that many steps",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="append this run to a JSONL benchmark history "
        "(see repro-bench-diff)",
    )
    args = parser.parse_args(argv)
    names = args.benchmarks or sorted(SUITE)
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(unknown)}")
    if args.repeats < 1:
        parser.error("--repeats must be positive")

    if args.stream_check:
        if len(names) != len(SUITE) and len(names) != 1:
            parser.error("--stream-check takes exactly one benchmark")
        name = names[0] if len(names) == 1 else "espresso"
        return stream_check(
            name, args.max_steps, args.rss_limit_mb, args.scale,
            history=args.history,
        )

    print(f"{'benchmark':<12} {'fast':>9} {'legacy':>9} {'speedup':>8}")
    ratios: list[float] = []
    entries: dict[str, dict] = {}
    for name in names:
        fast_s, legacy_s = bench_one(name, args.max_steps, args.repeats, args.scale)
        ratio = legacy_s / fast_s if fast_s else float("inf")
        ratios.append(ratio)
        entries[f"{name}.fast_s"] = bench_history.entry(
            fast_s, "s", bench_history.LOWER
        )
        entries[f"{name}.speedup"] = bench_history.entry(
            ratio, "x", bench_history.HIGHER
        )
        print(f"{name:<12} {fast_s:>8.3f}s {legacy_s:>8.3f}s {ratio:>7.2f}x")
    if args.history:
        bench_history.append(args.history, "vm-bench", entries)
    mean = sum(ratios) / len(ratios)
    worst = min(ratios)
    print(f"{'':12} {'':>9} {'':>9}  min {worst:.2f}x / mean {mean:.2f}x")
    if args.min_speedup is not None and worst < args.min_speedup:
        print(
            f"FAIL: minimum speedup {worst:.2f}x below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
