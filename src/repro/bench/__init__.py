"""Benchmark analogues of the paper's Table 1 suite.

Seven non-numeric C programs (awk, ccom, eqntott, espresso, gcc, irsim,
latex) and three FORTRAN-style numeric programs (matrix300, spice2g6,
tomcatv), written in MiniC with deterministic generated workloads.  See
DESIGN.md §2 for why each analogue preserves the control-flow behaviour
the study measures.
"""

from repro.bench.spec import BenchmarkSpec
from repro.bench.suite import NON_NUMERIC, NUMERIC, SUITE, get

__all__ = ["BenchmarkSpec", "NON_NUMERIC", "NUMERIC", "SUITE", "get"]
