"""Microbenchmark: fused single-pass analyzer vs. the legacy per-model sweep.

Runs a Table 3-shaped analyze (all seven machine models, profile
predictor, default options) over each benchmark's trace with both
engines and reports the speedup.  Every pair of runs is first checked
for equal results — a timing report for a divergent engine would be
meaningless — so this doubles as a coarse differential test.

Usage::

    repro-analyzer-bench                       # all benchmarks, full budget
    repro-analyzer-bench --max-steps 20000     # CI smoke budget
    repro-analyzer-bench --min-speedup 3.0     # fail below 3x (full budget)
    repro-analyzer-bench eqntott gcc --repeats 5

Timing uses ``time.process_time`` (CPU time) with the engines
interleaved and the best of ``--repeats`` kept per engine, which is far
more stable than wall clock on shared machines.  Speedups shrink at tiny
``--max-steps`` because the kernel-compilation and table-build overheads
stop amortizing; enforce ``--min-speedup`` only at a realistic budget.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import history as bench_history
from repro.bench.suite import SUITE
from repro.core.analyzer import LimitAnalyzer
from repro.prediction.profile import ProfilePredictor
from repro.vm.machine import run_program


def bench_one(
    name: str, max_steps: int, repeats: int
) -> tuple[float, float]:
    """Best-of-*repeats* CPU seconds for (fused, legacy) on one benchmark.

    Raises :class:`AssertionError` if the engines disagree on any model's
    times or on the counted-instruction totals.
    """
    program = SUITE[name].compile()
    trace = run_program(program, max_steps=max_steps).trace
    predictor = ProfilePredictor.from_trace(trace)
    analyzer = LimitAnalyzer(program)
    # Warm-up runs: compile the fused kernel, build the static tables,
    # and check the engines agree before timing anything.
    fused = analyzer.analyze(trace, predictor=predictor, engine="fused")
    legacy = analyzer.analyze(trace, predictor=predictor, engine="legacy")
    assert fused == legacy, f"{name}: fused and legacy engines diverge"
    best_fused = best_legacy = float("inf")
    for _ in range(repeats):
        started = time.process_time()
        analyzer.analyze(trace, predictor=predictor, engine="fused")
        best_fused = min(best_fused, time.process_time() - started)
        started = time.process_time()
        analyzer.analyze(trace, predictor=predictor, engine="legacy")
        best_legacy = min(best_legacy, time.process_time() - started)
    return best_fused, best_legacy


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyzer-bench",
        description="Benchmark the fused analyzer against the legacy sweep.",
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmarks to run (default: the whole suite)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=150_000,
        help="dynamic trace budget per benchmark (default 150000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per engine; the best is kept (default 3)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless every benchmark's speedup is >= X",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="append this run to a JSONL benchmark history "
        "(see repro-bench-diff)",
    )
    args = parser.parse_args(argv)
    names = args.benchmarks or sorted(SUITE)
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(unknown)}")
    if args.repeats < 1:
        parser.error("--repeats must be positive")

    print(f"{'benchmark':<12} {'fused':>9} {'legacy':>9} {'speedup':>8}")
    ratios: list[float] = []
    entries: dict[str, dict] = {}
    for name in names:
        fused_s, legacy_s = bench_one(name, args.max_steps, args.repeats)
        ratio = legacy_s / fused_s if fused_s else float("inf")
        ratios.append(ratio)
        entries[f"{name}.fused_s"] = bench_history.entry(
            fused_s, "s", bench_history.LOWER
        )
        entries[f"{name}.speedup"] = bench_history.entry(
            ratio, "x", bench_history.HIGHER
        )
        print(f"{name:<12} {fused_s:>8.3f}s {legacy_s:>8.3f}s {ratio:>7.2f}x")
    if args.history:
        bench_history.append(args.history, "analyzer-bench", entries)
    mean = sum(ratios) / len(ratios)
    worst = min(ratios)
    print(f"{'':12} {'':>9} {'':>9}  min {worst:.2f}x / mean {mean:.2f}x")
    if args.min_speedup is not None and worst < args.min_speedup:
        print(
            f"FAIL: minimum speedup {worst:.2f}x below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
