"""Benchmark specification and compilation cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa import Program
from repro.lang import compile_source


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark analogue of a paper Table 1 row.

    ``source`` maps a positive integer *scale* to MiniC source; larger
    scales run more work with the same code.  ``expected`` optionally maps a
    scale to the program's known exit checksum, validating that the compiled
    benchmark computes what it claims to (guards against silent compiler or
    workload bugs corrupting the study).
    """

    name: str
    language: str  # "C" or "FORTRAN", as in Table 1
    description: str
    numeric: bool
    source: Callable[[int], str]
    default_scale: int = 1
    expected: dict[int, int] = field(default_factory=dict)

    def compile(self, scale: int | None = None) -> Program:
        actual_scale = self.default_scale if scale is None else scale
        return _compile_cached(self, actual_scale)


_CACHE: dict[tuple[str, int], Program] = {}


def _compile_cached(spec: BenchmarkSpec, scale: int) -> Program:
    key = (spec.name, scale)
    if key not in _CACHE:
        _CACHE[key] = compile_source(spec.source(scale), name=spec.name)
    return _CACHE[key]
