"""``latex`` analogue — document preparation (C).

The original typesets documents.  This analogue implements the heart of a
paragraph typesetter: it generates a stream of words with deterministic
pseudo-random lengths and occasional markup tokens, performs greedy line
breaking against a fixed measure with penalties (badness = squared slack),
hyphenates words that overflow the line, justifies each line by
distributing the slack into inter-word glue, and finally paginates with
widow/club-line handling.  Character- and word-level loops with
data-dependent breaks mirror the original's behaviour.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// latex analogue: paragraph filling, justification, pagination
int wordlen[@WORDS@];
int is_break[@WORDS@];    // paragraph break markers
int linelen[@LINES@];
int linewords[@LINES@];
int sig[8];

// independent per-word "input document", like reading a .tex file
int mix(int x) {
    x = x * 2654435761;
    x = x ^ ((x >> 13) & 262143);
    x = x * 1103515245 + 12345;
    x = x ^ ((x >> 16) & 65535);
    if (x < 0) x = -x;
    return x;
}

void make_words(int n, int salt) {
    for (int i = 0; i < n; i++) {
        int h = mix(i + salt * 262139);
        if (h % 100 < 4) {
            is_break[i] = 1;      // paragraph boundary
            wordlen[i] = 0;
        } else {
            is_break[i] = 0;
            // Zipf-ish word lengths 1..14
            wordlen[i] = 1 + h % 5 + (h >> 7) % 5 + (h >> 13) % 6;
        }
    }
}

int badness(int slack) {
    if (slack < 0) slack = -slack;
    return slack * slack;
}

// split an overlong word at a "hyphenation point" (2/3 of the way in)
int hyphenate(int len, int room) {
    int cut = room - 1;           // leave space for the hyphen
    if (cut < 2) return 0;        // refuse tiny fragments
    if (cut > len - 2) cut = len - 2;
    return cut;
}

int nlines;
int total_badness;

// greedy fill of one paragraph starting at word *start*; returns the index
// one past the paragraph end
int fill_paragraph(int start, int nwords) {
    int width = @WIDTH@;
    int cursor = start;
    int used = 0;
    int count = 0;
    while (cursor < nwords && !is_break[cursor]) {
        int len = wordlen[cursor];
        int need = len;
        if (count > 0) need++;    // leading space
        if (used + need <= width) {
            used += need;
            count++;
            cursor++;
        } else {
            int room = width - used - 1;
            if (len > 9 && room >= 4) {
                int cut = hyphenate(len, room);
                if (cut > 0) {
                    used += cut + 2;  // fragment + space + hyphen
                    count++;
                    wordlen[cursor] = len - cut;  // rest moves to next line
                }
            }
            // close the line
            if (nlines < @LINES@) {
                linelen[nlines] = used;
                linewords[nlines] = count;
                total_badness += badness(width - used);
                nlines++;
            }
            used = 0;
            count = 0;
        }
    }
    if (count > 0 && nlines < @LINES@) {
        linelen[nlines] = used;
        linewords[nlines] = count;
        // last line of a paragraph is set ragged: no badness charge
        nlines++;
    }
    while (cursor < nwords && is_break[cursor]) cursor++;
    return cursor;
}

// justification: distribute slack over the inter-word gaps of each line
// (lines are independent of each other, as in a real typesetter's output
// stage, so the signature is accumulated per line bin)
int justify() {
    for (int line = 0; line < nlines; line++) {
        int gaps = linewords[line] - 1;
        if (gaps <= 0) continue;
        int slack = @WIDTH@ - linelen[line];
        if (slack < 0) slack = 0;
        int base = slack / gaps;
        int extra = slack % gaps;
        int line_sig = 0;
        for (int gap = 0; gap < gaps; gap++) {
            int glue = 1 + base;
            if (gap < extra) glue++;
            line_sig = line_sig * 3 + glue;
        }
        sig[line & 7] += line_sig;
    }
    return 0;
}

// pagination with club/widow avoidance
int paginate() {
    int page_lines = 0;
    int pages = 1;
    int penalties = 0;
    for (int line = 0; line < nlines; line++) {
        page_lines++;
        if (page_lines == @PAGE@) {
            // widow check: avoid breaking right before a short line
            if (line + 1 < nlines && linewords[line + 1] <= 2) penalties += 50;
            pages++;
            page_lines = 0;
        }
    }
    return pages * 1000 + penalties;
}

int main() {
    for (int doc = 0; doc < @DOCS@; doc++) {
        make_words(@WORDS@, doc);
        nlines = 0;
        total_badness = 0;
        int cursor = 0;
        while (cursor < @WORDS@ && nlines < @LINES@) {
            cursor = fill_paragraph(cursor, @WORDS@);
            if (cursor < @WORDS@ && !is_break[cursor] && nlines >= @LINES@) break;
        }
        sig[doc & 7] += total_badness + nlines * 7;
        justify();
        sig[(doc + 1) & 7] += paginate();
    }
    int checksum = 0;
    for (int i = 0; i < 8; i++) checksum = checksum * 31 + sig[i];
    return checksum;
}
"""


def source(scale: int) -> str:
    return (
        _TEMPLATE.replace("@WORDS@", "1400")
        .replace("@LINES@", "400")
        .replace("@WIDTH@", "66")
        .replace("@PAGE@", "40")
        .replace("@DOCS@", str(5 * max(1, scale)))
    )


SPEC = BenchmarkSpec(
    name="latex",
    language="C",
    description="document preparation",
    numeric=False,
    source=source,
    default_scale=2,
)
