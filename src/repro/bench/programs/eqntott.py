"""``eqntott`` analogue — truth table generation (C).

The original converts boolean equations into truth tables; the paper notes
it "primarily executes a quicksort function which contains few data
dependences".  This analogue builds the truth table of a randomly generated
multi-output boolean function (one row per input assignment, valued by
evaluating a sum-of-products form), then quicksorts the rows — recursively,
as in the original — and finally scans for duplicate adjacent rows to build
the output "PLA" signature.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// eqntott analogue: truth table generation + quicksort
int table[@ROWS@];
int index_of[@ROWS@];
int terms_and[@NTERMS@];
int terms_xor[@NTERMS@];
int sig[16];

int mix(int x) {
    x = x * 2654435761;
    x = x ^ ((x >> 13) & 262143);
    x = x * 1103515245 + 12345;
    x = x ^ ((x >> 16) & 65535);
    if (x < 0) x = -x;
    return x;
}

void make_function(int salt) {
    for (int t = 0; t < @NTERMS@; t++) {
        terms_and[t] = mix(t * 2 + salt * 8191) % @ROWS@;
        terms_xor[t] = mix(t * 2 + 1 + salt * 8191) % @ROWS@;
    }
}

int eval_row(int assignment) {
    // sum-of-products-ish evaluation with data-dependent short cuts
    int value = 0;
    for (int t = 0; t < @NTERMS@; t++) {
        int masked = assignment & terms_and[t];
        if (masked == terms_and[t]) value = value * 2 + 1;
        else if (masked ^ terms_xor[t]) value = value * 3 + (masked & 7);
        else value = value + 1;
    }
    return value;
}

void fill_table() {
    for (int row = 0; row < @ROWS@; row++) {
        table[row] = eval_row(row);
        index_of[row] = row;
    }
}

void quicksort(int lo, int hi) {
    if (lo >= hi) return;
    int pivot = table[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (table[i] < pivot) i++;
        while (table[j] > pivot) j--;
        if (i <= j) {
            int tmp = table[i]; table[i] = table[j]; table[j] = tmp;
            tmp = index_of[i]; index_of[i] = index_of[j]; index_of[j] = tmp;
            i++;
            j--;
        }
    }
    quicksort(lo, j);
    quicksort(i, hi);
}

int main() {
    for (int rep = 0; rep < @REPS@; rep++) {
        make_function(rep);
        fill_table();
        quicksort(0, @ROWS@ - 1);
        // signature: distinct-value count and a permutation hash, binned so
        // the output pass has independent accumulation chains (the original
        // writes its PLA rows out instead of folding them)
        for (int row = 1; row < @ROWS@; row++) {
            int bin = row & 15;
            if (table[row] != table[row - 1]) sig[bin] += 1009;
            sig[bin] += index_of[row] * 17 + (table[row] & 255);
        }
    }
    int checksum = 0;
    for (int i = 0; i < 16; i++) checksum = checksum * 31 + sig[i];
    return checksum;
}
"""


def source(scale: int) -> str:
    rows = 1024
    return (
        _TEMPLATE.replace("@ROWS@", str(rows))
        .replace("@NTERMS@", "12")
        .replace("@REPS@", str(max(1, scale)))
    )


SPEC = BenchmarkSpec(
    name="eqntott",
    language="C",
    description="truth table generation",
    numeric=False,
    source=source,
    default_scale=3,
)
