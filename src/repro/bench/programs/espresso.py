"""``espresso`` analogue — two-level logic minimization (C).

The original minimizes boolean functions represented as cube covers.  This
analogue implements the core Quine–McCluskey/espresso inner loop: minterms
of randomly generated functions are grouped by population count and
repeatedly pairwise-merged when they differ in exactly one care bit,
producing implicants with don't-care masks; unmerged cubes become primes.
A final containment pass drops covered cubes.  Bit manipulation with highly
data-dependent compare/merge control flow dominates, as in the original.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// espresso analogue: cube merging / prime implicant generation
int cube_value[@MAX@];   // asserted bits
int cube_mask[@MAX@];    // don't-care bits
int cube_used[@MAX@];
int next_value[@MAX@];
int next_mask[@MAX@];
int primes_value[@MAX@];
int primes_mask[@MAX@];
int nprimes;
int sig[8];

int mix(int x) {
    x = x * 2654435761;
    x = x ^ ((x >> 13) & 262143);
    x = x * 1103515245 + 12345;
    x = x ^ ((x >> 16) & 65535);
    if (x < 0) x = -x;
    return x;
}

int popcount(int x) {
    int count = 0;
    while (x) {
        count += x & 1;
        x = (x >> 1) & 2147483647;
    }
    return count;
}

// generate the on-set of a random function over @NV@ variables
int make_onset(int ncubes, int salt) {
    int n = 0;
    for (int i = 0; i < ncubes; i++) {
        int m = mix(i + salt * 524287) % (1 << @NV@);
        // avoid duplicates with a linear scan (espresso uses hashing)
        int duplicate = 0;
        for (int j = 0; j < n; j++) {
            if (cube_value[j] == m) { duplicate = 1; break; }
        }
        if (!duplicate) {
            cube_value[n] = m;
            cube_mask[n] = 0;
            n++;
        }
    }
    return n;
}

// one merging generation: combine cubes differing in exactly one care bit
int merge_generation(int n, int *out_count) {
    int produced = 0;
    int merged_any = 0;
    for (int i = 0; i < n; i++) cube_used[i] = 0;
    for (int i = 0; i < n; i++) {
        for (int j = i + 1; j < n; j++) {
            if (cube_mask[i] != cube_mask[j]) continue;
            int diff = cube_value[i] ^ cube_value[j];
            if (diff == 0) continue;
            if ((diff & (diff - 1)) != 0) continue;  // not a single bit
            // mergeable: record combined cube if new
            int value = cube_value[i] & cube_value[j];
            int mask = cube_mask[i] | diff;
            int duplicate = 0;
            for (int k = 0; k < produced; k++) {
                if (next_value[k] == value && next_mask[k] == mask) {
                    duplicate = 1;
                    break;
                }
            }
            if (!duplicate && produced < @MAX@) {
                next_value[produced] = value;
                next_mask[produced] = mask;
                produced++;
            }
            cube_used[i] = 1;
            cube_used[j] = 1;
            merged_any = 1;
        }
    }
    // unmerged cubes are prime
    for (int i = 0; i < n; i++) {
        if (!cube_used[i] && nprimes < @MAX@) {
            primes_value[nprimes] = cube_value[i];
            primes_mask[nprimes] = cube_mask[i];
            nprimes++;
        }
    }
    for (int i = 0; i < produced; i++) {
        cube_value[i] = next_value[i];
        cube_mask[i] = next_mask[i];
    }
    *out_count = produced;
    return merged_any;
}

// does prime p contain prime q?  (q's care bits agree and are a superset)
int contains(int p, int q) {
    if ((primes_mask[p] | primes_mask[q]) != primes_mask[p]) return 0;
    int care = ~primes_mask[p];
    return (primes_value[p] & care) == (primes_value[q] & care);
}

int main() {
    int out[1];
    for (int func = 0; func < @FUNCS@; func++) {
        nprimes = 0;
        int n = make_onset(@CUBES@, func);
        while (n > 1) {
            int merged = merge_generation(n, out);
            n = out[0];
            if (!merged) break;
        }
        // leftover cubes are prime too
        for (int i = 0; i < n; i++) {
            primes_value[nprimes] = cube_value[i];
            primes_mask[nprimes] = cube_mask[i];
            nprimes++;
        }
        // containment pass: count maximal primes (binned signature so the
        // output accumulation does not serialize the whole run)
        for (int p = 0; p < nprimes; p++) {
            int covered = 0;
            for (int q = 0; q < nprimes; q++) {
                if (p != q && contains(q, p) && primes_mask[q] != primes_mask[p]) {
                    covered = 1;
                    break;
                }
            }
            if (!covered)
                sig[p & 7] += 101 + primes_value[p] + primes_mask[p] * 3;
        }
        sig[func & 7] += nprimes;
    }
    int checksum = 0;
    for (int i = 0; i < 8; i++) checksum = checksum * 31 + sig[i];
    return checksum;
}
"""


def source(scale: int) -> str:
    return (
        _TEMPLATE.replace("@MAX@", "600")
        .replace("@NV@", "9")
        .replace("@CUBES@", "70")
        .replace("@FUNCS@", str(6 * max(1, scale)))
    )


SPEC = BenchmarkSpec(
    name="espresso",
    language="C",
    description="logic minimization",
    numeric=False,
    source=source,
    default_scale=2,
)
