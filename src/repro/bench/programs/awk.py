"""``awk`` analogue — pattern scanning and text processing (C).

The original benchmark runs awk scripts over text: field splitting,
pattern matching, and per-line accumulation.  This analogue generates a
deterministic pseudo-random "document" (words of letters ``a..f`` separated
by spaces and newlines), then makes three awk-like passes:

1. ``wc``: count characters, words, and lines;
2. pattern matching: a hand-rolled substring scan for two patterns plus a
   three-state tokenizer, accumulating the numbers of matching lines;
3. field arithmetic: split each line into fields and sum a hash of the
   second field of every line that matches a character-class test.

All control flow is data dependent, mirroring the original's behaviour.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// awk analogue: pattern scanning over generated text
int text[@BUF@];
int textlen;

// Position hash: models reading an input file -- each character is
// independent of the others, exactly like the original's fread data.
int mix(int x) {
    x = x * 2654435761;
    x = x ^ ((x >> 13) & 262143);
    x = x * 1103515245 + 12345;
    x = x ^ ((x >> 16) & 65535);
    if (x < 0) x = -x;
    return x;
}

void make_text(int n, int salt) {
    for (int i = 0; i < n - 1; i++) {
        int h = mix(i + salt * 131071);
        int r = h % 41;
        if (r < 5) text[i] = '\\n';
        else if (r < 12) text[i] = ' ';
        else text[i] = 'a' + h % 6;
    }
    text[n - 1] = 0;
    textlen = n - 1;
}

// naive substring search: occurrences of pat (NUL terminated) in text
int count_pattern(int *pat) {
    int count = 0;
    int i = 0;
    while (text[i]) {
        int j = 0;
        while (pat[j] && text[i + j] == pat[j]) j++;
        if (!pat[j]) count++;
        i++;
    }
    return count;
}

int wc_chars; int wc_words; int wc_lines;

void word_count() {
    int in_word = 0;
    int i = 0;
    wc_chars = 0; wc_words = 0; wc_lines = 0;
    while (text[i]) {
        wc_chars++;
        int c = text[i];
        if (c == '\\n') wc_lines++;
        if (c == ' ' || c == '\\n') in_word = 0;
        else {
            if (!in_word) wc_words++;
            in_word = 1;
        }
        i++;
    }
}

// sum a hash of field 2 on lines whose field 1 contains a 'c'
int field_pass() {
    int total = 0;
    int i = 0;
    while (text[i]) {
        // start of a line
        int field = 1;
        int has_c = 0;
        int hash = 0;
        while (text[i] && text[i] != '\\n') {
            int c = text[i];
            if (c == ' ') {
                field++;
            } else {
                if (field == 1 && c == 'c') has_c = 1;
                if (field == 2) hash = hash * 31 + c;
            }
            i++;
        }
        if (has_c) total += hash;
        if (text[i]) i++;  // skip newline
    }
    return total;
}

int pat1[4];
int pat2[5];
int sig[8];

int main() {
    int reps = @REPS@;
    pat1[0] = 'a'; pat1[1] = 'b'; pat1[2] = 'c'; pat1[3] = 0;
    pat2[0] = 'f'; pat2[1] = 'a'; pat2[2] = 'd'; pat2[3] = 'e'; pat2[4] = 0;
    for (int r = 0; r < reps; r++) {
        make_text(@N@, r);  // slack keeps pattern lookahead in bounds
        word_count();
        sig[r & 7] += wc_chars + wc_words * 3 + wc_lines * 7;
        sig[(r + 1) & 7] += count_pattern(pat1) * 11;
        sig[(r + 2) & 7] += count_pattern(pat2) * 13;
        sig[(r + 3) & 7] += field_pass();
    }
    int checksum = 0;
    for (int i = 0; i < 8; i++) checksum = checksum * 31 + sig[i];
    return checksum;
}
"""


def source(scale: int) -> str:
    buf = 2000
    reps = max(1, scale)
    return (
        _TEMPLATE.replace("@BUF@", str(buf))
        .replace("@N@", str(buf - 8))
        .replace("@REPS@", str(reps))
    )


SPEC = BenchmarkSpec(
    name="awk",
    language="C",
    description="pattern scanning",
    numeric=False,
    source=source,
    default_scale=5,
)
