"""``matrix300`` analogue — dense matrix multiplication (FORTRAN).

The original multiplies 300×300 matrices with various loop orders.  This
analogue multiplies N×N double-precision matrices (N scaled down so the
interpreter traces stay tractable) in the classic i-j-k order plus a
transposed variant, exactly the data-independent control flow that lets the
CD machines approach ORACLE in the paper's Table 3.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// matrix300 analogue: C = A*B and D = A*B^T, N = @N@
float a[@NN@];
float b[@NN@];
float c[@NN@];
float d[@NN@];

void init() {
    for (int i = 0; i < @N@; i++) {
        for (int j = 0; j < @N@; j++) {
            a[i * @N@ + j] = (float)(i - j) * 0.5 + 1.0;
            // a sprinkling of exact zeros exercises the SGEMM skip guard
            if ((i * 7 + j) % 13 == 0) b[i * @N@ + j] = 0.0;
            else b[i * @N@ + j] = (float)(i + j) * 0.25 - 1.0;
            c[i * @N@ + j] = 0.0;
            d[i * @N@ + j] = 0.0;
        }
    }
}

// j-k-i SAXPY order with the netlib SGEMM zero-skip guard: the original's
// inner loops carry exactly this kind of (well-predicted) data-dependent
// branch, which is what separates BASE from ORACLE on numeric code.
// Addressing uses strength-reduced pointer walks, like the MIPS FORTRAN
// compiler's -O2 output, so perfect unrolling removes the whole loop
// overhead (pointer bumps included).
void matmul() {
    for (int j = 0; j < @N@; j++) {
        float *bp = b + j;                    // walks column j of B
        for (int k = 0; k < @N@; k++) {
            float bkj = *bp;
            if (bkj != 0.0) {
                float *ap = a + k;            // column k of A, step N
                float *cp = c + j;            // column j of C, step N
                for (int i = 0; i < @N@; i++) {
                    *cp += *ap * bkj;
                    ap += @N@;
                    cp += @N@;
                }
            }
            bp += @N@;
        }
    }
}

void matmul_bt() {
    float *arow = a;
    for (int i = 0; i < @N@; i++) {
        float *brow = b;
        for (int j = 0; j < @N@; j++) {
            float total = 0.0;
            float *ap = arow;
            float *bp = brow;
            for (int k = 0; k < @N@; k++) {
                total += *ap * *bp;
                ap++;
                bp++;
            }
            d[i * @N@ + j] = total;
            brow += @N@;
        }
        arow += @N@;
    }
}

int main() {
    init();
    matmul();
    matmul_bt();
    float checksum = 0.0;
    for (int i = 0; i < @N@; i++)
        checksum += c[i * @N@ + i] + d[i * @N@ + (@N@ - 1 - i)] * 0.5;
    return (int)checksum;
}
"""


def source(scale: int) -> str:
    n = min(16 + 4 * max(1, scale), 40)
    return _TEMPLATE.replace("@NN@", str(n * n)).replace("@N@", str(n))


SPEC = BenchmarkSpec(
    name="matrix300",
    language="FORTRAN",
    description="matrix multiplication",
    numeric=True,
    source=source,
    default_scale=4,
)
