"""``tomcatv`` analogue — vectorized mesh generation (FORTRAN).

The original generates a body-fitted 2D mesh by iterating residual
computations and tridiagonal solves over regular grids.  This analogue
keeps the same structure on an N×N grid: per-iteration residual stencils on
two coordinate arrays, a simplified tridiagonal (Thomas algorithm) sweep
along each row, and additive correction — all counted loops over float
arrays, the pure data-independent control flow of the paper's most parallel
benchmark.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// tomcatv analogue: mesh relaxation with row-wise tridiagonal sweeps, N = @N@
float x[@NN@];
float y[@NN@];
float rx[@NN@];
float ry[@NN@];
float aa[@N@];
float dd[@N@];

void init() {
    for (int i = 0; i < @N@; i++) {
        for (int j = 0; j < @N@; j++) {
            // wavy body-fitted surface: keeps the relaxation busy for the
            // whole iteration budget instead of converging immediately
            int h = (i * 7919 + j * 104729) % 97;
            float bump = (float)(h - 48) * 0.02;
            x[i * @N@ + j] = (float)j + (float)i * 0.1 + bump;
            y[i * @N@ + j] = (float)i - (float)j * 0.1 - bump * 0.5;
        }
    }
}

float rxm; float rym;

// residuals: 5-point stencil on interior points, tracking the maximum
// residual magnitudes (the original's RXM/RYM convergence quantities,
// whose max-update tests are its data-dependent branches)
void residuals() {
    rxm = 0.0;
    rym = 0.0;
    int p = @N@ + 1;                 // (1,1); strength-reduced walk
    for (int i = 1; i < @N@ - 1; i++) {
        for (int j = 1; j < @N@ - 1; j++) {
            float xij = x[p];
            float yij = y[p];
            float rxp = x[p - 1] + x[p + 1] + x[p - @N@] + x[p + @N@] - 4.0 * xij;
            float ryp = y[p - 1] + y[p + 1] + y[p - @N@] + y[p + @N@] - 4.0 * yij;
            rx[p] = rxp;
            ry[p] = ryp;
            if (rxp < 0.0) rxp = -rxp;
            if (ryp < 0.0) ryp = -ryp;
            if (rxp > rxm) rxm = rxp;
            if (ryp > rym) rym = ryp;
            p++;
        }
        p += 2;                       // skip the boundary columns
    }
}

// simplified Thomas algorithm along each interior row
void tridiag_rows() {
    for (int i = 1; i < @N@ - 1; i++) {
        int base = i * @N@;
        aa[0] = 0.0;
        dd[0] = 0.0;
        for (int j = 1; j < @N@ - 1; j++) {
            float denom = 4.0 - aa[j - 1];
            aa[j] = 1.0 / denom;
            dd[j] = (rx[base + j] + dd[j - 1]) / denom;
        }
        float back = 0.0;
        for (int j = @N@ - 2; j >= 1; j--) {
            back = dd[j] + aa[j] * back;
            rx[base + j] = back;
        }
    }
}

void update() {
    int p = @N@ + 1;
    for (int i = 1; i < @N@ - 1; i++) {
        for (int j = 1; j < @N@ - 1; j++) {
            x[p] = x[p] + rx[p] * 0.7;
            y[p] = y[p] + ry[p] * 0.35;
            p++;
        }
        p += 2;
    }
}

int main() {
    init();
    for (int iter = 0; iter < @ITERS@; iter++) {
        residuals();
        if (rxm + rym < 0.0001) break;  // converged (data-dependent exit)
        tridiag_rows();
        update();
    }
    float checksum = 0.0;
    for (int i = 0; i < @N@; i++)
        checksum += x[i * @N@ + i] - y[i * @N@ + (@N@ - 1 - i)];
    return (int)checksum;
}
"""


def source(scale: int) -> str:
    n = 24
    iters = 4 * max(1, scale)
    return (
        _TEMPLATE.replace("@NN@", str(n * n))
        .replace("@N@", str(n))
        .replace("@ITERS@", str(iters))
    )


SPEC = BenchmarkSpec(
    name="tomcatv",
    language="FORTRAN",
    description="mesh generation",
    numeric=True,
    source=source,
    default_scale=5,
)
