"""``ccom`` analogue — C compiler front end (C).

The original is the MIPS C compiler's front end.  This analogue implements
a miniature expression-language front end and runs it over generated
sources: a recursive expression *generator* writes text into a buffer, a
*lexer* tokenizes it, a recursive-descent *parser* with two precedence
levels simultaneously evaluates the expression and *emits* stack-machine
code, and a tiny VM executes that code as a consistency check.  The mix —
character dispatch, deep recursion, table lookups — mirrors a compiler
front end's data-dependent control flow.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// ccom analogue: generate -> lex -> parse/emit -> execute, repeatedly
int src[@BUF@];
int srclen;
int toks[@BUF@];      // token kinds
int tokvals[@BUF@];   // token values
int ntoks;
int code_op[@BUF@];   // 0 push, 1 add, 2 sub, 3 mul, 4 div
int code_arg[@BUF@];
int ncode;
int stack[256];
int seed = 777;

int rnd(int n) {
    seed = seed * 1103515245 + 12345;
    int v = seed >> 16;
    if (v < 0) v = -v;
    return v % n;
}

// ---- source generator -------------------------------------------------
void put(int c) { src[srclen] = c; srclen++; }

void gen_expr(int depth) {
    int choice = rnd(10);
    if (depth >= 6 || choice < 4) {
        put('1' + rnd(9));
        return;
    }
    if (choice < 6) {
        put('(');
        gen_expr(depth + 1);
        put(')');
        return;
    }
    gen_expr(depth + 1);
    int op = rnd(4);
    if (op == 0) put('+');
    else if (op == 1) put('-');
    else if (op == 2) put('*');
    else put('/');
    gen_expr(depth + 1);
}

// ---- lexer -----------------------------------------------------------
// token kinds: 0 number, 1 '+', 2 '-', 3 '*', 4 '/', 5 '(', 6 ')', 7 eof
void lex() {
    int i = 0;
    ntoks = 0;
    while (i < srclen) {
        int c = src[i];
        if (c >= '0' && c <= '9') {
            int value = 0;
            while (i < srclen && src[i] >= '0' && src[i] <= '9') {
                value = value * 10 + (src[i] - '0');
                i++;
            }
            toks[ntoks] = 0;
            tokvals[ntoks] = value;
            ntoks++;
        } else {
            // operator dispatch through a jump table, like a real lexer
            int kind;
            switch (c) {
                case '+': kind = 1; break;
                case '-': kind = 2; break;
                case '*': kind = 3; break;
                case '/': kind = 4; break;
                case '(': kind = 5; break;
                case ')': kind = 6; break;
                default:  kind = 7;
            }
            toks[ntoks] = kind;
            tokvals[ntoks] = 0;
            ntoks++;
            i++;
        }
    }
    toks[ntoks] = 7;
    tokvals[ntoks] = 0;
}

// ---- parser + code emitter -----------------------------------------------
int pos;

void emit(int op, int arg) {
    code_op[ncode] = op;
    code_arg[ncode] = arg;
    ncode++;
}

int parse_factor() {
    if (toks[pos] == 5) {         // '('
        pos++;
        int value = parse_sum();
        pos++;                    // ')'
        return value;
    }
    int value = tokvals[pos];
    emit(0, value);
    pos++;
    return value;
}

int parse_term() {
    int value = parse_factor();
    while (toks[pos] == 3 || toks[pos] == 4) {
        int op = toks[pos];
        pos++;
        int rhs = parse_factor();
        if (op == 3) { value = value * rhs; emit(3, 0); }
        else {
            if (rhs != 0) value = value / rhs;
            emit(4, 0);
        }
    }
    return value;
}

int parse_sum() {
    int value = parse_term();
    while (toks[pos] == 1 || toks[pos] == 2) {
        int op = toks[pos];
        pos++;
        int rhs = parse_term();
        if (op == 1) { value = value + rhs; emit(1, 0); }
        else { value = value - rhs; emit(2, 0); }
    }
    return value;
}

// ---- stack machine ------------------------------------------------------
int execute() {
    int sp = 0;
    for (int i = 0; i < ncode; i++) {
        int op = code_op[i];
        if (op == 0) { stack[sp] = code_arg[i]; sp++; }
        else {
            int b = stack[sp - 1];
            int a = stack[sp - 2];
            sp--;
            if (op == 1) stack[sp - 1] = a + b;
            else if (op == 2) stack[sp - 1] = a - b;
            else if (op == 3) stack[sp - 1] = a * b;
            else { if (b != 0) stack[sp - 1] = a / b; else stack[sp - 1] = a; }
        }
    }
    return stack[0];
}

int main() {
    int checksum = 0;
    for (int unit = 0; unit < @UNITS@; unit++) {
        srclen = 0;
        ncode = 0;
        seed = unit * 2654435761 + 777;  // independent compilation units
        gen_expr(0);
        lex();
        pos = 0;
        int parsed = parse_sum();
        int executed = execute();
        // parser folds with C division-by-zero guard; the stack machine
        // guards differently, so only the parsed value feeds the checksum
        // deterministically -- but both paths must run.
        checksum = checksum * 31 + parsed + (executed & 15) + ntoks;
    }
    return checksum;
}
"""


def source(scale: int) -> str:
    return _TEMPLATE.replace("@BUF@", "2048").replace(
        "@UNITS@", str(220 * max(1, scale))
    )


SPEC = BenchmarkSpec(
    name="ccom",
    language="C",
    description="C compiler front-end",
    numeric=False,
    source=source,
    default_scale=3,
)
