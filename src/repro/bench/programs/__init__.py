"""The ten benchmark programs, one module per paper Table 1 row."""

from repro.bench.programs import (
    awk,
    ccom,
    eqntott,
    espresso,
    gcc,
    irsim,
    latex,
    matrix300,
    spice2g6,
    tomcatv,
)

ALL_SPECS = (
    awk.SPEC,
    ccom.SPEC,
    eqntott.SPEC,
    espresso.SPEC,
    gcc.SPEC,
    irsim.SPEC,
    latex.SPEC,
    matrix300.SPEC,
    spice2g6.SPEC,
    tomcatv.SPEC,
)

__all__ = ["ALL_SPECS"]
