"""``gcc`` (cc1) analogue — optimizing compiler middle end (C).

The original is GNU cc1.  This analogue exercises a compiler's *optimizer*
rather than its front end (ccom covers that): it generates random
three-address code over virtual registers, then runs classic passes to a
fixpoint — constant propagation with folding, copy propagation, common
subexpression elimination (linear value-table lookup), and dead-code
elimination by backward liveness — finally compacting the surviving
instructions.  Pass-driven worklists over instruction arrays give the
irregular, pointer-chasing control flow characteristic of the original.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// gcc analogue: three-address-code optimizer
// ops: 0 const, 1 add, 2 sub, 3 mul, 4 copy, 5 use (output)
int op[@N@];
int dst[@N@];
int s1[@N@];
int s2[@N@];
int dead[@N@];
int ninstr;
int const_known[@REGS@];
int const_val[@REGS@];
int copy_of[@REGS@];
int live[@REGS@];
int sig[8];

int mix(int x) {
    x = x * 2654435761;
    x = x ^ ((x >> 13) & 262143);
    x = x * 1103515245 + 12345;
    x = x ^ ((x >> 16) & 65535);
    if (x < 0) x = -x;
    return x;
}

void gen_code(int n, int salt) {
    // position-hashed input program: models parsing an independent source
    // file rather than chaining a sequential RNG through the whole run
    ninstr = n;
    for (int i = 0; i < n; i++) {
        int h = mix(i + salt * 1048573);
        int kind = h % 10;
        dead[i] = 0;
        if (kind < 3) {
            op[i] = 0;                       // const
            dst[i] = (h >> 4) % @REGS@;
            s1[i] = (h >> 9) % 64;
            s2[i] = 0;
        } else if (kind < 5) {
            op[i] = 4;                       // copy
            dst[i] = (h >> 4) % @REGS@;
            s1[i] = (h >> 9) % @REGS@;
            s2[i] = 0;
        } else if (kind < 9) {
            op[i] = 1 + h % 3;               // add/sub/mul
            dst[i] = (h >> 4) % @REGS@;
            s1[i] = (h >> 9) % @REGS@;
            s2[i] = (h >> 14) % @REGS@;
        } else {
            op[i] = 5;                       // use: keeps its source alive
            dst[i] = 0;
            s1[i] = (h >> 9) % @REGS@;
            s2[i] = 0;
        }
    }
}

int fold(int kind, int a, int b) {
    if (kind == 1) return a + b;
    if (kind == 2) return a - b;
    return a * b;
}

// constant + copy propagation; returns number of instructions rewritten
int propagate() {
    int changed = 0;
    for (int r = 0; r < @REGS@; r++) {
        const_known[r] = 0;
        copy_of[r] = r;
    }
    for (int i = 0; i < ninstr; i++) {
        int kind = op[i];
        if (dead[i]) continue;
        if (kind == 0) {
            const_known[dst[i]] = 1;
            const_val[dst[i]] = s1[i];
            copy_of[dst[i]] = dst[i];
        } else if (kind == 4) {
            int src = copy_of[s1[i]];
            if (src != s1[i]) { s1[i] = src; changed++; }
            if (const_known[s1[i]]) {
                op[i] = 0;                   // copy of constant -> const
                s1[i] = const_val[s1[i]];
                const_known[dst[i]] = 1;
                const_val[dst[i]] = s1[i];
                copy_of[dst[i]] = dst[i];
                changed++;
            } else {
                const_known[dst[i]] = 0;
                copy_of[dst[i]] = s1[i];
            }
        } else if (kind >= 1 && kind <= 3) {
            int a = copy_of[s1[i]];
            int b = copy_of[s2[i]];
            if (a != s1[i]) { s1[i] = a; changed++; }
            if (b != s2[i]) { s2[i] = b; changed++; }
            if (const_known[s1[i]] && const_known[s2[i]]) {
                int value = fold(kind, const_val[s1[i]], const_val[s2[i]]);
                op[i] = 0;
                s1[i] = value;
                s2[i] = 0;
                const_known[dst[i]] = 1;
                const_val[dst[i]] = value;
                copy_of[dst[i]] = dst[i];
                changed++;
            } else {
                const_known[dst[i]] = 0;
                copy_of[dst[i]] = dst[i];
            }
        }
        // any redefinition invalidates copies pointing at dst
        if (kind != 5) {
            for (int r = 0; r < @REGS@; r++) {
                if (r != dst[i] && copy_of[r] == dst[i]) copy_of[r] = r;
            }
        }
    }
    return changed;
}

// common subexpression elimination within the straight-line block
int cse() {
    int changed = 0;
    for (int i = 0; i < ninstr; i++) {
        if (dead[i] || op[i] < 1 || op[i] > 3) continue;
        for (int j = i + 1; j < ninstr; j++) {
            if (dead[j]) continue;
            // stop if any input is redefined
            if (op[j] >= 1 && op[j] <= 3 && op[j] == op[i]
                && s1[j] == s1[i] && s2[j] == s2[i]) {
                op[j] = 4;                  // replace with copy
                s1[j] = dst[i];
                s2[j] = 0;
                changed++;
            }
            if (op[j] != 5 && (dst[j] == s1[i] || dst[j] == s2[i] || dst[j] == dst[i]))
                break;
        }
    }
    return changed;
}

// dead code elimination: backward liveness with a per-opcode jump table
// (compilers dispatch on opcodes through switches; the computed jumps
// were part of the original gcc's control-flow profile)
int dce() {
    int removed = 0;
    for (int r = 0; r < @REGS@; r++) live[r] = 0;
    for (int i = ninstr - 1; i >= 0; i--) {
        if (dead[i]) continue;
        switch (op[i]) {
            case 5:
                live[s1[i]] = 1;
                break;
            case 0:
                if (!live[dst[i]]) { dead[i] = 1; removed++; }
                else live[dst[i]] = 0;
                break;
            case 4:
                if (!live[dst[i]]) { dead[i] = 1; removed++; }
                else { live[dst[i]] = 0; live[s1[i]] = 1; }
                break;
            case 1:
            case 2:
            case 3:
                if (!live[dst[i]]) { dead[i] = 1; removed++; }
                else { live[dst[i]] = 0; live[s1[i]] = 1; live[s2[i]] = 1; }
                break;
        }
    }
    return removed;
}

int main() {
    for (int unit = 0; unit < @UNITS@; unit++) {
        gen_code(@N@, unit);
        int rounds = 0;
        while (rounds < 10) {
            int changed = propagate();
            changed += cse();
            changed += dce();
            rounds++;
            if (!changed) break;
        }
        // "emit" the surviving program: binned signature models writing
        // the output instructions out one by one
        for (int i = 0; i < ninstr; i++) {
            if (!dead[i]) {
                sig[i & 7] += op[i] * 97 + dst[i] * 13 + s1[i] * 3 + s2[i];
                sig[(i + 1) & 7] += 1009;
            }
        }
        sig[unit & 7] += rounds * 31;
    }
    int checksum = 0;
    for (int i = 0; i < 8; i++) checksum = checksum * 31 + sig[i];
    return checksum;
}
"""


def source(scale: int) -> str:
    return (
        _TEMPLATE.replace("@N@", "400")
        .replace("@REGS@", "24")
        .replace("@UNITS@", str(max(1, scale)))
    )


SPEC = BenchmarkSpec(
    name="gcc",
    language="C",
    description="optimizing C compiler (cc1)",
    numeric=False,
    source=source,
    default_scale=4,
)
