"""``spice2g6`` analogue — nonlinear circuit simulation (FORTRAN).

The original is the SPICE circuit simulator.  The paper singles it out as
the numeric benchmark whose *data-dependent control flow* makes it behave
like the non-numeric programs — so this analogue keeps exactly that
character: a transient sweep where each timestep runs a Newton–Raphson
iteration (data-dependent trip count from a convergence test) on a small
nonlinear network; each Newton step assembles a Jacobian with cubic
device nonlinearities and solves it by Gaussian elimination with partial
pivoting (data-dependent row swaps); a local-truncation-error check
adapts the timestep (more data-dependent branching).
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// spice2g6 analogue: Newton-Raphson transient analysis, @NODES@ nodes
float jac[@NN@];         // Jacobian, row-major
float rhs[@NODES@];
float volt[@NODES@];
float prev[@NODES@];
float gmat[@NN@];        // linear conductance stamps
float cubic[@NODES@];    // per-node cubic device coefficient
int   pivot_count;
int   newton_total;

void build_network() {
    // ring + chords conductance pattern, diagonally dominant
    for (int i = 0; i < @NODES@; i++) {
        for (int j = 0; j < @NODES@; j++) gmat[i * @NODES@ + j] = 0.0;
        cubic[i] = 0.02 + 0.01 * (float)(i % 5);
        volt[i] = 0.0;
    }
    for (int i = 0; i < @NODES@; i++) {
        int j = (i + 1) % @NODES@;
        int k = (i + 3) % @NODES@;
        gmat[i * @NODES@ + i] += 3.0;
        gmat[i * @NODES@ + j] -= 1.0;
        gmat[j * @NODES@ + i] -= 1.0;
        gmat[i * @NODES@ + k] -= 0.5;
        gmat[k * @NODES@ + i] -= 0.5;
    }
}

// residual f(v) = G v + c v^3 - source; Jacobian J = G + 3 c v^2
void assemble(float source) {
    for (int i = 0; i < @NODES@; i++) {
        float accum = 0.0;
        for (int j = 0; j < @NODES@; j++) {
            float g = gmat[i * @NODES@ + j];
            jac[i * @NODES@ + j] = g;
            accum += g * volt[j];
        }
        float v = volt[i];
        accum += cubic[i] * v * v * v;
        jac[i * @NODES@ + i] += 3.0 * cubic[i] * v * v;
        float drive = 0.0;
        if (i == 0) drive = source;
        if (i == @NODES@ / 2) drive = -source * 0.5;
        rhs[i] = drive - accum;
    }
}

// Gaussian elimination with partial pivoting; solution left in rhs
void solve() {
    for (int col = 0; col < @NODES@; col++) {
        // pivot search
        int best = col;
        float bestmag = jac[col * @NODES@ + col];
        if (bestmag < 0.0) bestmag = -bestmag;
        for (int row = col + 1; row < @NODES@; row++) {
            float mag = jac[row * @NODES@ + col];
            if (mag < 0.0) mag = -mag;
            if (mag > bestmag) { bestmag = mag; best = row; }
        }
        if (best != col) {
            pivot_count++;
            for (int j = col; j < @NODES@; j++) {
                float tmp = jac[col * @NODES@ + j];
                jac[col * @NODES@ + j] = jac[best * @NODES@ + j];
                jac[best * @NODES@ + j] = tmp;
            }
            float tmp = rhs[col];
            rhs[col] = rhs[best];
            rhs[best] = tmp;
        }
        float diag = jac[col * @NODES@ + col];
        if (diag == 0.0) diag = 0.000001;
        for (int row = col + 1; row < @NODES@; row++) {
            float factor = jac[row * @NODES@ + col] / diag;
            if (factor != 0.0) {
                for (int j = col; j < @NODES@; j++)
                    jac[row * @NODES@ + j] -= factor * jac[col * @NODES@ + j];
                rhs[row] -= factor * rhs[col];
            }
        }
    }
    for (int row = @NODES@ - 1; row >= 0; row--) {
        float accum = rhs[row];
        for (int j = row + 1; j < @NODES@; j++)
            accum -= jac[row * @NODES@ + j] * rhs[j];
        float diag = jac[row * @NODES@ + row];
        if (diag == 0.0) diag = 0.000001;
        rhs[row] = accum / diag;
    }
}

// one timestep: Newton iteration to convergence (data-dependent count)
int newton(float source) {
    int iters = 0;
    while (iters < 25) {
        assemble(source);
        solve();
        float worst = 0.0;
        for (int i = 0; i < @NODES@; i++) {
            float delta = rhs[i];
            if (delta < 0.0) delta = -delta;
            if (delta > worst) worst = delta;
            volt[i] += rhs[i];
        }
        iters++;
        if (worst < 0.0005) break;
    }
    newton_total += iters;
    return iters;
}

int main() {
    build_network();
    pivot_count = 0;
    newton_total = 0;
    float t = 0.0;
    float dt = 0.05;
    float checksum = 0.0;
    int steps = 0;
    while (steps < @STEPS@) {
        for (int i = 0; i < @NODES@; i++) prev[i] = volt[i];
        float source = 2.0 * t - t * t * 0.1;
        if (source < 0.0) source = 0.0;
        int iters = newton(source);
        // local truncation error estimate -> adaptive step (data dependent)
        float err = 0.0;
        for (int i = 0; i < @NODES@; i++) {
            float d = volt[i] - prev[i];
            if (d < 0.0) d = -d;
            if (d > err) err = d;
        }
        if (err > 0.5 && dt > 0.01) {
            dt = dt * 0.5;          // reject-ish: tighten the step
        } else {
            t += dt;
            steps++;
            if (err < 0.05 && dt < 0.2) dt = dt * 1.25;
        }
        checksum += volt[0] - volt[@NODES@ - 1] * 0.5 + (float)iters * 0.01;
    }
    return (int)(checksum * 100.0) + pivot_count + newton_total;
}
"""


def source(scale: int) -> str:
    nodes = 10
    return (
        _TEMPLATE.replace("@NN@", str(nodes * nodes))
        .replace("@NODES@", str(nodes))
        .replace("@STEPS@", str(14 * max(1, scale)))
    )


SPEC = BenchmarkSpec(
    name="spice2g6",
    language="FORTRAN",
    description="circuit simulation",
    numeric=True,
    source=source,
    default_scale=2,
)
