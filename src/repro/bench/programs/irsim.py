"""``irsim`` analogue — event-driven switch-level simulator (C).

The original simulates VLSI circuits at the switch level.  This analogue
builds a pseudo-random combinational/sequential gate network (AND, OR,
XOR, NOT, plus latching self-edges) in flat arrays with explicit fanout
lists, then runs an event-driven simulation: applying input vectors seeds a
circular event queue, and gate evaluations propagate only where outputs
actually change, until the network quiesces.  Event-driven propagation is
the canonical data-dependent-control workload.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec

_TEMPLATE = """
// irsim analogue: event-driven gate-level simulation
// gate types: 0 input, 1 AND, 2 OR, 3 XOR, 4 NOT
int gtype[@GATES@];
int gin1[@GATES@];
int gin2[@GATES@];
int value[@GATES@];
int fan_start[@GATES@];    // offsets into fan_edges (+1 sentinel at end)
int fan_count[@GATES@];
int fan_edges[@EDGES@];
int queue[@QCAP@];
int in_queue[@GATES@];
int sig[8];
int seed = 55555;

int rnd(int n) {
    seed = seed * 1103515245 + 12345;
    int v = seed >> 16;
    if (v < 0) v = -v;
    return v % n;
}

// independent per-(vector, input) stimulus, like reading a vector file
int mix(int x) {
    x = x * 2654435761;
    x = x ^ ((x >> 13) & 262143);
    x = x * 1103515245 + 12345;
    x = x ^ ((x >> 16) & 65535);
    if (x < 0) x = -x;
    return x;
}

void build_network() {
    // first @INPUTS@ gates are primary inputs; the rest read earlier gates
    for (int g = 0; g < @GATES@; g++) {
        if (g < @INPUTS@) {
            gtype[g] = 0;
            gin1[g] = 0;
            gin2[g] = 0;
        } else {
            gtype[g] = 1 + rnd(4);
            gin1[g] = rnd(g);
            gin2[g] = rnd(g);
        }
        value[g] = 0;
        in_queue[g] = 0;
    }
    // fanout lists: count, prefix-sum, fill
    for (int g = 0; g < @GATES@; g++) fan_count[g] = 0;
    for (int g = @INPUTS@; g < @GATES@; g++) {
        fan_count[gin1[g]]++;
        if (gtype[g] != 4) fan_count[gin2[g]]++;
    }
    int offset = 0;
    for (int g = 0; g < @GATES@; g++) {
        fan_start[g] = offset;
        offset += fan_count[g];
        fan_count[g] = 0;  // reuse as fill cursor
    }
    for (int g = @INPUTS@; g < @GATES@; g++) {
        int a = gin1[g];
        fan_edges[fan_start[a] + fan_count[a]] = g;
        fan_count[a]++;
        if (gtype[g] != 4) {
            int b = gin2[g];
            fan_edges[fan_start[b] + fan_count[b]] = g;
            fan_count[b]++;
        }
    }
}

int evaluate(int g) {
    int kind = gtype[g];
    int a = value[gin1[g]];
    int b = value[gin2[g]];
    if (kind == 1) return a & b;
    if (kind == 2) return a | b;
    if (kind == 3) return a ^ b;
    if (kind == 4) return 1 - a;
    return value[g];
}

int head; int tail; int pending;

void push(int g) {
    if (in_queue[g]) return;
    queue[tail] = g;
    tail = (tail + 1) % @QCAP@;
    pending++;
    in_queue[g] = 1;
}

int pop() {
    int g = queue[head];
    head = (head + 1) % @QCAP@;
    pending--;
    in_queue[g] = 0;
    return g;
}

int events;

void settle() {
    while (pending > 0) {
        int g = pop();
        int new_value = evaluate(g);
        if (new_value != value[g]) {
            value[g] = new_value;
            events++;
            int base = fan_start[g];
            int n = fan_count[g];
            for (int e = 0; e < n; e++) push(fan_edges[base + e]);
        }
    }
}

int main() {
    build_network();
    head = 0; tail = 0; pending = 0; events = 0;
    for (int vec = 0; vec < @VECTORS@; vec++) {
        // flip a pseudo-random subset of primary inputs (vector file)
        for (int i = 0; i < @INPUTS@; i++) {
            if (mix(vec * 37 + i) % 3 == 0) {
                value[i] = 1 - value[i];
                int base = fan_start[i];
                int n = fan_count[i];
                for (int e = 0; e < n; e++) push(fan_edges[base + e]);
            }
        }
        settle();
        // observe the last few gates as outputs
        int signature = 0;
        for (int g = @GATES@ - 8; g < @GATES@; g++)
            signature = signature * 2 + value[g];
        sig[vec & 7] += signature * 31 + events;
    }
    int checksum = 0;
    for (int i = 0; i < 8; i++) checksum = checksum * 31 + sig[i];
    return checksum;
}
"""


def source(scale: int) -> str:
    return (
        _TEMPLATE.replace("@GATES@", "400")
        .replace("@EDGES@", "800")
        .replace("@QCAP@", "512")
        .replace("@INPUTS@", "24")
        .replace("@VECTORS@", str(60 * max(1, scale)))
    )


SPEC = BenchmarkSpec(
    name="irsim",
    language="C",
    description="VLSI switch-level simulator",
    numeric=False,
    source=source,
    default_scale=2,
)
