"""Benchmark history store + ``repro-bench-diff`` regression detector.

Every perf harness in this repo (``repro-analyzer-bench``,
``repro-vm-bench``, ``repro-serve-load``) can append its run to a shared
JSONL history file via ``--history PATH``.  Each line is one
schema-versioned record::

    {"schema": 1, "kind": "vm-bench", "ts": 1754505600.0,
     "git_sha": "2f33645...", "host": {"platform": ..., "python": ...,
     "machine": ..., "cpus": 8},
     "entries": {"gcc.fast_s": {"value": 0.41, "unit": "s",
                                "direction": "lower"},
                 "gcc.speedup": {"value": 5.2, "unit": "x",
                                 "direction": "higher"}}}

``repro-bench-diff`` then compares the latest record of each kind
against the *median* of a trailing window of earlier records.  The
allowed change per metric is noise-aware: the larger of a flat
``--threshold`` fraction and three times the window's observed relative
spread (the second-largest deviation from the median, so one outlier
run cannot widen it), so a metric that historically wobbles 15% between
runs is not flagged over a 20% blip while a historically flat metric is.

The CI wiring is a *soft* gate: with the default ``--fail-on repeated``
a metric must regress in the two most recent records to exit nonzero —
one bad run on a noisy shared host warns, two in a row fail.  Use
``--fail-on any`` for strict local runs and ``--fail-on never`` for
report-only mode.

Histories are append-only and tolerant: torn trailing lines (a run
killed mid-append) and records from a *newer* schema are skipped, so an
old checkout can still diff a history a newer one wrote to.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

SCHEMA_VERSION = 1

#: Known record kinds (informational; unknown kinds still round-trip).
KINDS = ("analyzer-bench", "vm-bench", "serve-load")

LOWER = "lower"
HIGHER = "higher"


def git_sha() -> str | None:
    """The current commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_fingerprint() -> dict:
    """Enough host identity to explain a cross-machine baseline shift."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def entry(value: float, unit: str, direction: str = LOWER) -> dict:
    """One metric entry; *direction* names which way is better."""
    if direction not in (LOWER, HIGHER):
        raise ValueError(f"direction must be {LOWER!r} or {HIGHER!r}")
    return {"value": float(value), "unit": unit, "direction": direction}


def make_record(kind: str, entries: dict[str, dict]) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "ts": time.time(),
        "git_sha": git_sha(),
        "host": host_fingerprint(),
        "entries": entries,
    }


def append_record(path: str | Path, record: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(record, sort_keys=True) + "\n")


def append(path: str | Path, kind: str, entries: dict[str, dict]) -> dict:
    """Build and append one record; returns it (bench CLI convenience)."""
    record = make_record(kind, entries)
    append_record(path, record)
    return record


def load_history(path: str | Path) -> list[dict]:
    """All intact, same-or-older-schema records, in file order."""
    path = Path(path)
    if not path.is_file():
        return []
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:  # torn append; skip
                continue
            if not isinstance(record, dict):
                continue
            if record.get("schema", 0) > SCHEMA_VERSION:
                continue
            if not isinstance(record.get("entries"), dict):
                continue
            records.append(record)
    return records


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare_latest(
    records: list[dict],
    *,
    window: int = 5,
    threshold: float = 0.25,
    at: int = -1,
) -> dict | None:
    """Compare the record at index *at* against its trailing baseline.

    Returns ``None`` when there is no earlier record to compare against.
    Each metric row carries the latest value, the baseline (median over
    up to *window* prior records that have the metric), the signed
    fractional change toward-worse, the noise-aware allowed fraction,
    and whether it regressed.  Metrics with no baseline are ``new``.
    """
    if at < 0:
        at += len(records)
    if at <= 0 or at >= len(records):
        return None
    latest = records[at]
    prior = records[max(0, at - window):at]
    rows = []
    for name, metric in sorted(latest.get("entries", {}).items()):
        value = float(metric.get("value", 0.0))
        direction = metric.get("direction", LOWER)
        history = [
            float(record["entries"][name]["value"])
            for record in prior
            if name in record.get("entries", {})
        ]
        if not history:
            rows.append(
                {
                    "metric": name,
                    "latest": value,
                    "baseline": None,
                    "change": None,
                    "allowed": None,
                    "direction": direction,
                    "status": "new",
                }
            )
            continue
        base = _median(history)
        # Noise estimate: the second-largest deviation from the median.
        # One outlier in the window (often the very regression we are
        # trying to catch twice in a row) must not widen the allowance,
        # but two deviating runs mean the metric genuinely wobbles.
        deviations = sorted(abs(value_i - base) for value_i in history)
        spread = deviations[-2] if len(deviations) >= 2 else 0.0
        noise = (spread / base) if base > 0 else 0.0
        allowed = max(threshold, 3.0 * noise)
        if base > 0:
            change = (value - base) / base
        else:
            change = 0.0 if value == base else float("inf")
        # Normalize so positive change always means "got worse".
        worse = change if direction == LOWER else -change
        regressed = worse > allowed
        rows.append(
            {
                "metric": name,
                "latest": value,
                "baseline": base,
                "change": worse,
                "allowed": allowed,
                "direction": direction,
                "status": "regressed" if regressed else "ok",
            }
        )
    return {
        "kind": latest.get("kind", "?"),
        "git_sha": latest.get("git_sha"),
        "baseline_runs": len(prior),
        "metrics": rows,
    }


def regressed_names(comparison: dict | None) -> set[str]:
    if comparison is None:
        return set()
    return {
        row["metric"]
        for row in comparison["metrics"]
        if row["status"] == "regressed"
    }


def evaluate(
    history: list[dict],
    *,
    kind: str | None = None,
    window: int = 5,
    threshold: float = 0.25,
) -> list[dict]:
    """Per-kind comparison documents for the latest record of each kind.

    Each document additionally carries ``repeated``: the metric names
    that regressed in *both* of the kind's two most recent records —
    the soft-gate signal.
    """
    kinds: dict[str, list[dict]] = {}
    for record in history:
        kinds.setdefault(str(record.get("kind", "?")), []).append(record)
    results = []
    for record_kind, records in sorted(kinds.items()):
        if kind is not None and record_kind != kind:
            continue
        comparison = compare_latest(
            records, window=window, threshold=threshold
        )
        if comparison is None:
            results.append(
                {
                    "kind": record_kind,
                    "git_sha": records[-1].get("git_sha"),
                    "baseline_runs": 0,
                    "metrics": [],
                    "repeated": [],
                    "note": "not enough history (need >= 2 records)",
                }
            )
            continue
        previous = compare_latest(
            records, window=window, threshold=threshold, at=-2
        )
        comparison["repeated"] = sorted(
            regressed_names(comparison) & regressed_names(previous)
        )
        results.append(comparison)
    return results


def _render(results: list[dict]) -> str:
    lines = []
    for result in results:
        sha = (result.get("git_sha") or "?")[:12]
        lines.append(
            f"{result['kind']} @ {sha} "
            f"(baseline: {result['baseline_runs']} prior run(s))"
        )
        if result.get("note"):
            lines.append(f"  {result['note']}")
            continue
        for row in result["metrics"]:
            if row["status"] == "new":
                lines.append(
                    f"  {row['metric']:<28} {row['latest']:>12.4f}  (new)"
                )
                continue
            arrow = "worse" if row["change"] > 0 else "better"
            flag = "  REGRESSED" if row["status"] == "regressed" else ""
            lines.append(
                f"  {row['metric']:<28} {row['latest']:>12.4f}  "
                f"baseline {row['baseline']:.4f}  "
                f"{abs(row['change']) * 100:5.1f}% {arrow} "
                f"(allowed {row['allowed'] * 100:.0f}%){flag}"
            )
        if result["repeated"]:
            lines.append(
                "  repeated regression: " + ", ".join(result["repeated"])
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-diff",
        description="Detect perf regressions in a benchmark history file.",
    )
    parser.add_argument(
        "history", metavar="HISTORY", help="JSONL history file"
    )
    parser.add_argument(
        "--kind", default=None, choices=KINDS,
        help="only diff records of this kind (default: every kind present)",
    )
    parser.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="trailing records forming the baseline median (default 5)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="minimum fractional change counted as a regression "
        "(default 0.25; widened automatically for noisy metrics)",
    )
    parser.add_argument(
        "--fail-on", default="repeated",
        choices=("repeated", "any", "never"),
        help="exit 1 on: a metric regressed in the last two runs "
        "(repeated, the CI soft gate), any regression in the latest "
        "run (any), or never (report only)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the comparison as JSON",
    )
    args = parser.parse_args(argv)
    if args.window < 1:
        parser.error("--window must be positive")
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    history = load_history(args.history)
    if not history:
        print(
            f"repro-bench-diff: {args.history} holds no records",
            file=sys.stderr,
        )
        return 0 if args.fail_on == "never" else 2
    results = evaluate(
        history,
        kind=args.kind,
        window=args.window,
        threshold=args.threshold,
    )
    if not results:
        print(
            f"repro-bench-diff: no {args.kind!r} records in {args.history}",
            file=sys.stderr,
        )
        return 2

    if args.json:
        print(json.dumps({"results": results}, sort_keys=True, indent=1))
    else:
        print(_render(results))

    regressed = sorted(
        {name for result in results for name in regressed_names(result)}
    )
    repeated = sorted(
        {name for result in results for name in result.get("repeated", [])}
    )
    if regressed and not args.json:
        print(
            f"regressed vs baseline: {', '.join(regressed)}",
            file=sys.stderr,
        )
    if args.fail_on == "any" and regressed:
        return 1
    if args.fail_on == "repeated" and repeated:
        print(
            "FAIL: repeated regression (two runs in a row): "
            + ", ".join(repeated),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
