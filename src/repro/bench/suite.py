"""Benchmark suite registry (the paper's Table 1)."""

from __future__ import annotations

from repro.bench.programs import ALL_SPECS
from repro.bench.spec import BenchmarkSpec

#: Name -> spec, in Table 1 order.
SUITE: dict[str, BenchmarkSpec] = {spec.name: spec for spec in ALL_SPECS}

#: The paper's seven non-numeric (C) benchmarks.
NON_NUMERIC: tuple[str, ...] = tuple(
    spec.name for spec in ALL_SPECS if not spec.numeric
)

#: The paper's three FORTRAN benchmarks.
NUMERIC: tuple[str, ...] = tuple(spec.name for spec in ALL_SPECS if spec.numeric)


def get(name: str) -> BenchmarkSpec:
    """Look up a benchmark by its Table 1 name."""
    try:
        return SUITE[name]
    except KeyError:
        known = ", ".join(SUITE)
        raise KeyError(f"unknown benchmark {name!r} (known: {known})") from None
