"""``repro-serve-load``: concurrency + correctness harness for repro-serve.

Boots an in-process service (:class:`~repro.serve.server.ServerThread`),
fires N concurrent clients — each its own tenant — at the same small
benchmark set, and checks the three properties the service promises:

* **Correctness** — every response body is byte-identical to what the
  batch farm (:func:`repro.jobs.run_requests`) produces for the same
  request in a *separate* cache.
* **Coalescing/dedup economy** — with N clients all asking for the same
  B benchmarks, the farm executes exactly one graph's worth of jobs:
  ``4 × B`` (compile, trace, profile, analyze each run once; every other
  request is coalesced or a cache hit).
* **Latency visibility** — per-request spans feed the same
  p50/p95/p99 aggregation ``repro-stats --percentiles`` uses, and the
  harness prints that table.

Exit status 1 on any mismatch, so CI can run this directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro import telemetry
from repro.jobs import ArtifactCache, FarmReport, Planner, run_requests
from repro.jobs.requests import AnalysisRequest
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.telemetry.sinks import load_spans, merge_worker_sinks
from repro.telemetry.stats_cli import (
    aggregate_percentiles,
    render_percentile_table,
)

#: Farm jobs one cold benchmark costs: compile, trace, profile, analyze.
JOBS_PER_BENCHMARK = 4

DEFAULT_BENCHMARKS = "eqntott,espresso"


def expected_bytes(
    benchmarks: list[str], max_steps: int, cache_dir: Path
) -> dict[str, bytes]:
    """Batch-CLI ground truth: result bytes per benchmark, fresh cache."""
    cache = ArtifactCache(cache_dir)
    requests = [AnalysisRequest(name, max_steps=max_steps) for name in benchmarks]
    run_requests(cache, requests, max_steps=max_steps)
    planner = Planner(cache, FarmReport())
    expected = {}
    for request in requests:
        request_keys = planner.request_keys(request, None, max_steps)
        expected[request.benchmark] = cache.result_path(
            request_keys.result
        ).read_bytes()
    return expected


def _client_worker(
    base_url: str,
    tenant: str,
    benchmarks: list[str],
    max_steps: int,
    barrier: threading.Barrier,
    out: dict,
) -> None:
    client = ServeClient(base_url, token=tenant)
    results: dict[str, bytes | None] = {}
    errors: list[str] = []
    barrier.wait()
    for name in benchmarks:
        try:
            doc, payload = client.submit_and_wait(
                {"benchmark": name, "max_steps": max_steps}
            )
            if payload is None:
                errors.append(f"{name}: job failed: {doc.get('error')}")
            results[name] = payload
        except Exception as exc:
            errors.append(f"{name}: {exc}")
            results[name] = None
    out[tenant] = {"results": results, "errors": errors}


def run_load(
    clients: int,
    benchmarks: list[str],
    max_steps: int,
    *,
    jobs: int = 1,
    batch_limit: int = 8,
    queue_limit: int = 256,
    work_dir: Path | None = None,
) -> dict:
    """One full load run; returns the harness report document."""
    work_dir = Path(tempfile.mkdtemp(prefix="serve-load-")) if work_dir is None else work_dir
    serve_cache = work_dir / "serve-cache"
    batch_cache = work_dir / "batch-cache"
    telemetry_dir = work_dir / "telemetry"

    print(f"computing batch ground truth in {batch_cache} ...", flush=True)
    truth = expected_bytes(benchmarks, max_steps, batch_cache)

    telemetry.configure(telemetry_dir)
    config = ServeConfig(
        cache_dir=str(serve_cache),
        queue_limit=queue_limit,
        batch_limit=batch_limit,
        jobs=jobs,
        telemetry_dir=str(telemetry_dir),
    )
    outcomes: dict[str, dict] = {}
    barrier = threading.Barrier(clients)
    started = time.perf_counter()
    with ServerThread(config) as server:
        ServeClient(server.base_url).wait_ready()
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    server.base_url,
                    f"tenant-{i:02d}",
                    benchmarks,
                    max_steps,
                    barrier,
                    outcomes,
                ),
            )
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        health = ServeClient(server.base_url).healthz()
    wall = time.perf_counter() - started
    telemetry.flush()

    mismatches: list[str] = []
    for tenant, outcome in sorted(outcomes.items()):
        mismatches.extend(f"{tenant}/{error}" for error in outcome["errors"])
        for name, payload in outcome["results"].items():
            if payload is not None and payload != truth[name]:
                mismatches.append(
                    f"{tenant}/{name}: bytes differ from batch output"
                )

    executed = health["farm"]["executed"]
    expected_executed = JOBS_PER_BENCHMARK * len(benchmarks)
    if executed != expected_executed:
        mismatches.append(
            f"farm executed {executed} jobs; expected exactly "
            f"{expected_executed} (one cold graph for {len(benchmarks)} "
            f"benchmark(s))"
        )

    merge_worker_sinks(telemetry_dir)
    spans = [
        record
        for record in load_spans(telemetry_dir)
        if record.get("name") == "serve.request"
    ]
    rows = aggregate_percentiles(spans)

    return {
        "clients": clients,
        "benchmarks": benchmarks,
        "responses": sum(len(o["results"]) for o in outcomes.values()),
        "executed": executed,
        "expected_executed": expected_executed,
        "cache_hits": health["farm"]["cache_hits"],
        "batches": health["farm"]["batches"],
        "wall_seconds": wall,
        "mismatches": mismatches,
        "percentiles": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-load",
        description="Hammer an in-process repro-serve with concurrent "
        "tenants and verify byte-identical, fully coalesced results.",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help="comma-separated suite benchmark names")
    parser.add_argument("--max-steps", type=int, default=3000)
    parser.add_argument("--jobs", type=int, default=1,
                        help="farm worker processes inside the service")
    parser.add_argument("--batch-limit", type=int, default=8)
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="append this run to a JSONL benchmark history "
                        "(see repro-bench-diff)")
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error("--clients must be positive")
    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    if not benchmarks:
        parser.error("--benchmarks is empty")

    report = run_load(
        args.clients,
        benchmarks,
        args.max_steps,
        jobs=args.jobs,
        batch_limit=args.batch_limit,
    )

    if args.history:
        from repro.bench import history as bench_history

        entries = {
            "serve.wall_s": bench_history.entry(
                report["wall_seconds"], "s", bench_history.LOWER
            ),
        }
        for row in report["percentiles"]:
            if row["span"] != "serve.request":
                continue
            for q in (50, 95):
                entries[f"serve.request.p{q}_s"] = bench_history.entry(
                    row[f"p{q}_s"], "s", bench_history.LOWER
                )
        bench_history.append(args.history, "serve-load", entries)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"{report['clients']} clients x {len(benchmarks)} benchmarks: "
            f"{report['responses']} responses in "
            f"{report['wall_seconds']:.2f}s; farm executed "
            f"{report['executed']} job(s) (expected "
            f"{report['expected_executed']}), {report['cache_hits']} cache "
            f"hit(s), {report['batches']} batch(es)"
        )
        if report["percentiles"]:
            print()
            print(render_percentile_table(report["percentiles"]))
    if report["mismatches"]:
        print()
        for mismatch in report["mismatches"]:
            print(f"MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    print("all responses byte-identical to batch output; coalescing held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
