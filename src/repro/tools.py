"""``repro-cc`` — a file-oriented driver for the whole toolchain.

Subcommands::

    repro-cc build   prog.c  [-o prog.s] [--if-convert]   # MiniC -> assembly
    repro-cc run     prog.c|prog.s [--max-steps N]        # execute, print output
    repro-cc disasm  prog.c|prog.s                        # disassemble
    repro-cc analyze prog.c|prog.s [--max-steps N]        # parallelism limits
    repro-cc cfg     prog.c|prog.s [--function f]         # dump CFG + CD info

Files ending in ``.s``/``.asm`` are treated as assembly; everything else is
compiled as MiniC.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import analyze_program as static_analysis
from repro.analysis import build_cfgs, compute_control_dependence, find_loops
from repro.analysis import verify_program
from repro.asm import assemble, disassemble
from repro.core import ALL_MODELS, LimitAnalyzer
from repro.diagnostics import has_errors, render_all
from repro.isa import Program
from repro.lang import compile_source, compile_to_assembly, lint_minic
from repro.vm import VM


def _load(path: str, if_convert: bool = False, verify: bool = False) -> Program:
    text = Path(path).read_text()
    name = Path(path).stem
    if path.endswith((".s", ".asm")):
        program = assemble(text, name=name)
    else:
        if verify:
            _gate(lint_minic(text, name=path))
        program = compile_source(text, name=name, if_convert=if_convert)
    if verify:
        _gate(verify_program(program, name=path))
    return program


def _gate(diagnostics) -> None:
    """Print diagnostics; exit 1 when any is an error (--verify mode)."""
    if diagnostics:
        print(render_all(diagnostics), file=sys.stderr)
    if has_errors(diagnostics):
        raise SystemExit(1)


def _cmd_build(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    if args.verify:
        _gate(lint_minic(source, name=args.file))
    assembly = compile_to_assembly(source, if_convert=args.if_convert)
    if args.verify:
        _gate(verify_program(assemble(assembly, name=Path(args.file).stem),
                             name=args.file))
    if args.output:
        Path(args.output).write_text(assembly)
        print(f"wrote {args.output}")
    else:
        print(assembly, end="")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file, if_convert=args.if_convert, verify=args.verify)
    result = VM(program).run(max_steps=args.max_steps)
    for item in result.output:
        if isinstance(item, str):
            print(item, end="")
        else:
            print(item)
    status = "halted" if result.halted else "step budget exhausted"
    print(f"[{status}: {result.steps} instructions, exit value {result.exit_value}]")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    print(disassemble(_load(args.file)), end="")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    program = _load(args.file, if_convert=args.if_convert, verify=args.verify)
    run = VM(program).run(max_steps=args.max_steps)
    analyzer = LimitAnalyzer(program)
    if args.verify:
        from repro.vm import sanitize_trace

        _gate(sanitize_trace(run.trace, analysis=analyzer.analysis,
                             name=args.file))
    result = analyzer.analyze(run.trace)
    print(f"{len(program)} static instructions, {run.steps} traced "
          f"({result.counted_instructions} counted after perfect inlining/unrolling)")
    print(f"{'machine':>10s} {'parallelism':>12s} {'cycles':>9s}")
    for model in ALL_MODELS:
        model_result = result[model]
        print(
            f"{model.label:>10s} {model_result.parallelism:12.2f} "
            f"{model_result.parallel_time:9d}"
        )
    return 0


def _cmd_cfg(args: argparse.Namespace) -> int:
    program = _load(args.file)
    analysis = static_analysis(program)
    for cfg in build_cfgs(program):
        if args.function and cfg.function.name != args.function:
            continue
        print(f"function {cfg.function.name} "
              f"[{cfg.function.start}, {cfg.function.end})")
        cd = compute_control_dependence(program, cfg)
        loops = find_loops(cfg)
        loop_headers = {loop.header for loop in loops}
        for block in cfg.blocks:
            succs = ", ".join(
                "exit" if s == -1 else f"B{s}" for s in block.succs
            )
            marks = " (loop header)" if block.id in loop_headers else ""
            deps = cd.block_deps[block.id]
            dep_text = f" CD={list(deps)}" if deps else ""
            print(f"  B{block.id}: pc {block.start}..{block.end - 1} "
                  f"-> {succs}{marks}{dep_text}")
        overhead = [
            pc for pc in range(cfg.function.start, cfg.function.end)
            if pc in analysis.loop_overhead
        ]
        if overhead:
            print(f"  unroll-overhead pcs: {overhead}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cc", description="MiniC / assembly toolchain driver"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="compile MiniC to assembly")
    build.add_argument("file")
    build.add_argument("-o", "--output")
    build.add_argument("--if-convert", action="store_true")
    build.add_argument("--verify", action="store_true",
                       help="lint the source and verify the object code")
    build.set_defaults(func=_cmd_build)

    run = subparsers.add_parser("run", help="execute a program")
    run.add_argument("file")
    run.add_argument("--max-steps", type=int, default=10_000_000)
    run.add_argument("--if-convert", action="store_true")
    run.add_argument("--verify", action="store_true",
                     help="lint the source and verify the object code")
    run.set_defaults(func=_cmd_run)

    disasm = subparsers.add_parser("disasm", help="disassemble a program")
    disasm.add_argument("file")
    disasm.set_defaults(func=_cmd_disasm)

    analyze = subparsers.add_parser("analyze", help="parallelism limit analysis")
    analyze.add_argument("file")
    analyze.add_argument("--max-steps", type=int, default=1_000_000)
    analyze.add_argument("--if-convert", action="store_true")
    analyze.add_argument("--verify", action="store_true",
                         help="lint, verify object code, and sanitize the trace")
    analyze.set_defaults(func=_cmd_analyze)

    cfg = subparsers.add_parser("cfg", help="dump CFG / control dependence")
    cfg.add_argument("file")
    cfg.add_argument("--function")
    cfg.set_defaults(func=_cmd_cfg)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
