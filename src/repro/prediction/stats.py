"""Branch statistics (the paper's Table 2).

For each benchmark the paper reports the conditional-branch prediction rate
and the average number of dynamic instructions between conditional branches.
Both are trace properties, computed here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prediction.base import BranchPredictor
from repro.vm.trace import NOT_BRANCH


@dataclass(frozen=True)
class BranchStats:
    """Dynamic branch behaviour of one trace under one predictor."""

    dynamic_instructions: int
    conditional_branches: int
    mispredictions: int

    @property
    def prediction_rate(self) -> float:
        """Percent of conditional branches predicted correctly."""
        if self.conditional_branches == 0:
            return 100.0
        correct = self.conditional_branches - self.mispredictions
        return 100.0 * correct / self.conditional_branches

    @property
    def instructions_between_branches(self) -> float:
        """Average dynamic instructions per conditional branch."""
        if self.conditional_branches == 0:
            return float(self.dynamic_instructions)
        return self.dynamic_instructions / self.conditional_branches


def branch_stats(trace, predictor: BranchPredictor) -> BranchStats:
    """Compute Table 2's statistics for *trace* under *predictor*.

    *trace* is a :class:`Trace` or a streaming
    :class:`~repro.vm.trace_io.TraceReader`; the walk is chunk-wise
    either way.  The predictor is reset and trained in trace order
    (relevant only for dynamic predictors).
    """
    from repro.vm.trace_io import iter_trace_chunks

    predictor.reset()
    lookup = predictor.lookup
    update = predictor.update
    records = 0
    branches = 0
    mispredictions = 0
    for pcs, _addrs, takens in iter_trace_chunks(trace):
        records += len(pcs)
        for pc, taken in zip(pcs, takens):
            if taken == NOT_BRANCH:
                continue
            outcome = taken == 1
            branches += 1
            if lookup(pc) != outcome:
                mispredictions += 1
            update(pc, outcome)
    return BranchStats(
        dynamic_instructions=records,
        conditional_branches=branches,
        mispredictions=mispredictions,
    )
