"""Simple static predictors used as ablation baselines."""

from __future__ import annotations

from repro.isa import Program
from repro.prediction.base import BranchPredictor


class AlwaysTaken(BranchPredictor):
    """Predict every conditional branch taken."""

    name = "always-taken"

    def lookup(self, pc: int) -> bool:
        return True


class AlwaysNotTaken(BranchPredictor):
    """Predict every conditional branch not taken."""

    name = "always-not-taken"

    def lookup(self, pc: int) -> bool:
        return False


class BackwardTaken(BranchPredictor):
    """BTFNT: predict backward branches (loops) taken, forward not taken."""

    name = "btfnt"

    def __init__(self, program: Program):
        self._backward = {
            pc: instr.target is not None and instr.target <= pc
            for pc, instr in enumerate(program.instructions)
            if instr.is_cond_branch
        }

    def lookup(self, pc: int) -> bool:
        return self._backward.get(pc, False)


class PerfectPredictor(BranchPredictor):
    """Oracle direction prediction: never wrong.

    Useful in ablations: the SP machines collapse toward the paper's ORACLE
    machine when fed this predictor, since mispredictions are the only thing
    separating them.  The predictor replays the actual outcome stream:
    :meth:`prime` it with the trace's conditional-branch outcomes (in order)
    before use, and every :meth:`lookup` returns the outcome the matching
    :meth:`update` will observe.
    """

    name = "perfect"

    def __init__(self):
        self._outcomes: list[bool] = []
        self._next = 0

    def prime(self, outcomes: list[bool]) -> None:
        """Provide the exact conditional-branch outcome sequence."""
        self._outcomes = list(outcomes)
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def lookup(self, pc: int) -> bool:
        if self._next < len(self._outcomes):
            return self._outcomes[self._next]
        return True

    def update(self, pc: int, taken: bool) -> None:
        self._next += 1
