"""Dynamic branch predictors (ablation extensions beyond the paper).

The paper uses profile-based static prediction and notes that "dynamic
techniques provide similar performance".  These predictors let the ablation
benches quantify that claim on our workloads.
"""

from __future__ import annotations

from repro.prediction.base import BranchPredictor


class OneBit(BranchPredictor):
    """Last-outcome predictor: remember each branch's previous direction."""

    name = "one-bit"

    def __init__(self, default_taken: bool = True):
        self._default = default_taken
        self._last: dict[int, bool] = {}

    def reset(self) -> None:
        self._last.clear()

    def lookup(self, pc: int) -> bool:
        return self._last.get(pc, self._default)

    def update(self, pc: int, taken: bool) -> None:
        self._last[pc] = taken


class TwoBit(BranchPredictor):
    """Per-branch two-bit saturating counters (Smith predictor)."""

    name = "two-bit"

    def __init__(self, initial: int = 2):
        if not 0 <= initial <= 3:
            raise ValueError("two-bit counter initial value must be in 0..3")
        self._initial = initial
        self._counters: dict[int, int] = {}

    def reset(self) -> None:
        self._counters.clear()

    def lookup(self, pc: int) -> bool:
        return self._counters.get(pc, self._initial) >= 2

    def update(self, pc: int, taken: bool) -> None:
        counter = self._counters.get(pc, self._initial)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[pc] = counter


class GShare(BranchPredictor):
    """Global-history predictor: pc XOR history indexes 2-bit counters."""

    name = "gshare"

    def __init__(self, history_bits: int = 10):
        if not 1 <= history_bits <= 24:
            raise ValueError("history_bits must be in 1..24")
        self._bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._table = [2] * (1 << history_bits)
        self._history = 0

    def reset(self) -> None:
        self._table = [2] * (1 << self._bits)
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def lookup(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask
