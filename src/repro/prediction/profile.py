"""Profile-based static branch prediction (the paper's predictor).

§4.4.2: *"Our simulations of speculative execution use static branch
predictions based on profile information.  These statistics were collected
from running the benchmarks with the same inputs used in the simulations.
Our prediction rates are therefore an upper bound for static branch
prediction techniques."*

:class:`ProfilePredictor` predicts each static conditional branch in its
majority direction observed during a profiling run.  Training on the same
input that is later analyzed reproduces the paper's upper-bound setup.
"""

from __future__ import annotations

from repro import telemetry
from repro.prediction.base import BranchPredictor
from repro.vm.machine import RunResult
from repro.vm.trace import Trace


class ProfilePredictor(BranchPredictor):
    """Static majority-direction predictor trained from profile counts."""

    name = "profile"

    def __init__(self, directions: dict[int, bool], default_taken: bool = True):
        self._directions = dict(directions)
        self._default = default_taken

    @classmethod
    def from_counts(
        cls, counts: dict[int, list[int]], default_taken: bool = True
    ) -> "ProfilePredictor":
        """Build from ``pc -> [not_taken_count, taken_count]`` profile data
        (the shape produced by :class:`repro.vm.VM`)."""
        directions = {
            pc: taken_count >= not_taken_count
            for pc, (not_taken_count, taken_count) in counts.items()
        }
        return cls(directions, default_taken=default_taken)

    @classmethod
    def from_run(cls, result: RunResult, default_taken: bool = True) -> "ProfilePredictor":
        """Build from a VM run's branch profile."""
        return cls.from_counts(result.branch_profile, default_taken=default_taken)

    @classmethod
    def from_trace(cls, trace: Trace, default_taken: bool = True) -> "ProfilePredictor":
        """Build by profiling an existing trace (same-input upper bound)."""
        return cls.from_source(trace, default_taken=default_taken)

    @classmethod
    def from_source(cls, source, default_taken: bool = True) -> "ProfilePredictor":
        """Build by profiling a trace source chunk by chunk.

        *source* is a :class:`Trace` or a streaming
        :class:`~repro.vm.trace_io.TraceReader`; either way the profile
        is accumulated one chunk at a time, so a 100M-record on-disk
        trace never materializes in memory.
        """
        from repro.vm.trace_io import iter_trace_chunks, trace_source_program

        program = trace_source_program(source)
        with telemetry.span("prediction.profile", program=program.name) as sp:
            counts: dict[int, list[int]] = {}
            branches = 0
            for pcs, _addrs, takens in iter_trace_chunks(source):
                for pc, taken in zip(pcs, takens):
                    if taken < 0:  # NOT_BRANCH
                        continue
                    entry = counts.setdefault(pc, [0, 0])
                    entry[taken] += 1
                    branches += 1
            sp.set(branches=branches, static_sites=len(counts))
        if telemetry.enabled():
            telemetry.METRICS.counter("repro_profile_branches_total").inc(
                branches, program=program.name
            )
        return cls.from_counts(counts, default_taken=default_taken)

    def lookup(self, pc: int) -> bool:
        return self._directions.get(pc, self._default)

    @property
    def default_taken(self) -> bool:
        """Direction predicted for branches never seen during profiling."""
        return self._default

    def direction_map(self) -> dict[int, bool]:
        """A copy of the per-branch predicted directions."""
        return dict(self._directions)
