"""Branch prediction: the paper's profile-based static predictor plus
static and dynamic baselines used in ablation experiments."""

from repro.prediction.base import BranchPredictor, misprediction_flags
from repro.prediction.dynamic import GShare, OneBit, TwoBit
from repro.prediction.profile import ProfilePredictor
from repro.prediction.static import (
    AlwaysNotTaken,
    AlwaysTaken,
    BackwardTaken,
    PerfectPredictor,
)
from repro.prediction.stats import BranchStats, branch_stats

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BackwardTaken",
    "BranchPredictor",
    "BranchStats",
    "GShare",
    "OneBit",
    "PerfectPredictor",
    "ProfilePredictor",
    "TwoBit",
    "branch_stats",
    "misprediction_flags",
]
