"""Branch predictor interface.

The limit analyzer only needs one thing from a predictor: for every dynamic
conditional branch, in trace order, whether the prediction matched the
outcome.  Predictors therefore expose :meth:`lookup` (the prediction for a
static branch pc) and :meth:`update` (called with the actual outcome after
every dynamic branch, in trace order, so dynamic predictors can train).

Computed jumps are never predicted (paper §4.4.2); the analyzer treats them
as always mispredicted without consulting the predictor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.vm.trace import NOT_BRANCH, Trace


class BranchPredictor(ABC):
    """Interface for conditional-branch direction predictors."""

    name: str = "predictor"

    @abstractmethod
    def lookup(self, pc: int) -> bool:
        """Predicted direction (True = taken) for the branch at *pc*."""

    def update(self, pc: int, taken: bool) -> None:
        """Observe the actual outcome.  Static predictors ignore this."""

    def reset(self) -> None:
        """Forget any dynamic state (before re-walking a trace)."""


def misprediction_flags(trace: Trace, predictor: BranchPredictor) -> list[bool]:
    """Walk *trace* once and return, per trace index, whether that record is
    a *mispredicted control transfer*.

    Conditional branches are mispredicted when the predictor disagrees with
    the recorded outcome; computed jumps are always mispredicted; everything
    else is False.  The predictor is reset first and trained in trace order,
    so the flags are identical for every machine model that reuses them.
    """
    predictor.reset()
    program = trace.program
    is_computed_jump = [instr.is_computed_jump for instr in program.instructions]
    return chunk_misprediction_flags(
        trace.pcs, trace.addrs, trace.takens, predictor, is_computed_jump
    )


def chunk_misprediction_flags(
    pcs,
    addrs,
    takens,
    predictor: BranchPredictor,
    is_computed_jump: list[bool],
) -> list[bool]:
    """Misprediction flags for one chunk of an already-reset predictor.

    The streaming building block behind :func:`misprediction_flags`: the
    caller resets the predictor once, then feeds consecutive chunks in
    trace order so dynamic predictors train across chunk boundaries
    exactly as they would over the whole trace.  ``addrs`` is accepted
    (and ignored) so chunk triples can be passed through positionally.
    """
    flags = [False] * len(pcs)
    lookup = predictor.lookup
    update = predictor.update
    for i, (pc, taken) in enumerate(zip(pcs, takens)):
        if taken != NOT_BRANCH:
            outcome = taken == 1
            flags[i] = lookup(pc) != outcome
            update(pc, outcome)
        elif is_computed_jump[pc]:
            flags[i] = True
    return flags
