"""Assembler error type with source positions."""

from __future__ import annotations


class AsmError(Exception):
    """Raised on any assembly-time problem, carrying the source line.

    ``message`` is the bare description; ``line`` is the 1-based source
    line and ``text`` the offending source text, when known.
    """

    def __init__(self, message: str, line: int | None = None, text: str | None = None):
        self.message = message
        self.line = line
        self.text = text
        location = f"line {line}: " if line is not None else ""
        detail = f"\n    {text.strip()}" if text else ""
        super().__init__(f"{location}{message}{detail}")
