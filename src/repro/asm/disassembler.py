"""Disassembler: render a :class:`~repro.isa.Program` back to readable text.

The output round-trips through the assembler (labels are regenerated from
resolved targets), which the test suite uses as a consistency check.
"""

from __future__ import annotations

from repro.isa.program import Program


def disassemble(program: Program) -> str:
    """Render *program* as assembly text that re-assembles equivalently."""
    # Collect every referenced code position so each gets a label.
    targets = {
        instr.target
        for instr in program.instructions
        if instr.target is not None
    }
    names: dict[int, str] = {}
    for label, pc in program.code_labels.items():
        names.setdefault(pc, label)
    for target in sorted(targets):
        names.setdefault(target, f"L{target}")

    func_starts = {func.start: func for func in program.functions}
    func_ends = {func.end for func in program.functions}

    lines: list[str] = []
    if program.data or program.data_labels:
        lines.append(".data")
        address_names = {addr: label for label, addr in program.data_labels.items()}
        for addr in sorted(program.data):
            prefix = f"{address_names[addr]}: " if addr in address_names else ""
            value = program.data[addr]
            directive = ".float" if isinstance(value, float) else ".word"
            lines.append(f"{prefix}{directive} {value}")
        for base, targets in sorted(program.jump_tables.items()):
            if base in address_names:
                lines.append(f".jumptable {address_names[base]}, {len(targets)}")
        lines.append("")
    lines.append(".text")
    for pc, instr in enumerate(program.instructions):
        if pc in func_ends:
            lines.append(".endfunc")
        if pc in func_starts:
            lines.append(f".func {func_starts[pc].name}")
        if pc in names:
            lines.append(f"{names[pc]}:")
        rendered = instr.render()
        if instr.target is not None:
            # Re-point the symbolic operand at the regenerated label name.
            shown = instr.label if instr.label is not None else f"@{instr.target}"
            rendered = rendered.replace(shown, names[instr.target])
        lines.append(f"    {rendered}")
    if len(program.instructions) in func_ends:
        lines.append(".endfunc")
    return "\n".join(lines) + "\n"
