"""A two-pass assembler for the repro ISA.

Syntax summary (MIPS-flavoured)::

    # comment           ; also a comment
    .data
    vec:    .word 1, 2, 3
    pi:     .float 3.14159
    buf:    .space 32           # 32 zero words
    msg:    .asciiz "hi\\n"      # one word per character + NUL
    .text
    .func main                  # function symbols delimit CFG regions
    main:
        li   $t0, 10
        la   $t1, vec
        lw   $t2, 0($t1)
    loop:
        addi $t0, $t0, -1
        bgtz $t0, loop
        jr   $ra
    .endfunc

Pseudo-instructions expanded by the assembler:

=============================  =========================================
``la rd, label``               ``li rd, <address of label>``
``beqz rs, l`` / ``bnez``      ``beq/bne rs, $zero, l``
``blt/ble/bgt/bge rs, rt, l``  ``slt/sle/sgt/sge $at, rs, rt`` + ``bnez``
``neg rd, rs``                 ``sub rd, $zero, rs``
``not rd, rs``                 ``nor rd, rs, $zero``
``ret``                        ``jr $ra``
``b l``                        ``j l``
=============================  =========================================

The entry point is the ``__start`` label if present, else ``main``, else
instruction 0.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.asm.errors import AsmError
from repro.isa import registers
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONICS, Opcode, info
from repro.isa.program import GLOBALS_BASE, FunctionSymbol, Program

_MEM_RE = re.compile(r"^(?P<disp>[^()]*)\((?P<base>[^()]+)\)$")
_LABEL_REF_RE = re.compile(r"^(?P<name>[A-Za-z_.$][\w.$]*)(?P<off>[+-]\d+)?$")


@dataclass
class _PendingInstr:
    """An instruction awaiting label resolution."""

    opcode: Opcode
    rd: int | None = None
    rs: int | None = None
    rt: int | None = None
    imm: int | float | None = None
    label: str | None = None  # code-label operand
    imm_label: str | None = None  # label used as an address immediate (la)
    imm_offset: int = 0
    line: int = 0
    text: str = ""


@dataclass
class _State:
    code: list[_PendingInstr] = field(default_factory=list)
    code_labels: dict[str, int] = field(default_factory=dict)
    functions: list[FunctionSymbol] = field(default_factory=list)
    data: dict[int, int | float] = field(default_factory=dict)
    data_labels: dict[str, int] = field(default_factory=dict)
    # Deferred `.word label` references (jump tables name code labels that
    # are defined later): (data address, label, offset, line, text).
    data_fixups: list[tuple[int, str, int, int, str]] = field(default_factory=list)
    # `.jumptable label, count` declarations: (label, count, line, text).
    jump_table_decls: list[tuple[str, int, int, str]] = field(default_factory=list)
    data_cursor: int = GLOBALS_BASE
    in_data: bool = False
    open_func: tuple[str, int, int] | None = None  # (name, start index, lineno)


def assemble(source: str, name: str = "a.out") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    state = _State()
    for lineno, raw in enumerate(source.splitlines(), start=1):
        _assemble_line(state, raw, lineno)
    if state.open_func is not None:
        raise AsmError(
            f"unterminated .func {state.open_func[0]}", state.open_func[2]
        )
    for address, label, offset, lineno, raw in state.data_fixups:
        target = state.data_labels.get(label)
        if target is None:
            target = state.code_labels.get(label)
        if target is None:
            raise AsmError(f".word references undefined label {label!r}", lineno, raw)
        state.data[address] = target + offset
    instructions = tuple(_resolve(state, pending) for pending in state.code)
    jump_tables: dict[int, tuple[int, ...]] = {}
    for label, count, lineno, raw in state.jump_table_decls:
        base = state.data_labels.get(label)
        if base is None:
            raise AsmError(f".jumptable references unknown label {label!r}", lineno, raw)
        targets = []
        for i in range(count):
            value = state.data.get(base + i)
            if not isinstance(value, int):
                raise AsmError(
                    f".jumptable {label!r} entry {i} is not an integer", lineno, raw
                )
            targets.append(value)
        jump_tables[base] = tuple(targets)
    entry = state.code_labels.get("__start", state.code_labels.get("main", 0))
    return Program(
        instructions=instructions,
        functions=tuple(state.functions),
        code_labels=dict(state.code_labels),
        data=dict(state.data),
        data_labels=dict(state.data_labels),
        data_break=state.data_cursor,
        entry=entry,
        name=name,
        jump_tables=jump_tables,
    )


# ---------------------------------------------------------------------------
# line handling


def _assemble_line(state: _State, raw: str, lineno: int) -> None:
    text = _strip_comment(raw).strip()
    while text:
        match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*", text)
        if not match:
            break
        _define_label(state, match.group(1), lineno, raw)
        text = text[match.end():]
    if not text:
        return
    if text.startswith("."):
        _directive(state, text, lineno, raw)
    else:
        if state.in_data:
            raise AsmError("instruction in .data section", lineno, raw)
        _instruction(state, text, lineno, raw)


def _strip_comment(line: str) -> str:
    out: list[str] = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        if not in_str and ch in "#;":
            break
        out.append(ch)
    return "".join(out)


def _define_label(state: _State, label: str, lineno: int, raw: str) -> None:
    table = state.data_labels if state.in_data else state.code_labels
    other = state.code_labels if state.in_data else state.data_labels
    if label in table or label in other:
        raise AsmError(f"duplicate label {label!r}", lineno, raw)
    table[label] = state.data_cursor if state.in_data else len(state.code)


def _directive(state: _State, text: str, lineno: int, raw: str) -> None:
    parts = text.split(None, 1)
    directive = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if directive == ".data":
        state.in_data = True
    elif directive == ".text":
        state.in_data = False
    elif directive == ".globl":
        pass  # accepted for MIPS compatibility; symbols are always visible
    elif directive == ".func":
        if state.open_func is not None:
            raise AsmError(
                f"nested .func (still inside {state.open_func[0]})", lineno, raw
            )
        if not rest:
            raise AsmError(".func needs a name", lineno, raw)
        state.open_func = (rest.strip(), len(state.code), lineno)
    elif directive == ".endfunc":
        if state.open_func is None:
            raise AsmError(".endfunc without .func", lineno, raw)
        func_name, start, _ = state.open_func
        if len(state.code) == start:
            raise AsmError(f"empty function {func_name}", lineno, raw)
        state.functions.append(FunctionSymbol(func_name, start, len(state.code)))
        state.open_func = None
    elif directive == ".word":
        for item in _split_operands(rest):
            state.data[state.data_cursor] = _word_value(state, item, lineno, raw)
            state.data_cursor += 1
    elif directive == ".float":
        for item in _split_operands(rest):
            state.data[state.data_cursor] = float(item)
            state.data_cursor += 1
    elif directive == ".space":
        count = _parse_int(rest, lineno, raw)
        if count < 0:
            raise AsmError(".space needs a non-negative count", lineno, raw)
        for _ in range(count):
            state.data[state.data_cursor] = 0
            state.data_cursor += 1
    elif directive == ".jumptable":
        parts = _split_operands(rest)
        if len(parts) != 2:
            raise AsmError(".jumptable needs `label, count`", lineno, raw)
        count = _parse_int(parts[1], lineno, raw)
        if count <= 0:
            raise AsmError(".jumptable count must be positive", lineno, raw)
        state.jump_table_decls.append((parts[0].strip(), count, lineno, raw))
    elif directive == ".asciiz":
        for ch in _parse_string(rest, lineno, raw):
            state.data[state.data_cursor] = ord(ch)
            state.data_cursor += 1
        state.data[state.data_cursor] = 0
        state.data_cursor += 1
    else:
        raise AsmError(f"unknown directive {directive}", lineno, raw)


def _word_value(state: _State, item: str, lineno: int, raw: str):
    try:
        return _parse_int(item, lineno, raw)
    except AsmError:
        pass
    match = _LABEL_REF_RE.match(item)
    if match:
        name = match.group("name")
        offset = int(match.group("off") or 0)
        if name in state.data_labels:
            return state.data_labels[name] + offset
        # Forward reference (e.g. a jump-table entry naming a code label):
        # emit a placeholder and fix it up after both symbol tables exist.
        state.data_fixups.append((state.data_cursor, name, offset, lineno, raw))
        return 0
    raise AsmError(f"bad .word value {item!r}", lineno, raw)


# ---------------------------------------------------------------------------
# instructions


def _instruction(state: _State, text: str, lineno: int, raw: str) -> None:
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    operands = _split_operands(parts[1]) if len(parts) > 1 else []
    for pending in _expand(mnemonic, operands, lineno, raw):
        state.code.append(pending)


def _expand(
    mnemonic: str, ops: list[str], lineno: int, raw: str
) -> list[_PendingInstr]:
    """Expand pseudo-instructions and parse real ones."""
    if mnemonic == "la":
        _expect(len(ops) == 2, "la needs 2 operands", lineno, raw)
        rd = _reg(ops[0], lineno, raw)
        match = _LABEL_REF_RE.match(ops[1])
        _expect(match is not None, f"bad address operand {ops[1]!r}", lineno, raw)
        assert match is not None
        return [
            _PendingInstr(
                Opcode.LI,
                rd=rd,
                imm_label=match.group("name"),
                imm_offset=int(match.group("off") or 0),
                line=lineno,
                text=raw,
            )
        ]
    if mnemonic in ("beqz", "bnez"):
        _expect(len(ops) == 2, f"{mnemonic} needs 2 operands", lineno, raw)
        opcode = Opcode.BEQ if mnemonic == "beqz" else Opcode.BNE
        return [
            _PendingInstr(
                opcode,
                rs=_reg(ops[0], lineno, raw),
                rt=registers.ZERO,
                label=ops[1],
                line=lineno,
                text=raw,
            )
        ]
    if mnemonic in ("blt", "ble", "bgt", "bge"):
        _expect(len(ops) == 3, f"{mnemonic} needs 3 operands", lineno, raw)
        compare = {
            "blt": Opcode.SLT, "ble": Opcode.SLE,
            "bgt": Opcode.SGT, "bge": Opcode.SGE,
        }[mnemonic]
        return [
            _PendingInstr(
                compare,
                rd=registers.AT,
                rs=_reg(ops[0], lineno, raw),
                rt=_reg(ops[1], lineno, raw),
                line=lineno,
                text=raw,
            ),
            _PendingInstr(
                Opcode.BNE,
                rs=registers.AT,
                rt=registers.ZERO,
                label=ops[2],
                line=lineno,
                text=raw,
            ),
        ]
    if mnemonic == "neg":
        _expect(len(ops) == 2, "neg needs 2 operands", lineno, raw)
        return [
            _PendingInstr(
                Opcode.SUB,
                rd=_reg(ops[0], lineno, raw),
                rs=registers.ZERO,
                rt=_reg(ops[1], lineno, raw),
                line=lineno,
                text=raw,
            )
        ]
    if mnemonic == "not":
        _expect(len(ops) == 2, "not needs 2 operands", lineno, raw)
        return [
            _PendingInstr(
                Opcode.NOR,
                rd=_reg(ops[0], lineno, raw),
                rs=_reg(ops[1], lineno, raw),
                rt=registers.ZERO,
                line=lineno,
                text=raw,
            )
        ]
    if mnemonic == "ret":
        _expect(not ops, "ret takes no operands", lineno, raw)
        return [_PendingInstr(Opcode.JR, rs=registers.RA, line=lineno, text=raw)]
    if mnemonic == "b":
        _expect(len(ops) == 1, "b needs 1 operand", lineno, raw)
        return [_PendingInstr(Opcode.J, label=ops[0], line=lineno, text=raw)]
    # -- a real opcode ----------------------------------------------------
    opcode = MNEMONICS.get(mnemonic)
    if opcode is None:
        raise AsmError(f"unknown mnemonic {mnemonic!r}", lineno, raw)
    return [_parse_real(opcode, ops, lineno, raw)]


def _parse_real(
    opcode: Opcode, ops: list[str], lineno: int, raw: str
) -> _PendingInstr:
    spec = info(opcode)
    _expect(
        len(ops) == len(spec.operands),
        f"{opcode.value} needs {len(spec.operands)} operands, got {len(ops)}",
        lineno,
        raw,
    )
    pending = _PendingInstr(opcode, line=lineno, text=raw)
    for code, text in zip(spec.operands, ops):
        if code in ("rd", "fd", "rd!", "fd!"):
            pending.rd = _reg(text, lineno, raw, fp=code.startswith("fd"))
        elif code in ("rs", "fs"):
            pending.rs = _reg(text, lineno, raw, fp=code == "fs")
        elif code in ("rt", "ft"):
            pending.rt = _reg(text, lineno, raw, fp=code == "ft")
        elif code == "imm":
            pending.imm = _parse_int(text, lineno, raw)
        elif code == "fimm":
            try:
                pending.imm = float(text)
            except ValueError:
                raise AsmError(f"bad float immediate {text!r}", lineno, raw) from None
        elif code == "mem":
            base, disp, disp_label, disp_offset = _parse_mem(text, lineno, raw)
            pending.rs = base
            if disp_label is not None:
                pending.imm_label = disp_label
                pending.imm_offset = disp_offset
            else:
                pending.imm = disp
        elif code == "label":
            pending.label = text
    return pending


def _resolve(state: _State, pending: _PendingInstr) -> Instruction:
    imm = pending.imm
    if pending.imm_label is not None:
        address = state.data_labels.get(pending.imm_label)
        if address is None:
            address = state.code_labels.get(pending.imm_label)
        if address is None:
            raise AsmError(
                f"undefined label {pending.imm_label!r}", pending.line, pending.text
            )
        imm = address + pending.imm_offset
    target = None
    if pending.label is not None:
        target = state.code_labels.get(pending.label)
        if target is None:
            raise AsmError(
                f"undefined code label {pending.label!r}", pending.line, pending.text
            )
        if target >= len(state.code):
            raise AsmError(
                f"label {pending.label!r} points past the end of code",
                pending.line,
                pending.text,
            )
    try:
        return Instruction(
            opcode=pending.opcode,
            rd=pending.rd,
            rs=pending.rs,
            rt=pending.rt,
            imm=imm,
            target=target,
            label=pending.label,
        )
    except ValueError as exc:
        raise AsmError(str(exc), pending.line, pending.text) from None


# ---------------------------------------------------------------------------
# lexical helpers


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas, respecting parentheses and quotes."""
    items: list[str] = []
    depth = 0
    in_str = False
    current: list[str] = []
    for ch in text:
        if ch == '"':
            in_str = not in_str
        if ch == "(" and not in_str:
            depth += 1
        elif ch == ")" and not in_str:
            depth -= 1
        if ch == "," and depth == 0 and not in_str:
            items.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return items


def _expect(cond: bool, message: str, lineno: int, raw: str) -> None:
    if not cond:
        raise AsmError(message, lineno, raw)


def _reg(text: str, lineno: int, raw: str, fp: bool | None = None) -> int:
    try:
        reg = registers.parse_reg(text)
    except ValueError as exc:
        raise AsmError(str(exc), lineno, raw) from None
    if fp is True and not registers.is_fp_reg(reg):
        raise AsmError(f"expected FP register, got {text!r}", lineno, raw)
    if fp is False and registers.is_fp_reg(reg):
        raise AsmError(f"expected integer register, got {text!r}", lineno, raw)
    return reg


def _parse_mem(
    text: str, lineno: int, raw: str
) -> tuple[int, int | None, str | None, int]:
    """Parse a ``disp(base)`` memory operand.

    The displacement may be an integer, a data label, or ``label+offset``
    (resolved to the label's address), enabling single-instruction absolute
    global accesses like ``lw $t0, g_total($zero)``.

    Returns ``(base_register, disp, disp_label, disp_label_offset)`` where
    exactly one of ``disp`` / ``disp_label`` is meaningful.
    """
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AsmError(f"bad memory operand {text!r}", lineno, raw)
    base = _reg(match.group("base"), lineno, raw, fp=False)
    disp_text = match.group("disp").strip()
    if not disp_text:
        return base, 0, None, 0
    try:
        return base, _parse_int(disp_text, lineno, raw), None, 0
    except AsmError:
        label_match = _LABEL_REF_RE.match(disp_text)
        if label_match:
            return (
                base,
                None,
                label_match.group("name"),
                int(label_match.group("off") or 0),
            )
        raise


def _parse_int(text: str, lineno: int, raw: str) -> int:
    text = text.strip()
    if len(text) >= 3 and text.startswith("'") and text.endswith("'"):
        body = text[1:-1].encode().decode("unicode_escape")
        if len(body) != 1:
            raise AsmError(f"bad character literal {text!r}", lineno, raw)
        return ord(body)
    try:
        return int(text, 0)
    except ValueError:
        raise AsmError(f"bad integer {text!r}", lineno, raw) from None


def _parse_string(text: str, lineno: int, raw: str) -> str:
    text = text.strip()
    if len(text) < 2 or not (text.startswith('"') and text.endswith('"')):
        raise AsmError(f"bad string literal {text!r}", lineno, raw)
    return text[1:-1].encode().decode("unicode_escape")
