"""Assembler and disassembler for the repro ISA."""

from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble
from repro.asm.errors import AsmError

__all__ = ["AsmError", "assemble", "disassemble"]
