"""repro — a reproduction of Lam & Wilson, *Limits of Control Flow on
Parallelism* (ISCA 1992).

The package is a complete, self-contained ILP limit-study toolkit:

* :mod:`repro.isa` — a MIPS-like RISC instruction set.
* :mod:`repro.asm` — a two-pass assembler and a disassembler.
* :mod:`repro.lang` — MiniC, a small C-like compiler targeting the ISA.
* :mod:`repro.vm` — a tracing interpreter (the study's ``pixie`` equivalent).
* :mod:`repro.analysis` — CFGs, dominance, control dependence, loop and
  induction-variable analysis on object code.
* :mod:`repro.prediction` — profile-based static branch prediction plus
  several dynamic predictors used in ablations.
* :mod:`repro.core` — the paper's contribution: the seven abstract machine
  models and the trace-driven parallelism limit analyzer.
* :mod:`repro.bench` — ten benchmark programs mirroring the paper's Table 1.
* :mod:`repro.experiments` — one module per table and figure of the paper.

Quickstart::

    from repro import compile_and_analyze
    from repro.core import MachineModel

    results = compile_and_analyze('''
        int data[64];
        int main() {
            int i; int total;
            total = 0;
            for (i = 0; i < 64; i = i + 1) data[i] = i * 3;
            for (i = 0; i < 64; i = i + 1) total = total + data[i];
            return total;
        }
    ''')
    print(results.parallelism[MachineModel.ORACLE])
"""

from repro._version import __version__

__all__ = [
    "Diagnostic",
    "DiagnosticError",
    "Severity",
    "__version__",
    "analyze_program",
    "analyze_source",
    "compile_and_analyze",
    "compile_minic",
    "lint_minic",
    "lint_program",
    "sanitize_trace",
    "trace_program",
]

_API_NAMES = frozenset(
    {
        "analyze_program",
        "analyze_source",
        "compile_and_analyze",
        "compile_minic",
        "trace_program",
    }
)

_DIAGNOSTIC_NAMES = frozenset(
    {
        "Diagnostic",
        "DiagnosticError",
        "Severity",
        "lint_minic",
        "lint_program",
        "sanitize_trace",
    }
)


def __getattr__(name: str):
    # The convenience API pulls in every subpackage; import it lazily so the
    # leaf packages (isa, asm, vm, ...) stay importable in isolation.
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    if name in _DIAGNOSTIC_NAMES:
        from repro import diagnostics

        return getattr(diagnostics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
