"""Unified diagnostics engine: the types every verification pass feeds.

The limit study's numbers are only as trustworthy as the static analyses
they rest on, so three pass families cross-check the stack end to end and
report through one :class:`Diagnostic` type with stable codes:

* ``MC1xx`` — MiniC lint on the checked AST (:mod:`repro.lang.lint`):
  maybe-uninitialized reads, unused variables/parameters, unreachable
  statements, constant conditions;
* ``OBJ2xx`` — object-code verification on assembled programs
  (:mod:`repro.analysis.verify`): CFG well-formedness, cross-function
  transfers, fallthrough off a function end, unreachable blocks,
  jump-table containment, read-before-write registers;
* ``TR3xx`` — dynamic-trace sanitization against the static analysis
  (:mod:`repro.vm.sanitize`): every dynamic edge must exist in the CFG,
  every control-dependence instance must name a reverse-dominance-frontier
  branch, and perfect-unrolling removals must match ``loop_overhead_pcs``.

``MC100`` and ``OBJ200`` wrap :class:`~repro.lang.errors.CompileError` and
:class:`~repro.asm.errors.AsmError` so drivers can render toolchain
failures uniformly instead of printing tracebacks.

The convenience entry points (:func:`lint_minic`, :func:`lint_program`,
:func:`sanitize_trace`) import their pass modules lazily so this module —
and the :class:`Diagnostic` type the passes depend on — stays a leaf.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable (``ERROR`` is the most severe)."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


#: Every stable diagnostic code with a one-line description.  The docs page
#: ``docs/diagnostics.md`` must document each of these (tested).
CODES: dict[str, str] = {
    "MC100": "MiniC source failed to compile (wraps CompileError)",
    "MC101": "variable may be used before it is initialized",
    "MC102": "local variable is declared but never used",
    "MC103": "parameter is never used",
    "MC104": "statement is unreachable",
    "MC105": "if-condition is a compile-time constant",
    "OBJ200": "assembly source failed to assemble (wraps AsmError)",
    "OBJ201": "control transfer targets a pc that is not a basic-block leader",
    "OBJ202": "branch or jump transfers control outside its function",
    "OBJ203": "control can fall through off the end of a function",
    "OBJ204": "basic block is unreachable from the function entry",
    "OBJ205": "jump-table target lies outside the dispatching function",
    "OBJ206": "register may be read before it is written",
    "OBJ207": "call target is not a function entry point",
    "TR301": "dynamic successor edge does not exist in the static CFG",
    "TR302": "control-dependence instance names a non-RDF branch pc",
    "TR303": "loop-overhead pc is not of unroll-overhead shape",
    "TR304": "branch-outcome trace field inconsistent with the opcode",
    "TR305": "memory-address trace field inconsistent with the opcode",
    "TR306": "trace record is inconsistent with the analyzed program",
    "STA401": "function is unreachable from the program entry",
    "STA402": "store is provably dead (overwritten before any possible read)",
    "STA403": "branch outcome is decided by interprocedural constant propagation",
    "STA404": "code is unreachable under interprocedural constant propagation",
    "STA410": "static branch class contradicted by the dynamic trace",
    "STA411": "statically unreachable code was executed in the trace",
    "STA412": "measured parallelism exceeds the static ILP bound",
    "STA413": "provably-dead store was observed live in the trace",
    "STA414": "static memory class contradicted by a traced address",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a verification pass.

    ``source`` names what was verified (a file, a benchmark, a program);
    ``line``/``col`` locate MiniC/assembly findings in source text, ``pc``
    locates object-code and trace findings in the instruction stream.
    """

    code: str
    severity: Severity
    message: str
    source: str = ""
    line: int | None = None
    col: int | None = None
    pc: int | None = None
    function: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def location(self) -> str:
        """Human-readable location prefix, e.g. ``prog.c:3:7`` or ``pc 12``."""
        parts: list[str] = []
        if self.source:
            parts.append(self.source)
        if self.line is not None:
            parts.append(str(self.line))
            if self.col is not None:
                parts.append(str(self.col))
        text = ":".join(parts)
        if self.pc is not None:
            pc_text = f"pc {self.pc}"
            if self.function:
                pc_text += f" ({self.function})"
            text = f"{text}: {pc_text}" if text else pc_text
        return text

    def render(self) -> str:
        location = self.location
        prefix = f"{location}: " if location else ""
        return f"{prefix}{self.severity.label}[{self.code}]: {self.message}"

    def to_json(self) -> dict:
        """Stable machine-readable form (``repro-lint --format json``).

        The schema is fixed: every field is always present, locations that
        do not apply are ``null``.
        """
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "col": self.col,
            "pc": self.pc,
            "function": self.function,
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class DiagnosticError(Exception):
    """Raised by verifying drivers when a pass reports errors."""

    def __init__(self, diagnostics: list[Diagnostic], context: str = ""):
        self.diagnostics = list(diagnostics)
        self.context = context
        lines = [d.render() for d in self.diagnostics]
        head = f"{context}: " if context else ""
        count = sum(1 for d in self.diagnostics if d.severity >= Severity.ERROR)
        summary = f"{head}{count} verification error(s)"
        super().__init__("\n".join([summary, *lines]))


def max_severity(diagnostics: list[Diagnostic]) -> Severity | None:
    """The highest severity present, or None for an empty list."""
    return max((d.severity for d in diagnostics), default=None)


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def render_all(diagnostics: list[Diagnostic]) -> str:
    return "\n".join(d.render() for d in diagnostics)


@dataclass
class _SortKey:
    """Stable *total* ordering: source, line, col, pc, code, then the
    remaining fields as tie-breaks, so two diagnostic lists with the same
    contents always render identically (cross-run determinism)."""

    diagnostic: Diagnostic = field(repr=False)

    @property
    def key(self) -> tuple:
        d = self.diagnostic
        return (
            d.source,
            d.line if d.line is not None else -1,
            d.col if d.col is not None else -1,
            d.pc if d.pc is not None else -1,
            d.code,
            d.function or "",
            int(d.severity),
            d.message,
        )


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    return sorted(diagnostics, key=lambda d: _SortKey(d).key)


# ---------------------------------------------------------------------------
# convenience entry points (lazy imports keep this module a leaf)


def lint_minic(source: str, name: str = "<minic>"):
    """Run the MiniC lint passes (``MC1xx``) over *source* text.

    A source that fails to lex/parse/check yields a single ``MC100``
    diagnostic instead of raising.
    """
    from repro.lang.lint import lint_minic as _lint

    return _lint(source, name=name)


def lint_program(program, name: str | None = None):
    """Run the object-code verifier (``OBJ2xx``) over an assembled
    :class:`~repro.isa.Program`."""
    from repro.analysis.verify import verify_program

    return verify_program(program, name=name)


def sanitize_trace(trace, analysis=None, name: str | None = None,
                   max_reports: int = 100):
    """Replay a dynamic trace against the static analysis (``TR3xx``)."""
    from repro.vm.sanitize import sanitize_trace as _sanitize

    return _sanitize(trace, analysis=analysis, name=name, max_reports=max_reports)


def lint_static(program, name: str | None = None):
    """Run the whole-program static dependence engine's lint pass
    (``STA401``-``STA404``) over an assembled
    :class:`~repro.isa.Program`."""
    from repro.analysis.static.lint import lint_static as _lint

    return _lint(program, name=name)
