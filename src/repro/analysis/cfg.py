"""Control-flow graph construction on object code.

The paper builds per-procedure flow graphs from the MIPS object file (basic
block boundaries from ``pixie``, successors from decoding the instructions);
we do the same directly on the :class:`~repro.isa.Program`.

Conventions:

* Calls (``jal``/``jalr``) do **not** end a basic block for control-flow
  purposes — within the caller, control always continues at the next
  instruction.  (Interprocedural control dependence is handled dynamically
  by the limit analyzer, exactly as in the paper, §4.4.1.)  They do start a
  new *block boundary* in neither pixie nor here.
* ``jr $ra`` is a return: its block's successor is the virtual exit node.
* A computed jump (``jr`` through another register) gets its real successor
  set when the jump table is declared (``.jumptable``, which the MiniC
  compiler emits for every ``switch`` dispatch): the builder recognizes the
  ``lw target, TABLE(index); jr target`` idiom — the same jump-table
  decoding the paper's tooling performed on MIPS object files.  Undeclared
  computed jumps conservatively target the virtual exit node; either way
  the limit analyzer treats the jump as an always-mispredicted transfer.
* ``halt`` also flows to the virtual exit.

Code outside any declared ``.func`` region is grouped into synthetic
anonymous functions so that every instruction belongs to exactly one CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import FunctionSymbol, OpKind, Program

EXIT_BLOCK = -1
"""Virtual exit node id used in successor lists."""


@dataclass
class BasicBlock:
    """Half-open instruction range ``[start, end)`` with CFG edges.

    ``succs``/``preds`` contain block ids local to the owning
    :class:`FunctionCFG`; :data:`EXIT_BLOCK` denotes the virtual exit.
    """

    id: int
    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def terminator_pc(self) -> int:
        return self.end - 1

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class FunctionCFG:
    """The control-flow graph of one function."""

    function: FunctionSymbol
    blocks: list[BasicBlock]
    entry: int = 0  # block id of the entry block

    def block_at(self, pc: int) -> BasicBlock:
        for block in self.blocks:
            if pc in block:
                return block
        raise KeyError(f"pc {pc} not in function {self.function.name}")

    @property
    def exit_preds(self) -> list[int]:
        """Block ids whose successor set includes the virtual exit."""
        return [b.id for b in self.blocks if EXIT_BLOCK in b.succs]


def _computed_jump_targets(program: Program, pc: int) -> tuple[int, ...]:
    """Possible targets of the computed jump at *pc*, from jump-table
    metadata.

    Recognizes the dispatch idiom the compiler emits: a ``lw`` into the
    jump register, displaced by a declared table's base address, within
    the few instructions preceding the ``jr``.  Returns () when the jump
    cannot be matched to a declared table (e.g. a return).
    """
    instr = program.instructions[pc]
    if not instr.is_computed_jump or not program.jump_tables:
        return ()
    jump_reg = instr.rs
    for back in range(1, 4):
        if pc - back < 0:
            break
        candidate = program.instructions[pc - back]
        if candidate.is_load and candidate.rd == jump_reg:
            targets = program.jump_tables.get(candidate.imm)
            if targets is not None:
                return targets
            break
        if jump_reg in candidate.writes:
            break
    return ()


def _covering_functions(program: Program) -> list[FunctionSymbol]:
    """Return function symbols covering all code, synthesizing anonymous
    functions for instruction ranges outside every declared ``.func``."""
    declared = sorted(program.functions, key=lambda f: f.start)
    covering: list[FunctionSymbol] = []
    cursor = 0
    anon = 0
    for func in declared:
        if cursor < func.start:
            covering.append(FunctionSymbol(f"__anon{anon}", cursor, func.start))
            anon += 1
        covering.append(func)
        cursor = func.end
    if cursor < len(program):
        covering.append(FunctionSymbol(f"__anon{anon}", cursor, len(program)))
    return covering


def build_function_cfg(program: Program, function: FunctionSymbol) -> FunctionCFG:
    """Construct the CFG of *function* from the object code."""
    start, end = function.start, function.end
    instructions = program.instructions

    # -- find leaders -----------------------------------------------------
    leaders = {start}
    for pc in range(start, end):
        instr = instructions[pc]
        kind = instr.kind
        if kind in (OpKind.BRANCH, OpKind.JUMP, OpKind.JR, OpKind.HALT):
            if pc + 1 < end:
                leaders.add(pc + 1)
            if instr.target is not None and start <= instr.target < end:
                leaders.add(instr.target)
            if kind is OpKind.JR:
                for target in _computed_jump_targets(program, pc):
                    if start <= target < end:
                        leaders.add(target)
        elif instr.target is not None and start <= instr.target < end:
            # e.g. an intra-function jal target (unusual but legal)
            leaders.add(instr.target)

    ordered = sorted(leaders)
    blocks = [
        BasicBlock(id=i, start=leader, end=(ordered[i + 1] if i + 1 < len(ordered) else end))
        for i, leader in enumerate(ordered)
    ]
    block_of = {block.start: block.id for block in blocks}

    # -- wire successors -----------------------------------------------------
    def block_id_of_pc(pc: int) -> int:
        # pc is always a leader here.
        return block_of[pc]

    for block in blocks:
        instr = instructions[block.terminator_pc]
        kind = instr.kind
        succs: list[int] = []
        if kind is OpKind.BRANCH:
            if start <= instr.target < end:  # type: ignore[operator]
                succs.append(block_id_of_pc(instr.target))  # type: ignore[arg-type]
            else:
                succs.append(EXIT_BLOCK)
            if block.end < end:
                succs.append(block_id_of_pc(block.end))
            else:
                succs.append(EXIT_BLOCK)
        elif kind is OpKind.JUMP:
            if start <= instr.target < end:  # type: ignore[operator]
                succs.append(block_id_of_pc(instr.target))  # type: ignore[arg-type]
            else:
                succs.append(EXIT_BLOCK)
        elif kind is OpKind.JR:
            targets = _computed_jump_targets(program, block.terminator_pc)
            in_function = sorted(
                {t for t in targets if start <= t < end}
            )
            if in_function:
                succs.extend(block_id_of_pc(t) for t in in_function)
            else:
                succs.append(EXIT_BLOCK)  # return or unknown computed jump
        elif kind is OpKind.HALT:
            succs.append(EXIT_BLOCK)
        else:
            # Fall-through (includes calls: control resumes after the call).
            if block.end < end:
                succs.append(block_id_of_pc(block.end))
            else:
                succs.append(EXIT_BLOCK)
        # De-duplicate (a branch whose target is its own fall-through).
        seen: set[int] = set()
        for succ in succs:
            if succ not in seen:
                seen.add(succ)
                block.succs.append(succ)

    for block in blocks:
        for succ in block.succs:
            if succ != EXIT_BLOCK:
                blocks[succ].preds.append(block.id)

    return FunctionCFG(function=function, blocks=blocks)


def build_cfgs(program: Program) -> list[FunctionCFG]:
    """Build one CFG per (declared or synthesized) function, covering all code."""
    return [build_function_cfg(program, func) for func in _covering_functions(program)]
