"""Dominator trees and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" dominance algorithm and
the Cytron et al. dominance-frontier computation over plain adjacency lists,
so the same code serves forward dominance (loop detection) and reverse
dominance (control dependence): postdominators are dominators of the reverse
graph, and the *reverse dominance frontier* used by the paper (§2.2, §4.4.1)
is the dominance frontier computed on the reverse graph.
"""

from __future__ import annotations

UNDEFINED = -2
"""Marker for nodes unreachable from the entry (no dominator information)."""


def reverse_postorder(n: int, succs: list[list[int]], entry: int) -> list[int]:
    """Reverse postorder over the nodes reachable from *entry*.

    Iterative DFS (benchmark CFGs can be deep enough to overflow Python's
    recursion limit).
    """
    visited = [False] * n
    postorder: list[int] = []
    # Stack of (node, iterator state) pairs.
    stack: list[tuple[int, int]] = [(entry, 0)]
    visited[entry] = True
    while stack:
        node, idx = stack.pop()
        node_succs = succs[node]
        while idx < len(node_succs) and visited[node_succs[idx]]:
            idx += 1
        if idx < len(node_succs):
            stack.append((node, idx + 1))
            child = node_succs[idx]
            visited[child] = True
            stack.append((child, 0))
        else:
            postorder.append(node)
    postorder.reverse()
    return postorder


def immediate_dominators(n: int, succs: list[list[int]], entry: int) -> list[int]:
    """Immediate dominator of each node (entry's idom is itself).

    Unreachable nodes get :data:`UNDEFINED`.
    """
    preds: list[list[int]] = [[] for _ in range(n)]
    for node in range(n):
        for succ in succs[node]:
            preds[succ].append(node)

    order = reverse_postorder(n, succs, entry)
    rpo_number = {node: i for i, node in enumerate(order)}
    idom = [UNDEFINED] * n
    idom[entry] = entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_number[a] > rpo_number[b]:
                a = idom[a]
            while rpo_number[b] > rpo_number[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            new_idom = UNDEFINED
            for pred in preds[node]:
                if idom[pred] == UNDEFINED:
                    continue
                new_idom = pred if new_idom == UNDEFINED else intersect(pred, new_idom)
            if new_idom != UNDEFINED and idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominates(idom: list[int], a: int, b: int, entry: int) -> bool:
    """True if *a* dominates *b* (reflexive), per the idom tree."""
    node = b
    while True:
        if node == a:
            return True
        if node == entry or idom[node] == UNDEFINED:
            return False
        node = idom[node]


def dominance_frontiers(
    n: int, succs: list[list[int]], idom: list[int], entry: int
) -> list[set[int]]:
    """Cytron et al. dominance frontiers from an idom array."""
    preds: list[list[int]] = [[] for _ in range(n)]
    for node in range(n):
        for succ in succs[node]:
            preds[succ].append(node)

    frontiers: list[set[int]] = [set() for _ in range(n)]
    for node in range(n):
        if idom[node] == UNDEFINED or len(preds[node]) < 2:
            continue
        for pred in preds[node]:
            if idom[pred] == UNDEFINED:
                continue
            runner = pred
            while runner != idom[node] and runner != UNDEFINED:
                frontiers[runner].add(node)
                if runner == entry and idom[node] != entry:
                    break  # malformed idom chain; stay safe
                runner = idom[runner]
    return frontiers


def dominator_tree_children(idom: list[int], entry: int) -> list[list[int]]:
    """Children lists of the dominator tree."""
    children: list[list[int]] = [[] for _ in idom]
    for node, dom in enumerate(idom):
        if node != entry and dom != UNDEFINED:
            children[dom].append(node)
    return children
