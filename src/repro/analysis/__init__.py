"""Static analyses on object code: CFGs, dominance, control dependence,
natural loops, induction variables, and a small dataflow framework."""

from repro.analysis.cfg import (
    EXIT_BLOCK,
    BasicBlock,
    FunctionCFG,
    build_cfgs,
    build_function_cfg,
)
from repro.analysis.control_dependence import (
    ControlDependence,
    compute_control_dependence,
)
from repro.analysis.dataflow import (
    DataflowResult,
    live_registers,
    reaching_definitions,
    solve_backward,
    solve_forward,
)
from repro.analysis.dominance import (
    UNDEFINED,
    dominance_frontiers,
    dominates,
    dominator_tree_children,
    immediate_dominators,
    reverse_postorder,
)
from repro.analysis.induction import (
    LoopInductionInfo,
    analyze_loop,
    loop_overhead_pcs,
)
from repro.analysis.loops import NaturalLoop, find_loops
from repro.analysis.summary import ProgramAnalysis, analyze_program
from repro.analysis.verify import ABI_LIVE_IN, verify_program

__all__ = [
    "ABI_LIVE_IN",
    "BasicBlock",
    "ControlDependence",
    "DataflowResult",
    "EXIT_BLOCK",
    "FunctionCFG",
    "LoopInductionInfo",
    "NaturalLoop",
    "ProgramAnalysis",
    "UNDEFINED",
    "analyze_loop",
    "analyze_program",
    "build_cfgs",
    "build_function_cfg",
    "compute_control_dependence",
    "dominance_frontiers",
    "dominates",
    "dominator_tree_children",
    "find_loops",
    "immediate_dominators",
    "live_registers",
    "loop_overhead_pcs",
    "reaching_definitions",
    "reverse_postorder",
    "solve_backward",
    "solve_forward",
    "verify_program",
]
