"""Whole-program static analysis summary consumed by the limit analyzer.

One :func:`analyze_program` call runs every static analysis the limit study
needs and flattens the results into per-pc arrays, so the hot trace loop in
:mod:`repro.core.analyzer` does plain list indexing:

* ``block_of_pc``  — global basic-block id of each instruction;
* ``cd_of_pc``     — immediate control-dependence branch pcs of each
  instruction (intraprocedural, from the reverse dominance frontier);
* ``func_of_pc``   — covering function index;
* ``loop_overhead``— pcs removed from traces by *perfect loop unrolling*.

Global block ids number the blocks of all function CFGs consecutively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import FunctionCFG, build_cfgs
from repro.analysis.control_dependence import (
    ControlDependence,
    compute_control_dependence,
)
from repro.analysis.induction import loop_overhead_pcs
from repro.analysis.loops import NaturalLoop, find_loops
from repro.isa import Program


@dataclass(frozen=True)
class ProgramAnalysis:
    """Aggregated static analysis of one program."""

    program: Program
    cfgs: tuple[FunctionCFG, ...]
    control_dependence: tuple[ControlDependence, ...]
    loops: tuple[tuple[int, NaturalLoop], ...]  # (function index, loop)
    n_blocks: int
    block_of_pc: tuple[int, ...]
    block_start: tuple[int, ...]  # per global block id
    cd_of_pc: tuple[tuple[int, ...], ...]
    func_of_pc: tuple[int, ...]
    loop_overhead: frozenset[int]

    def is_block_leader(self, pc: int) -> bool:
        return self.block_start[self.block_of_pc[pc]] == pc


def ignored_pcs(
    analysis: ProgramAnalysis,
    perfect_inlining: bool = True,
    perfect_unrolling: bool = True,
) -> frozenset[int]:
    """Pcs removed from traces by the paper's §4.2 transformations.

    *Perfect inlining* removes calls, returns, and stack-pointer
    manipulations; *perfect unrolling* removes loop-overhead instructions.
    This is the single definition of "ignored" shared by the limit
    analyzer's static tables and the static ILP estimator — the two must
    agree on which instructions are counted for the static-vs-dynamic
    differential gate to be meaningful.
    """
    removed: set[int] = set()
    for pc, instr in enumerate(analysis.program.instructions):
        if perfect_inlining and (instr.is_call or instr.is_return or instr.writes_sp):
            removed.add(pc)
        elif perfect_unrolling and pc in analysis.loop_overhead:
            removed.add(pc)
    return frozenset(removed)


def analyze_program(program: Program) -> ProgramAnalysis:
    """Run CFG construction, control dependence, and loop/induction analysis."""
    cfgs = tuple(build_cfgs(program))
    n = len(program)

    block_of_pc = [0] * n
    func_of_pc = [0] * n
    block_start: list[int] = []
    cd_of_pc: list[tuple[int, ...]] = [()] * n
    control_deps: list[ControlDependence] = []
    loops: list[tuple[int, NaturalLoop]] = []
    overhead: set[int] = set()

    next_block = 0
    for func_idx, cfg in enumerate(cfgs):
        cd = compute_control_dependence(program, cfg)
        control_deps.append(cd)
        for loop in find_loops(cfg):
            loops.append((func_idx, loop))
        overhead |= loop_overhead_pcs(program, cfg)
        for block in cfg.blocks:
            global_id = next_block + block.id
            block_start.append(block.start)
            deps = cd.block_deps[block.id]
            for pc in range(block.start, block.end):
                block_of_pc[pc] = global_id
                func_of_pc[pc] = func_idx
                cd_of_pc[pc] = deps
        next_block += len(cfg.blocks)

    return ProgramAnalysis(
        program=program,
        cfgs=cfgs,
        control_dependence=tuple(control_deps),
        loops=tuple(loops),
        n_blocks=next_block,
        block_of_pc=tuple(block_of_pc),
        block_start=tuple(block_start),
        cd_of_pc=tuple(cd_of_pc),
        func_of_pc=tuple(func_of_pc),
        loop_overhead=frozenset(overhead),
    )
