"""Object-code verifier (``OBJ2xx`` diagnostics) over assembled programs.

The checks mirror the invariants the limit analyzer silently relies on:

* every direct control transfer lands on a basic-block leader of its own
  function (``OBJ201``) and stays inside that function (``OBJ202``) — the
  CFG builder makes every in-function target a leader, so ``OBJ201`` in
  practice catches transfers into another function's interior;
* control cannot fall off the end of a function (``OBJ203``): the last
  instruction must be a return, jump, or halt;
* every block is reachable from the function entry (``OBJ204``, warning);
* declared jump-table targets lie inside the function that dispatches
  through them (``OBJ205``);
* no register is live into a declared function's entry beyond the ABI set
  — arguments, saved registers, and the fixed ``$zero/$at/$gp/$sp/$fp/$ra``
  (``OBJ206``, warning, via :func:`~repro.analysis.dataflow.live_registers`);
* every ``jal`` target is a function entry point (``OBJ207``).

Synthetic ``__anon*`` functions (hand-written code outside ``.func``
regions) are exempt from the register live-in check: they follow no
calling convention.
"""

from __future__ import annotations

from repro.analysis.cfg import (
    EXIT_BLOCK,
    FunctionCFG,
    _computed_jump_targets,
    build_cfgs,
)
from repro.analysis.dataflow import live_registers
from repro.diagnostics import Diagnostic, Severity
from repro.isa import OpKind, Program, registers

#: Registers a function may legitimately read without writing first:
#: fixed-role registers plus everything the o32 convention passes in.
ABI_LIVE_IN: frozenset[int] = frozenset(
    {
        registers.ZERO,
        registers.AT,
        registers.GP,
        registers.SP,
        registers.FP,
        registers.RA,
    }
    | set(registers.INT_ARG_REGS)
    | set(registers.FP_ARG_REGS)
    | set(registers.INT_SAVED_REGS)
    | set(registers.FP_SAVED_REGS)
)

#: Opcode kinds that legitimately terminate a function's last block.
#: A conditional branch does not qualify: its fall-through path would
#: leave the function.
_TERMINAL_KINDS = frozenset({OpKind.JR, OpKind.JUMP, OpKind.HALT})


def _function_of_pc(cfgs: list[FunctionCFG], pc: int) -> FunctionCFG | None:
    for cfg in cfgs:
        if cfg.function.start <= pc < cfg.function.end:
            return cfg
    return None


def _reachable_blocks(cfg: FunctionCFG) -> set[int]:
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.blocks[stack.pop()].succs:
            if succ != EXIT_BLOCK and succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def verify_program(program: Program, name: str | None = None) -> list[Diagnostic]:
    """Run every object-code check over *program*; returns diagnostics."""
    source = name if name is not None else program.name
    cfgs = build_cfgs(program)
    leaders: set[int] = {b.start for cfg in cfgs for b in cfg.blocks}
    entries: set[int] = {cfg.function.start for cfg in cfgs}
    diagnostics: list[Diagnostic] = []

    def report(code: str, severity: Severity, message: str, pc: int | None,
               function: str | None) -> None:
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                source=source,
                pc=pc,
                function=function,
            )
        )

    for cfg in cfgs:
        func = cfg.function
        _check_transfers(program, cfg, leaders, entries, report)
        _check_function_end(program, cfg, report)
        _check_jump_tables(program, cfg, report)

        unreachable = sorted(
            set(range(len(cfg.blocks))) - _reachable_blocks(cfg)
        )
        for block_id in unreachable:
            block = cfg.blocks[block_id]
            report(
                "OBJ204",
                Severity.WARNING,
                f"basic block at pc {block.start} is unreachable from the "
                f"entry of {func.name}",
                block.start,
                func.name,
            )

        if not func.name.startswith("__anon"):
            _check_live_in(program, cfg, report)

    return diagnostics


def _check_transfers(program, cfg, leaders, entries, report) -> None:
    func = cfg.function
    for block in cfg.blocks:
        for pc in range(block.start, block.end):
            instr = program.instructions[pc]
            target = instr.target
            if target is None:
                continue
            if instr.is_call:
                if instr.kind is OpKind.CALL and target not in entries:
                    report(
                        "OBJ207",
                        Severity.ERROR,
                        f"jal target pc {target} is not a function entry",
                        pc,
                        func.name,
                    )
                continue
            if instr.kind not in (OpKind.BRANCH, OpKind.JUMP):
                continue
            if not (func.start <= target < func.end):
                report(
                    "OBJ202",
                    Severity.ERROR,
                    f"{instr.render()} at pc {pc} transfers control outside "
                    f"function {func.name}",
                    pc,
                    func.name,
                )
                if target not in leaders:
                    report(
                        "OBJ201",
                        Severity.ERROR,
                        f"transfer target pc {target} is not a basic-block "
                        "leader",
                        pc,
                        func.name,
                    )
            # In-function targets are leaders by CFG construction.


def _check_function_end(program, cfg, report) -> None:
    func = cfg.function
    last = program.instructions[func.end - 1]
    if last.kind not in _TERMINAL_KINDS:
        report(
            "OBJ203",
            Severity.ERROR,
            f"control can fall through the end of {func.name} "
            f"(last instruction: {last.render()})",
            func.end - 1,
            func.name,
        )


def _check_jump_tables(program, cfg, report) -> None:
    func = cfg.function
    for block in cfg.blocks:
        pc = block.terminator_pc
        instr = program.instructions[pc]
        if not instr.is_computed_jump:
            continue
        for target in _computed_jump_targets(program, pc):
            if not (func.start <= target < func.end):
                report(
                    "OBJ205",
                    Severity.ERROR,
                    f"jump-table target pc {target} lies outside the "
                    f"dispatching function {func.name}",
                    pc,
                    func.name,
                )


def _check_live_in(program, cfg, report) -> None:
    """Registers live into a declared function's entry beyond the ABI set
    are reads that no caller is obliged to have initialized."""
    func = cfg.function
    solved = live_registers(
        program,
        cfg,
        call_defines=frozenset({registers.V0, registers.V1, registers.F0}),
        ignore_save_reads=True,
    )
    suspicious = sorted(set(solved.block_in[cfg.entry]) - ABI_LIVE_IN)
    for reg in suspicious:
        report(
            "OBJ206",
            Severity.WARNING,
            f"register {registers.reg_name(reg)} may be read in "
            f"{func.name} before it is written",
            func.start,
            func.name,
        )
