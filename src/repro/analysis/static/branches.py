"""Static branch classification: per-branch predictability classes.

Each conditional branch gets one class, checked in this order:

* ``UNREACHABLE``      — constant propagation proves the branch never
  executes (dynamic claim: its pc never appears in a trace, ``STA411``);
* ``CONST_TAKEN`` / ``CONST_NOT_TAKEN`` — the outcome is decided by
  interprocedural constant propagation (dynamic claim: every traced
  outcome matches, ``STA410``; lint note ``STA403``);
* ``LOOP_BACK``        — one of the branch's edges is a natural-loop back
  edge: the iterate/exit decision of a loop, highly biased toward
  iterating;
* ``LOOP_EXIT``        — the branch is inside a loop body and one edge
  leaves the loop: biased toward staying;
* ``DATA``             — anything else: a genuinely data-dependent
  decision, the kind the paper's CD machines serialize on.

Computed jumps (``jr`` through a non-$ra register) are not conditional
branches and are reported separately by the CLI; the limit analyzer treats
them as always mispredicted regardless of class.

Only the first three classes carry hard dynamic claims; the loop classes
describe structure (and are what a static branch predictor would key on —
compare Ramachandran & Johnson's fetch-rate classes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.cfg import EXIT_BLOCK
from repro.analysis.loops import find_loops
from repro.analysis.static.constprop import ConstProp


class BranchClass(enum.Enum):
    UNREACHABLE = "unreachable"
    CONST_TAKEN = "const-taken"
    CONST_NOT_TAKEN = "const-not-taken"
    LOOP_BACK = "loop-back"
    LOOP_EXIT = "loop-exit"
    DATA = "data"


@dataclass(frozen=True)
class BranchInfo:
    """Classification of one conditional branch."""

    pc: int
    function: str
    branch_class: BranchClass


def classify_branches(constprop: ConstProp) -> tuple[BranchInfo, ...]:
    """Classify every conditional branch of the program, in pc order."""
    graph = constprop.graph
    program = graph.program
    infos: list[BranchInfo] = []
    for cfg in graph.cfgs:
        name = cfg.function.name
        loops = find_loops(cfg)
        back_edge_tails = {tail for loop in loops for tail in loop.tails}
        in_loop = [False] * len(cfg.blocks)
        exits_loop = [False] * len(cfg.blocks)
        for loop in loops:
            for block_id in loop.body:
                in_loop[block_id] = True
                for succ in cfg.blocks[block_id].succs:
                    if succ == EXIT_BLOCK or succ not in loop.body:
                        exits_loop[block_id] = True
        for block in cfg.blocks:
            pc = block.terminator_pc
            if not program.instructions[pc].is_cond_branch:
                continue
            if not constprop.reachable(pc):
                branch_class = BranchClass.UNREACHABLE
            else:
                outcome = constprop.branch_outcome(pc)
                if outcome is True:
                    branch_class = BranchClass.CONST_TAKEN
                elif outcome is False:
                    branch_class = BranchClass.CONST_NOT_TAKEN
                elif block.id in back_edge_tails:
                    branch_class = BranchClass.LOOP_BACK
                elif in_loop[block.id] and exits_loop[block.id]:
                    branch_class = BranchClass.LOOP_EXIT
                else:
                    branch_class = BranchClass.DATA
            infos.append(
                BranchInfo(pc=pc, function=name, branch_class=branch_class)
            )
    infos.sort(key=lambda info: info.pc)
    return tuple(infos)
