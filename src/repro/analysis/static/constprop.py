"""Interprocedural conditional constant propagation over object code.

The evaluator mirrors :class:`repro.vm.machine.VM` bit for bit — 32-bit
two's-complement wrapping, trap-free division (``x / 0 == 0``,
``x % 0 == x``), shift-count masking, ``$zero`` write discarding, guarded
moves — so every constant this pass proves is exactly the value the VM
computes.  That exactness is what lets the differential gate
(:mod:`repro.analysis.static.differential`) treat a disagreement between a
static claim and the dynamic trace as a hard error rather than noise.

The analysis is *optimistic* (SCCP-style): facts flow only along feasible
edges, and a conditional branch whose operands are proven constant
propagates to just one successor.  Blocks never reached through feasible
edges are statically unreachable (``STA404``), and a branch with a decided
outcome is constant-foldable (``STA403``).

Interprocedural flow follows the call graph: a callee's entry fact is the
join of the caller facts at its (reachable) call sites, and a call site
kills every register the o32-style convention does not preserve
(``$s0-$s7``, ``$sp``, ``$fp``, ``$gp``, ``$f20-$f31``).  The convention is
an *assumption* about the code — compiled MiniC always honors it — which is
exactly why the differential gate re-checks every derived claim against the
dynamic trace.  Programs containing indirect calls (``jalr``) degrade
gracefully: every function's entry fact drops to "nothing known".

Lattice per register: absent from the fact dict = not-a-constant (bottom);
present = proven constant; a whole fact of ``None`` = unreachable (top).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.cfg import EXIT_BLOCK, FunctionCFG
from repro.analysis.static.callgraph import CallGraph
from repro.analysis.static.framework import DataflowProblem, Direction, solve
from repro.isa import registers
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpKind, Opcode
from repro.isa.program import GLOBALS_BASE, STACK_TOP, Program
from repro.vm.machine import RETURN_SENTINEL

_WRAP = 0xFFFFFFFF
_SIGN = 0x80000000

_NAC = object()
"""Not-a-constant sentinel (never stored in facts)."""

#: Registers a call site preserves under the o32-style convention the MiniC
#: code generator follows.  Everything else is killed at calls.
CALL_PRESERVED = frozenset(
    (registers.ZERO, registers.SP, registers.FP, registers.GP)
    + registers.INT_SAVED_REGS
    + registers.FP_SAVED_REGS
)


def _wrap32(value: int) -> int:
    value &= _WRAP
    return value - (1 << 32) if value & _SIGN else value


def machine_entry_fact() -> dict[int, int | float]:
    """The architectural state at program start: every register is a known
    constant (the VM zero-initializes the whole file)."""
    fact: dict[int, int | float] = {}
    for reg in range(registers.FP_BASE):
        fact[reg] = 0
    for reg in range(registers.FP_BASE, registers.NUM_REGS):
        fact[reg] = 0.0
    fact[registers.SP] = STACK_TOP
    fact[registers.GP] = GLOBALS_BASE
    fact[registers.RA] = RETURN_SENTINEL
    return fact


# -- the VM-exact evaluator ------------------------------------------------


def _div(a: int, b: int):
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return _wrap32(quotient)


def _rem(a: int, b: int):
    if b == 0:
        return a
    remainder = abs(a) % abs(b)
    return _wrap32(-remainder if a < 0 else remainder)


_BINARY = {
    Opcode.ADD: lambda a, b: _wrap32(a + b),
    Opcode.SUB: lambda a, b: _wrap32(a - b),
    Opcode.MUL: lambda a, b: _wrap32(a * b),
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.AND: lambda a, b: _wrap32(a & b),
    Opcode.OR: lambda a, b: _wrap32(a | b),
    Opcode.XOR: lambda a, b: _wrap32(a ^ b),
    Opcode.NOR: lambda a, b: _wrap32(~(a | b)),
    Opcode.SLL: lambda a, b: _wrap32(a << (b & 31)),
    Opcode.SRL: lambda a, b: _wrap32((a & _WRAP) >> (b & 31)),
    Opcode.SRA: lambda a, b: _wrap32(a >> (b & 31)),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLE: lambda a, b: 1 if a <= b else 0,
    Opcode.SEQ: lambda a, b: 1 if a == b else 0,
    Opcode.SNE: lambda a, b: 1 if a != b else 0,
    Opcode.SGT: lambda a, b: 1 if a > b else 0,
    Opcode.SGE: lambda a, b: 1 if a >= b else 0,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b if b != 0.0 else 0.0,
    Opcode.FEQ: lambda a, b: 1 if a == b else 0,
    Opcode.FLT: lambda a, b: 1 if a < b else 0,
    Opcode.FLE: lambda a, b: 1 if a <= b else 0,
}

_IMMEDIATE = {
    Opcode.ADDI: lambda a, imm: _wrap32(a + imm),
    Opcode.ANDI: lambda a, imm: _wrap32(a & imm),
    Opcode.ORI: lambda a, imm: _wrap32(a | imm),
    Opcode.XORI: lambda a, imm: _wrap32(a ^ imm),
    Opcode.SLLI: lambda a, imm: _wrap32(a << (imm & 31)),
    Opcode.SRLI: lambda a, imm: _wrap32((a & _WRAP) >> (imm & 31)),
    Opcode.SRAI: lambda a, imm: _wrap32(a >> (imm & 31)),
    Opcode.SLTI: lambda a, imm: 1 if a < imm else 0,
    Opcode.SLEI: lambda a, imm: 1 if a <= imm else 0,
    Opcode.SEQI: lambda a, imm: 1 if a == imm else 0,
    Opcode.SNEI: lambda a, imm: 1 if a != imm else 0,
    Opcode.SGTI: lambda a, imm: 1 if a > imm else 0,
    Opcode.SGEI: lambda a, imm: 1 if a >= imm else 0,
}

_UNARY = {
    Opcode.FNEG: lambda a: -a,
    Opcode.FABS: lambda a: abs(a),
    Opcode.FSQRT: lambda a: a**0.5 if a >= 0.0 else 0.0,
    Opcode.CVTIF: lambda a: float(a),
    Opcode.CVTFI: lambda a: _wrap32(int(a)),
}

_GUARDED = frozenset((Opcode.MOVZ, Opcode.MOVN, Opcode.FMOVZ, Opcode.FMOVN))
_GUARDED_ON_ZERO = frozenset((Opcode.MOVZ, Opcode.FMOVZ))


def _eval(op: Opcode, instr: Instruction, fact: dict):
    """Value the destination register takes, or :data:`_NAC`.

    Any evaluation error (the VM would fault at runtime) conservatively
    yields not-a-constant.
    """
    get = fact.get
    try:
        if op is Opcode.LI:
            return instr.imm
        if op is Opcode.FLI:
            return float(instr.imm)
        if op is Opcode.MOV or op is Opcode.FMOV:
            return get(instr.rs, _NAC)
        if instr.is_load:
            return _NAC  # memory contents are not modeled
        if op in _GUARDED:
            guard = get(instr.rt, _NAC)
            moved = get(instr.rs, _NAC)
            kept = get(instr.rd, _NAC)
            if guard is _NAC:
                # Either branch of the guard may win: constant only when
                # both agree.
                if moved is not _NAC and kept is not _NAC and moved == kept:
                    return kept
                return _NAC
            moves = (guard == 0) == (op in _GUARDED_ON_ZERO)
            return moved if moves else kept
        a = get(instr.rs, _NAC)
        if a is _NAC:
            return _NAC
        unary = _UNARY.get(op)
        if unary is not None:
            return unary(a)
        binary = _BINARY.get(op)
        if binary is not None:
            b = get(instr.rt, _NAC)
            if b is _NAC:
                return _NAC
            return binary(a, b)
        immediate = _IMMEDIATE.get(op)
        if immediate is not None:
            return immediate(a, instr.imm)
        return _NAC
    except Exception:
        return _NAC


def step(fact: dict, instr: Instruction, pc: int) -> None:
    """Apply *instr* (at *pc*) to *fact* in place."""
    kind = instr.kind
    if kind is OpKind.CALL or kind is OpKind.JALR:
        for reg in [r for r in fact if r not in CALL_PRESERVED]:
            del fact[reg]
        return
    writes = instr.writes
    if not writes:
        return  # stores, branches, jumps, nop, halt, io
    rd = writes[0]
    if rd == registers.ZERO:
        return  # the VM discards writes to $zero
    value = _eval(instr.opcode, instr, fact)
    if value is _NAC:
        fact.pop(rd, None)
    else:
        fact[rd] = value


def eval_branch(instr: Instruction, fact: dict) -> bool | None:
    """Outcome of conditional branch *instr* under *fact*, or None."""
    get = fact.get
    a = get(instr.rs, _NAC)
    if a is _NAC:
        return None
    op = instr.opcode
    if op is Opcode.BEQ or op is Opcode.BNE:
        b = get(instr.rt, _NAC)
        if b is _NAC:
            return None
        equal = a == b
        return equal if op is Opcode.BEQ else not equal
    if op is Opcode.BLEZ:
        return a <= 0
    if op is Opcode.BGTZ:
        return a > 0
    if op is Opcode.BLTZ:
        return a < 0
    return a >= 0  # BGEZ


def join_facts(a: dict, b: dict) -> dict:
    """Registers on which *a* and *b* agree."""
    if len(b) < len(a):
        a, b = b, a
    merged = {}
    for reg, value in a.items():
        other = b.get(reg, _NAC)
        if other is not _NAC and other == value:
            merged[reg] = value
    return merged


# -- the per-function dataflow problem -------------------------------------


class _ConstProblem(DataflowProblem):
    direction = Direction.FORWARD
    optimistic = True

    def __init__(self, program: Program, cfg: FunctionCFG, entry_fact: dict):
        self._instructions = program.instructions
        self._cfg = cfg
        self._entry_fact = entry_fact
        self._block_of = {block.start: block.id for block in cfg.blocks}

    def boundary(self) -> dict:
        return dict(self._entry_fact)

    def bottom(self) -> dict:
        return {}

    def join(self, facts: Sequence[dict]) -> dict:
        merged = facts[0]
        for fact in facts[1:]:
            merged = join_facts(merged, fact)
        return merged

    def transfer(self, block_id: int, fact: dict) -> dict:
        block = self._cfg.blocks[block_id]
        out = dict(fact)
        for pc in range(block.start, block.end):
            step(out, self._instructions[pc], pc)
        return out

    def out_edges(self, block_id: int, out_fact: dict, succs: Sequence[int]):
        block = self._cfg.blocks[block_id]
        instr = self._instructions[block.terminator_pc]
        if not instr.is_cond_branch:
            return succs
        # A branch writes no register, so the block OUT fact is exactly the
        # fact holding when the branch evaluates its operands.
        outcome = eval_branch(instr, out_fact)
        if outcome is None:
            return succs
        function = self._cfg.function
        if outcome:
            target = instr.target
            if function.start <= target < function.end:  # type: ignore[operator]
                return [self._block_of[target]]
            return [EXIT_BLOCK]
        if block.end < function.end:
            return [self._block_of[block.end]]
        return [EXIT_BLOCK]


# -- interprocedural driver ------------------------------------------------


@dataclass(frozen=True)
class ConstProp:
    """Solved whole-program constant propagation."""

    graph: CallGraph
    #: Per covering function: the fact at its entry, or None if no feasible
    #: call path reaches it.
    entry_facts: tuple[dict | None, ...]
    #: Per pc: the fact just before the instruction executes, or None if
    #: the instruction is statically unreachable.
    fact_before: tuple[dict | None, ...]

    def reachable(self, pc: int) -> bool:
        return self.fact_before[pc] is not None

    def value_before(self, pc: int, reg: int) -> int | float | None:
        """The proven-constant value of *reg* just before *pc*, or None."""
        fact = self.fact_before[pc]
        if fact is None:
            return None
        value = fact.get(reg, _NAC)
        return None if value is _NAC else value

    def address_of(self, pc: int) -> int | None:
        """The proven-constant effective address of the memory op at *pc*."""
        instr = self.graph.program.instructions[pc]
        if not instr.is_mem:
            return None
        base = self.value_before(pc, instr.rs)
        if base is None:
            return None
        try:
            return base + instr.imm
        except TypeError:
            return None

    def branch_outcome(self, pc: int) -> bool | None:
        """Decided outcome of the conditional branch at *pc*, or None."""
        fact = self.fact_before[pc]
        if fact is None:
            return None
        instr = self.graph.program.instructions[pc]
        if not instr.is_cond_branch:
            return None
        return eval_branch(instr, fact)


def propagate_constants(graph: CallGraph) -> ConstProp:
    """Run interprocedural conditional constant propagation over *graph*."""
    program = graph.program
    n = len(graph.cfgs)
    func_of_pc = [0] * len(program)
    for idx, cfg in enumerate(graph.cfgs):
        for pc in range(cfg.function.start, cfg.function.end):
            func_of_pc[pc] = idx

    entry_facts: list[dict | None] = [None] * n
    if graph.conservative:
        # An indirect call may enter any function in any state.
        for idx in range(n):
            entry_facts[idx] = {}
    entry_facts[graph.entry] = machine_entry_fact()

    solved: list = [None] * n
    pending = {idx for idx in range(n) if entry_facts[idx] is not None}
    while pending:
        idx = min(pending)  # deterministic processing order
        pending.discard(idx)
        cfg = graph.cfgs[idx]
        solved[idx] = solve(cfg, _ConstProblem(program, cfg, entry_facts[idx]))
        # Propagate facts at reachable call sites into callee entries.
        for block in cfg.blocks:
            fact_in = solved[idx].block_in[block.id]
            if fact_in is None:
                continue
            fact = dict(fact_in)
            for pc in range(block.start, block.end):
                instr = program.instructions[pc]
                if instr.kind is OpKind.CALL and instr.target is not None:
                    callee = func_of_pc[instr.target]
                    callee_fact = dict(fact)
                    callee_fact[registers.RA] = pc + 1
                    old = entry_facts[callee]
                    new = callee_fact if old is None else join_facts(old, callee_fact)
                    if old is None or new != old:
                        entry_facts[callee] = new
                        pending.add(callee)
                step(fact, instr, pc)

    fact_before: list[dict | None] = [None] * len(program)
    for idx, cfg in enumerate(graph.cfgs):
        if solved[idx] is None:
            continue
        for block in cfg.blocks:
            fact_in = solved[idx].block_in[block.id]
            if fact_in is None:
                continue
            fact = dict(fact_in)
            for pc in range(block.start, block.end):
                fact_before[pc] = dict(fact)
                step(fact, program.instructions[pc], pc)

    return ConstProp(
        graph=graph,
        entry_facts=tuple(entry_facts),
        fact_before=tuple(fact_before),
    )
