"""Static-only lint pass: ``STA401``-``STA404`` notes.

Everything this pass reports is a *claim of the static engine alone* —
no trace is consulted.  The claims with observable dynamic consequences
(const-decided branches, unreachable code, dead stores) are re-checked
against real traces by :mod:`repro.analysis.static.differential`, which
escalates contradictions to ``STA41x`` errors.  All findings here are
:attr:`~repro.diagnostics.Severity.NOTE`: they describe the program, they
do not indict it.
"""

from __future__ import annotations

from repro.analysis.static import StaticAnalysis, analyze_static
from repro.analysis.static.branches import BranchClass
from repro.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.isa.program import Program


def lint_static(
    program: Program,
    name: str | None = None,
    facts: StaticAnalysis | None = None,
) -> list[Diagnostic]:
    """Run the static engine over *program* and report its findings."""
    if facts is None:
        facts = analyze_static(program)
    source = name if name is not None else program.name
    out: list[Diagnostic] = []

    def note(code: str, message: str, pc: int, function: str) -> None:
        out.append(
            Diagnostic(
                code=code,
                severity=Severity.NOTE,
                message=message,
                source=source,
                pc=pc,
                function=function,
            )
        )

    graph = facts.graph
    for idx, cfg in enumerate(graph.cfgs):
        if idx not in graph.reachable:
            func = cfg.function
            note(
                "STA401",
                f"function '{func.name}' is never called from the entry point",
                func.start,
                func.name,
            )

    constprop = facts.constprop
    for idx in sorted(graph.reachable):
        cfg = graph.cfgs[idx]
        for block in cfg.blocks:
            if not constprop.reachable(block.start):
                note(
                    "STA404",
                    "block is unreachable under interprocedural constant "
                    "propagation",
                    block.start,
                    cfg.function.name,
                )

    for info in facts.branches:
        if info.branch_class is BranchClass.CONST_TAKEN:
            note(
                "STA403",
                "branch is always taken (operands are interprocedural "
                "constants)",
                info.pc,
                info.function,
            )
        elif info.branch_class is BranchClass.CONST_NOT_TAKEN:
            note(
                "STA403",
                "branch is never taken (operands are interprocedural "
                "constants)",
                info.pc,
                info.function,
            )

    for store in facts.dead_stores:
        note(
            "STA402",
            f"store to address {store.address} is overwritten at "
            f"pc {store.overwritten_by} before any possible read",
            store.pc,
            store.function,
        )

    return sort_diagnostics(out)
