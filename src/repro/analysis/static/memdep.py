"""Static memory-dependence classification and dead-store detection.

Every load/store is classified by where its effective address can point:

* ``STACK``  — the base register is the stack/frame pointer, or the address
  is a proven constant at or above the data break (spill slots, locals);
* ``GLOBAL`` — the base register is the global pointer, or the address is a
  proven constant below the data break (named globals, arrays);
* ``UNKNOWN`` — anything else (pointer arithmetic through arbitrary
  registers).

Two references may alias only if their classes overlap: distinct proven
addresses never alias, stack never aliases global, and ``UNKNOWN`` aliases
everything.  The classes are *claims about the dynamic execution* — a
``STACK`` reference must trace an address at or above the data break, a
``GLOBAL`` one below it, and a proven-constant address must trace exactly
that address — which the differential gate checks record for record
(``STA414``).

Dead stores (``STA402``): within one basic block, a store to a proven
address that is overwritten by a later store to the same address with no
intervening call, unknown-address load, or load of that address, can never
be observed — straight-line execution guarantees the overwrite.  The claim
is replayed against the trace as ``STA413``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.static.constprop import ConstProp
from repro.isa import registers
from repro.isa.opcodes import OpKind


class MemClass(enum.Enum):
    """Where a memory reference's effective address can point."""

    STACK = "stack"
    GLOBAL = "global"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class MemRef:
    """One classified memory instruction."""

    pc: int
    is_store: bool
    mem_class: MemClass
    #: Proven-constant effective address, when constant propagation has one.
    address: int | None
    function: str


@dataclass(frozen=True)
class DeadStore:
    """A store whose value provably can never be read."""

    pc: int
    address: int
    #: The later store (same block) that overwrites it.
    overwritten_by: int
    function: str


def classify_memory(constprop: ConstProp) -> tuple[MemRef, ...]:
    """Classify every *reachable* memory instruction of the program."""
    graph = constprop.graph
    program = graph.program
    refs: list[MemRef] = []
    for cfg in graph.cfgs:
        name = cfg.function.name
        for pc in range(cfg.function.start, cfg.function.end):
            instr = program.instructions[pc]
            if not instr.is_mem or not constprop.reachable(pc):
                continue
            address = constprop.address_of(pc)
            if address is not None and isinstance(address, int):
                mem_class = (
                    MemClass.GLOBAL
                    if address < program.data_break
                    else MemClass.STACK
                )
            elif instr.rs in (registers.SP, registers.FP):
                mem_class, address = MemClass.STACK, None
            elif instr.rs == registers.GP:
                mem_class, address = MemClass.GLOBAL, None
            else:
                mem_class, address = MemClass.UNKNOWN, None
            if not isinstance(address, int):
                address = None
            refs.append(
                MemRef(
                    pc=pc,
                    is_store=instr.is_store,
                    mem_class=mem_class,
                    address=address,
                    function=name,
                )
            )
    return tuple(refs)


def may_alias(a: MemRef, b: MemRef) -> bool:
    """Whether two classified references may touch the same word."""
    if a.address is not None and b.address is not None:
        return a.address == b.address
    if MemClass.UNKNOWN in (a.mem_class, b.mem_class):
        return True
    return a.mem_class is b.mem_class


def find_dead_stores(constprop: ConstProp) -> tuple[DeadStore, ...]:
    """Provably dead stores, per the intra-block argument above."""
    graph = constprop.graph
    program = graph.program
    dead: list[DeadStore] = []
    for cfg in graph.cfgs:
        name = cfg.function.name
        for block in cfg.blocks:
            # address -> pc of the live tracked store to it
            tracked: dict[int, int] = {}
            for pc in range(block.start, block.end):
                if not constprop.reachable(pc):
                    break  # whole rest of the block is unreachable too
                instr = program.instructions[pc]
                kind = instr.kind
                if kind is OpKind.CALL or kind is OpKind.JALR:
                    tracked.clear()  # the callee may read anything
                    continue
                if instr.is_load:
                    address = constprop.address_of(pc)
                    if isinstance(address, int):
                        tracked.pop(address, None)  # value observed
                    else:
                        tracked.clear()  # may read any tracked slot
                    continue
                if instr.is_store:
                    address = constprop.address_of(pc)
                    if not isinstance(address, int):
                        # An unknown store neither reads nor needs tracking.
                        continue
                    earlier = tracked.get(address)
                    if earlier is not None:
                        dead.append(
                            DeadStore(
                                pc=earlier,
                                address=address,
                                overwritten_by=pc,
                                function=name,
                            )
                        )
                    tracked[address] = pc
    return tuple(dead)
