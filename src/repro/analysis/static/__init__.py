"""Whole-program static dependence engine over compiled object code.

One :func:`analyze_static` call runs every pass and bundles the results:

* :mod:`~repro.analysis.static.framework` — the generic worklist dataflow
  engine (also hosting the classic gen/kill solvers in
  :mod:`repro.analysis.dataflow`);
* :mod:`~repro.analysis.static.callgraph` — the direct-call graph,
  reachability, and recursion detection;
* :mod:`~repro.analysis.static.constprop` — interprocedural conditional
  constant propagation mirroring the VM's semantics exactly;
* :mod:`~repro.analysis.static.memdep` — memory-reference classification
  (stack / global / unknown) and provably-dead-store detection;
* :mod:`~repro.analysis.static.branches` — per-branch predictability
  classes;
* :mod:`~repro.analysis.static.ilp` — execution-free parallelism bounds.

Derived claims surface as ``STA4xx`` diagnostics through
:mod:`~repro.analysis.static.lint` (static-only notes) and
:mod:`~repro.analysis.static.differential` (static-vs-dynamic errors,
the CI gate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import telemetry
from repro.analysis.static.branches import BranchClass, BranchInfo, classify_branches
from repro.analysis.static.callgraph import CallGraph, build_call_graph
from repro.analysis.static.constprop import ConstProp, propagate_constants
from repro.analysis.static.ilp import ProgramILP, estimate_ilp
from repro.analysis.static.memdep import (
    DeadStore,
    MemClass,
    MemRef,
    classify_memory,
    find_dead_stores,
)
from repro.analysis.summary import ProgramAnalysis, analyze_program
from repro.isa.program import Program

__all__ = [
    "BranchClass",
    "BranchInfo",
    "CallGraph",
    "ConstProp",
    "DeadStore",
    "MemClass",
    "MemRef",
    "ProgramILP",
    "StaticAnalysis",
    "analyze_static",
    "build_call_graph",
    "classify_branches",
    "classify_memory",
    "estimate_ilp",
    "find_dead_stores",
    "propagate_constants",
]


@dataclass(frozen=True)
class StaticAnalysis:
    """Every static fact the engine derives for one program."""

    program: Program
    analysis: ProgramAnalysis
    graph: CallGraph
    constprop: ConstProp
    branches: tuple[BranchInfo, ...]
    memory: tuple[MemRef, ...]
    dead_stores: tuple[DeadStore, ...]
    ilp: ProgramILP


def analyze_static(
    program: Program, analysis: ProgramAnalysis | None = None
) -> StaticAnalysis:
    """Run the whole static engine over *program*.

    Reuses an existing :class:`ProgramAnalysis` when given (the CFGs are
    shared across all passes).
    """
    started = time.perf_counter()
    if analysis is None:
        analysis = analyze_program(program)
    graph = build_call_graph(program, analysis.cfgs)
    constprop = propagate_constants(graph)
    branches = classify_branches(constprop)
    memory = classify_memory(constprop)
    dead_stores = find_dead_stores(constprop)
    ilp = estimate_ilp(analysis)
    elapsed = time.perf_counter() - started
    telemetry.METRICS.counter("repro_static_analysis_seconds").inc(
        elapsed, program=program.name
    )
    if telemetry.enabled():
        telemetry.record_span(
            "static.analyze",
            elapsed,
            program=program.name,
            functions=len(graph.cfgs),
            branches=len(branches),
            dead_stores=len(dead_stores),
        )
    return StaticAnalysis(
        program=program,
        analysis=analysis,
        graph=graph,
        constprop=constprop,
        branches=branches,
        memory=memory,
        dead_stores=dead_stores,
        ilp=ilp,
    )
