"""Differential gate: static claims replayed against dynamic truth.

Every static fact with an observable dynamic consequence is checked
record-for-record against a real trace; a contradiction is an ``ERROR``
(a bug in the static engine, the VM, or the analyzer — never acceptable):

* ``STA410`` — a branch classified ``CONST_TAKEN``/``CONST_NOT_TAKEN``
  must show exactly that outcome on *every* dynamic instance;
* ``STA411`` — a pc proven unreachable by interprocedural constant
  propagation must never appear in the trace;
* ``STA412`` — the static ILP facts must bound the measured ORACLE
  limit: any fully-executed block (its terminator appears in the trace)
  owes the oracle at least its chain depth of cycles, and on a halted run
  the oracle's parallel time is at least ``guaranteed_cp`` (equivalently,
  measured parallelism <= the static bound).  Both checks are exact
  integer comparisons — no float tolerance;
* ``STA413`` — after a provably-dead store executes, no load of its
  address may occur before the next store to it;
* ``STA414`` — a ``STACK`` reference must trace an address at or above
  the data break, a ``GLOBAL`` one below it, and a proven-constant
  address must trace exactly that constant.

The checks are one-sided on purpose: a truncated (non-halted) trace can
only *miss* violations, never fabricate them, so the gate is safe to run
on any trace.
"""

from __future__ import annotations

from repro.analysis.static import StaticAnalysis
from repro.analysis.static.branches import BranchClass
from repro.analysis.static.memdep import MemClass
from repro.core.models import MachineModel
from repro.core.results import AnalysisResult
from repro.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.vm.trace import NO_ADDR, Trace


def check_static_vs_dynamic(
    facts: StaticAnalysis,
    trace: Trace,
    result: AnalysisResult | None = None,
    halted: bool | None = None,
    name: str | None = None,
    max_reports: int = 100,
) -> list[Diagnostic]:
    """Check every checkable static claim in *facts* against *trace*.

    ``result`` (when given) must be the analyzer's output for this same
    trace and enables the ``STA412`` parallelism-bound checks against its
    ORACLE model.  ``halted`` states whether the trace comes from a run
    that executed HALT (truncated traces skip the whole-program bound).
    """
    if trace.program is not facts.program:
        raise ValueError("trace was produced by a different program")
    source = name if name is not None else facts.program.name
    out: list[Diagnostic] = []

    def error(code: str, message: str, pc: int | None = None,
              function: str | None = None) -> None:
        if len(out) < max_reports:
            out.append(
                Diagnostic(
                    code=code,
                    severity=Severity.ERROR,
                    message=message,
                    source=source,
                    pc=pc,
                    function=function,
                )
            )

    program = facts.program
    executed = set(trace.pcs)

    # --- STA411: statically unreachable code must not execute ----------
    constprop = facts.constprop
    for pc in sorted(executed):
        if not constprop.reachable(pc):
            func = facts.graph.name_of(facts.graph.function_index_of_pc(pc))
            error(
                "STA411",
                "pc proven unreachable by constant propagation was executed",
                pc=pc,
                function=func,
            )

    # --- STA410: const-decided branches must behave -------------------
    taken_counts: dict[int, list[int]] = {}
    for pc, taken in trace.branch_outcomes():
        counts = taken_counts.setdefault(pc, [0, 0])
        counts[1 if taken else 0] += 1
    for info in facts.branches:
        counts = taken_counts.get(info.pc)
        if counts is None:
            continue
        not_taken, taken = counts
        if info.branch_class is BranchClass.CONST_TAKEN and not_taken:
            error(
                "STA410",
                f"branch classified always-taken fell through "
                f"{not_taken} of {not_taken + taken} times",
                pc=info.pc,
                function=info.function,
            )
        elif info.branch_class is BranchClass.CONST_NOT_TAKEN and taken:
            error(
                "STA410",
                f"branch classified never-taken was taken "
                f"{taken} of {not_taken + taken} times",
                pc=info.pc,
                function=info.function,
            )

    # --- STA413: dead stores must never be observed live --------------
    # For each claimed address, scan the trace's touches of that address
    # once; a load between a dead store's instance and the next store to
    # the address contradicts the claim.  A pending instance at end of
    # trace proves nothing either way (halted: never read; truncated:
    # unobservable) and is skipped.
    claims_by_addr: dict[int, list] = {}
    for store in facts.dead_stores:
        claims_by_addr.setdefault(store.address, []).append(store)
    if claims_by_addr:
        pending: dict[int, object] = {}  # address -> pending DeadStore claim
        violated: set[int] = set()  # claim pcs already reported
        for pc, addr in zip(trace.pcs, trace.addrs):
            if addr == NO_ADDR:
                continue
            claims = claims_by_addr.get(addr)
            if claims is None:
                continue
            instr = program.instructions[pc]
            if instr.is_store:
                match = next((c for c in claims if c.pc == pc), None)
                if match is not None:
                    pending[addr] = match
                else:
                    pending.pop(addr, None)
            elif instr.is_load:
                live = pending.pop(addr, None)
                if live is not None and live.pc not in violated:
                    violated.add(live.pc)
                    error(
                        "STA413",
                        f"store claimed dead was read at pc {pc} before "
                        f"the overwrite at pc {live.overwritten_by}",
                        pc=live.pc,
                        function=live.function,
                    )

    # --- STA414: memory classes must match traced addresses -----------
    refs_by_pc = {ref.pc: ref for ref in facts.memory}
    bad_mem: set[int] = set()
    data_break = program.data_break
    for pc, addr in zip(trace.pcs, trace.addrs):
        if addr == NO_ADDR or pc in bad_mem:
            continue
        ref = refs_by_pc.get(pc)
        if ref is None:
            continue
        if ref.address is not None and addr != ref.address:
            bad_mem.add(pc)
            error(
                "STA414",
                f"proven-constant address {ref.address} traced {addr}",
                pc=pc,
                function=ref.function,
            )
        elif ref.mem_class is MemClass.STACK and addr < data_break:
            bad_mem.add(pc)
            error(
                "STA414",
                f"stack-classified reference traced global address {addr}",
                pc=pc,
                function=ref.function,
            )
        elif ref.mem_class is MemClass.GLOBAL and addr >= data_break:
            bad_mem.add(pc)
            error(
                "STA414",
                f"global-classified reference traced stack address {addr}",
                pc=pc,
                function=ref.function,
            )

    # --- STA412: static ILP facts must bound the measured oracle ------
    oracle = result.models.get(MachineModel.ORACLE) if result else None
    if oracle is not None:
        ilp = facts.ilp
        for terminator_pc, depth in ilp.block_chains:
            if depth > oracle.parallel_time and terminator_pc in executed:
                error(
                    "STA412",
                    f"fully-executed block has dependence-chain depth "
                    f"{depth} but the oracle finished in "
                    f"{oracle.parallel_time} cycles",
                    pc=terminator_pc,
                )
        if halted and oracle.parallel_time < ilp.guaranteed_cp:
            error(
                "STA412",
                f"halted run finished in {oracle.parallel_time} oracle "
                f"cycles, below the guaranteed-region chain depth "
                f"{ilp.guaranteed_cp} (measured parallelism "
                f"{oracle.parallelism:.2f} exceeds the static bound "
                f"{ilp.static_bound(result.counted_instructions):.2f})",
                pc=program.entry,
            )

    return sort_diagnostics(out)
