"""Whole-program call graph over compiled object code.

Built from the :meth:`~repro.isa.Program.call_sites` of the object file: one
node per covering function (declared ``.func`` regions plus the synthetic
``__anon*`` functions the CFG builder creates for orphan code), one edge per
direct ``jal``.  Indirect calls (``jalr``) have no static target, so a
program containing any makes the graph *conservative*: every function is
considered potentially callable from anywhere (the MiniC compiler never
emits ``jalr``, so bundled benchmarks always get the precise graph).

The graph answers the questions the interprocedural passes need:

* which functions are reachable from the entry (→ ``STA401`` unreachable
  function notes, and the scope of the whole-program ILP bound);
* which call sites target each function (→ entry facts for interprocedural
  constant propagation);
* which functions are (mutually) recursive (→ where the static ILP
  estimator must fall back to per-invocation bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import FunctionCFG, build_cfgs
from repro.isa.opcodes import OpKind
from repro.isa.program import Program


@dataclass(frozen=True)
class CallGraph:
    """Call graph over the covering functions of one program."""

    program: Program
    cfgs: tuple[FunctionCFG, ...]
    #: Function index of the entry point.
    entry: int
    #: callee function index -> sorted tuple of call-site pcs.
    call_sites_of: tuple[tuple[int, ...], ...]
    #: caller function index -> sorted tuple of callee function indices.
    callees_of: tuple[tuple[int, ...], ...]
    #: Function indices reachable from the entry through direct calls.
    reachable: frozenset[int]
    #: Function indices on a call-graph cycle (self- or mutual recursion).
    recursive: frozenset[int]
    #: True when the program contains ``jalr`` and the graph is conservative.
    conservative: bool

    def function_index_of_pc(self, pc: int) -> int:
        for idx, cfg in enumerate(self.cfgs):
            if cfg.function.start <= pc < cfg.function.end:
                return idx
        raise KeyError(f"pc {pc} outside every covering function")

    def name_of(self, idx: int) -> str:
        return self.cfgs[idx].function.name


def build_call_graph(
    program: Program, cfgs: tuple[FunctionCFG, ...] | None = None
) -> CallGraph:
    """Build the call graph of *program* (reusing *cfgs* when given)."""
    if cfgs is None:
        cfgs = tuple(build_cfgs(program))
    n = len(cfgs)

    func_of_pc = [0] * len(program)
    for idx, cfg in enumerate(cfgs):
        for pc in range(cfg.function.start, cfg.function.end):
            func_of_pc[pc] = idx

    entry = func_of_pc[program.entry] if len(program) else 0
    conservative = program.has_indirect_calls

    sites: list[list[int]] = [[] for _ in range(n)]
    callees: list[set[int]] = [set() for _ in range(n)]
    for call_pc, target in program.call_sites():
        callee = func_of_pc[target]
        sites[callee].append(call_pc)
        callees[func_of_pc[call_pc]].add(callee)
    if conservative:
        # An indirect call may reach any function: add a virtual edge from
        # every function containing a jalr to every function.
        jalr_funcs = {
            func_of_pc[pc]
            for pc, instr in enumerate(program.instructions)
            if instr.kind is OpKind.JALR
        }
        for caller in jalr_funcs:
            callees[caller] |= set(range(n))

    # Reachability from the entry function.
    reachable: set[int] = set()
    stack = [entry]
    while stack:
        idx = stack.pop()
        if idx in reachable:
            continue
        reachable.add(idx)
        stack.extend(sorted(callees[idx]))

    # Recursion: functions on a call-graph cycle (Tarjan-free: a function is
    # recursive iff it can reach itself through at least one call edge).
    recursive: set[int] = set()
    for idx in range(n):
        seen: set[int] = set()
        frontier = sorted(callees[idx])
        while frontier:
            node = frontier.pop()
            if node == idx:
                recursive.add(idx)
                break
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(sorted(callees[node]))

    return CallGraph(
        program=program,
        cfgs=cfgs,
        entry=entry,
        call_sites_of=tuple(tuple(sorted(s)) for s in sites),
        callees_of=tuple(tuple(sorted(c)) for c in callees),
        reachable=frozenset(reachable),
        recursive=frozenset(recursive),
        conservative=conservative,
    )
