"""Static ILP estimation: execution-free parallelism bounds.

The bounds rest on one sound primitive, the **intra-block counted
dependence chain**.  Within a basic block, dynamic order equals static
order, so the limit analyzer's dependence rule — a read waits for the
immediately preceding write to the same register — makes every in-block
chain of counted register dependences a chain of *true* dependences in
every dynamic instance of the block.  If a block instance executes to its
terminator, the ORACLE machine (and a fortiori every constrained machine)
needs at least ``chain_depth(block)`` cycles.  Basic blocks are
single-entry, so a block's terminator pc appearing in a trace proves a
full instance executed.

From the primitive:

* per function, ``critical_path`` = the deepest chain over its blocks — a
  certified lower bound on the parallel time of any trace that fully
  executes that block, hence ``counted / critical_path`` bounds the
  parallelism extractable while the function's worst block is on screen;
* whole-program, the **guaranteed region** — the straight-line prefix of
  the entry function walked through single-successor blocks, stopping at
  the first call (a callee could halt) or branch — executes fully on every
  run that halts, so its deepest chain ``guaranteed_cp`` lower-bounds the
  parallel time of every complete run, and

  ``parallelism  <=  counted_dynamic_instructions / guaranteed_cp``

  for every halted trace.  The differential gate asserts exactly this
  (``STA412``), plus the per-executed-block primitive.

Writes by *removed* instructions (perfect inlining/unrolling) reset a
register's chain depth: the estimate never leans on an instruction the
transformations delete, which keeps it a lower bound whichever way the
analyzer resolves dependences through removed writers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import EXIT_BLOCK, FunctionCFG
from repro.analysis.summary import ProgramAnalysis, ignored_pcs
from repro.isa import registers
from repro.isa.program import Program


def chain_depth(
    program: Program,
    start: int,
    end: int,
    removed: frozenset[int],
) -> int:
    """Deepest counted register-dependence chain in ``[start, end)``."""
    depth: dict[int, int] = {}
    deepest = 0
    for pc in range(start, end):
        instr = program.instructions[pc]
        if pc in removed:
            for reg in instr.writes:
                if reg != registers.ZERO:
                    depth[reg] = 0
            continue
        d = 0
        for reg in instr.reads:
            if reg != registers.ZERO:
                t = depth.get(reg, 0)
                if t > d:
                    d = t
        d += 1
        for reg in instr.writes:
            if reg != registers.ZERO:
                depth[reg] = d
        if d > deepest:
            deepest = d
    return deepest


def guaranteed_cp(
    program: Program, cfg: FunctionCFG, removed: frozenset[int], entry_pc: int
) -> int:
    """Deepest chain in the program's guaranteed region (>= 1).

    The walk starts at *entry_pc* (the first executed instruction, which
    need not be a block leader) and follows single-successor edges; every
    visited range executes fully on any halted run, because straight-line
    code cannot stop mid-block and a sole successor must be entered.  It
    stops at the first call (the callee could halt the machine before
    control returns) and at the first multi-way branch.
    """
    cp = 1
    visited: set[int] = set()
    block = cfg.block_at(entry_pc)
    start = entry_pc
    while block.id not in visited:
        visited.add(block.id)
        call_pc = None
        for pc in range(start, block.end):
            if program.instructions[pc].is_call:
                call_pc = pc
                break
        depth = chain_depth(
            program, start, call_pc if call_pc is not None else block.end, removed
        )
        if depth > cp:
            cp = depth
        if call_pc is not None:
            break
        succs = block.succs
        if len(succs) != 1 or succs[0] == EXIT_BLOCK:
            break
        block = cfg.blocks[succs[0]]
        start = block.start
    return cp


@dataclass(frozen=True)
class FunctionILP:
    """Static ILP facts for one function."""

    name: str
    n_blocks: int
    n_counted: int
    #: Deepest intra-block counted dependence chain.
    critical_path: int

    @property
    def balance(self) -> float:
        """Counted work per critical-path cycle (an ILP figure of merit)."""
        return self.n_counted / self.critical_path if self.critical_path else 0.0


@dataclass(frozen=True)
class ProgramILP:
    """Static ILP facts for the whole program."""

    functions: tuple[FunctionILP, ...]
    #: Per-block (terminator pc, chain depth) for every block: a trace that
    #: executes a terminator owes the ORACLE at least that many cycles.
    block_chains: tuple[tuple[int, int], ...]
    #: Deepest chain in the entry function's guaranteed region.
    guaranteed_cp: int
    total_counted: int

    def static_bound(self, counted_dynamic: int) -> float:
        """Upper bound on measured parallelism for a halted trace that
        retired *counted_dynamic* counted instructions."""
        return max(1.0, counted_dynamic / self.guaranteed_cp)


def estimate_ilp(
    analysis: ProgramAnalysis,
    perfect_inlining: bool = True,
    perfect_unrolling: bool = True,
) -> ProgramILP:
    """Compute the static ILP facts of an analyzed program."""
    program = analysis.program
    removed = ignored_pcs(analysis, perfect_inlining, perfect_unrolling)

    functions: list[FunctionILP] = []
    block_chains: list[tuple[int, int]] = []
    total_counted = 0
    for cfg in analysis.cfgs:
        func = cfg.function
        critical = 0
        for block in cfg.blocks:
            depth = chain_depth(program, block.start, block.end, removed)
            block_chains.append((block.terminator_pc, depth))
            if depth > critical:
                critical = depth
        n_counted = sum(
            1 for pc in range(func.start, func.end) if pc not in removed
        )
        total_counted += n_counted
        functions.append(
            FunctionILP(
                name=func.name,
                n_blocks=len(cfg.blocks),
                n_counted=n_counted,
                critical_path=critical,
            )
        )

    if analysis.cfgs and len(program):
        entry_func = analysis.func_of_pc[program.entry]
        cp = guaranteed_cp(
            program, analysis.cfgs[entry_func], removed, program.entry
        )
    else:
        cp = 1
    return ProgramILP(
        functions=tuple(functions),
        block_chains=tuple(block_chains),
        guaranteed_cp=cp,
        total_counted=total_counted,
    )
