"""``repro-analyze-static`` — render the static engine's whole-program report.

Usage::

    repro-analyze-static prog.c other.s      # analyze files (MiniC or asm)
    repro-analyze-static --bench all         # analyze every benchmark

For each program the report lists, per function: block/instruction
counts, the deepest intra-block counted dependence chain (the static
critical path), the resulting balance (counted work per critical-path
cycle), and the branch- and memory-class histograms.  The program
summary states the guaranteed-region critical path and the static
parallelism bound the differential gate enforces (``STA412``).

The output is a pure function of the program: byte-identical across
repeated runs (tested).  Exit status 0 on success, 2 on usage/input
errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.static import StaticAnalysis, analyze_static
from repro.analysis.static.branches import BranchClass
from repro.analysis.static.memdep import MemClass
from repro.asm import AsmError, assemble
from repro.lang import CompileError, compile_source

_BRANCH_GROUPS = {
    BranchClass.CONST_TAKEN: "const",
    BranchClass.CONST_NOT_TAKEN: "const",
    BranchClass.UNREACHABLE: "const",
    BranchClass.LOOP_BACK: "loop",
    BranchClass.LOOP_EXIT: "loop",
    BranchClass.DATA: "data",
}


def _table(rows: list[list[str]], header: list[str]) -> list[str]:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]

    def fmt(cells: list[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    return [fmt(header), fmt(["-" * w for w in widths]), *map(fmt, rows)]


def render_report(facts: StaticAnalysis) -> str:
    """The full static report for one program, as deterministic text."""
    program = facts.program
    graph = facts.graph

    branch_hist: dict[str, dict[str, int]] = {}
    for info in facts.branches:
        hist = branch_hist.setdefault(info.function, {})
        group = _BRANCH_GROUPS[info.branch_class]
        hist[group] = hist.get(group, 0) + 1
    mem_hist: dict[str, dict[MemClass, int]] = {}
    for ref in facts.memory:
        hist = mem_hist.setdefault(ref.function, {})
        hist[ref.mem_class] = hist.get(ref.mem_class, 0) + 1

    rows = []
    for idx, func_ilp in enumerate(facts.ilp.functions):
        name = func_ilp.name
        branches = branch_hist.get(name, {})
        memory = mem_hist.get(name, {})
        rows.append(
            [
                name if idx in graph.reachable else f"{name} (unreachable)",
                str(func_ilp.n_blocks),
                str(func_ilp.n_counted),
                str(func_ilp.critical_path),
                f"{func_ilp.balance:.2f}",
                str(branches.get("const", 0)),
                str(branches.get("loop", 0)),
                str(branches.get("data", 0)),
                str(memory.get(MemClass.STACK, 0)),
                str(memory.get(MemClass.GLOBAL, 0)),
                str(memory.get(MemClass.UNKNOWN, 0)),
            ]
        )
    header = [
        "function", "blocks", "counted", "critpath", "balance",
        "br:const", "br:loop", "br:data",
        "mem:stack", "mem:global", "mem:unknown",
    ]

    const_branches = sum(
        1
        for info in facts.branches
        if info.branch_class
        in (BranchClass.CONST_TAKEN, BranchClass.CONST_NOT_TAKEN)
    )
    lines = [
        f"static analysis: {program.name} "
        f"({len(program.instructions)} instructions, "
        f"{len(graph.cfgs)} functions)",
        "",
        *_table(rows, header),
        "",
        f"reachable functions:      {len(graph.reachable)}"
        f"/{len(graph.cfgs)}"
        + (" (indirect calls: conservative)" if graph.conservative else ""),
        f"recursive functions:      {len(graph.recursive)}",
        f"const-decided branches:   {const_branches}",
        f"provably dead stores:     {len(facts.dead_stores)}",
        f"counted static instrs:    {facts.ilp.total_counted}",
        f"guaranteed critical path: {facts.ilp.guaranteed_cp}",
        "static bound:             parallelism <= counted_dynamic / "
        f"{facts.ilp.guaranteed_cp}",
    ]
    return "\n".join(lines)


def _load_program(path: str, parser: argparse.ArgumentParser):
    try:
        text = Path(path).read_text()
    except OSError as exc:
        parser.error(f"cannot read {path}: {exc.strerror or exc}")
    name = Path(path).name
    try:
        if path.endswith((".s", ".asm")):
            return assemble(text, name=name)
        return compile_source(text, name=name)
    except (CompileError, AsmError) as exc:
        parser.error(f"{path}: {exc.message}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze-static",
        description="Whole-program static dependence and parallelism report.",
    )
    parser.add_argument("paths", nargs="*", metavar="FILE",
                        help="MiniC or assembly files to analyze")
    parser.add_argument(
        "--bench",
        nargs="+",
        metavar="NAME",
        default=[],
        help="benchmark(s) to analyze, or 'all'",
    )
    args = parser.parse_args(argv)
    if not args.paths and not args.bench:
        parser.error("nothing to analyze: pass FILEs or --bench")

    programs = [_load_program(path, parser) for path in args.paths]
    if args.bench:
        from repro.bench import SUITE

        if args.bench == ["all"]:
            names = sorted(SUITE)
        else:
            unknown = [n for n in args.bench if n not in SUITE]
            if unknown:
                parser.error(
                    f"unknown benchmark(s): {', '.join(unknown)} "
                    f"(choices: {', '.join(sorted(SUITE))})"
                )
            names = args.bench
        for name in names:
            spec = SUITE[name]
            programs.append(
                compile_source(spec.source(spec.default_scale), name=name)
            )

    reports = [render_report(analyze_static(program)) for program in programs]
    print("\n\n".join(reports))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
