"""Generic worklist dataflow framework over function CFGs.

The repo's original dataflow module (:mod:`repro.analysis.dataflow`) shipped
two hand-rolled round-robin solvers specialized to gen/kill set problems.
This module generalizes them into one meet-over-lattice worklist engine:

* a :class:`DataflowProblem` describes the lattice (``bottom``, ``join``),
  the ``transfer`` function, the :class:`Direction`, and the boundary fact
  seeded at the entry (forward) or the virtual exit (backward);
* :func:`solve` iterates transfer functions to the maximal-fixpoint
  solution with a priority worklist ordered by reverse postorder — the
  classic order that converges in O(depth) passes for reducible flow
  graphs, and a *deterministic* order: ties are impossible because every
  block has one priority, so repeated runs visit blocks identically.

Two fact conventions are supported:

* **pessimistic** (the default, used by the gen/kill problems): every
  block gets a fact; blocks without reachable predecessors take the
  ``bottom`` fact, exactly like the original round-robin solvers;
* **optimistic** (``optimistic = True``, used by constant propagation):
  facts start at an implicit top represented as ``None``; only blocks
  reachable from the entry through *feasible* edges are ever computed,
  and a problem may prune infeasible edges by overriding
  :meth:`DataflowProblem.out_edges` (how conditional constant propagation
  skips never-taken branch edges).

The original :func:`repro.analysis.dataflow.solve_forward` /
``solve_backward`` entry points are now thin wrappers over this engine via
:class:`GenKillProblem`; their results are unchanged (the maximal fixpoint
of a monotone framework is unique, whatever the iteration order).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.analysis.cfg import EXIT_BLOCK, FunctionCFG


class Direction(Enum):
    """Which way facts flow through the CFG."""

    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowProblem:
    """One dataflow problem: lattice, transfer functions, direction.

    Subclasses override the lattice hooks.  Facts are opaque to the solver;
    the only reserved value is ``None``, which optimistic problems use as
    the implicit top ("not yet reached") element.
    """

    direction: Direction = Direction.FORWARD
    #: Optimistic problems start at top (``None``) and only propagate along
    #: feasible edges; pessimistic problems give every block a fact.
    optimistic: bool = False

    def boundary(self):
        """Fact entering the CFG: at the entry block (forward) or flowing
        back from the virtual exit (backward)."""
        raise NotImplementedError

    def bottom(self):
        """The lattice's bottom element (identity of :meth:`join`)."""
        raise NotImplementedError

    def join(self, facts: Sequence):
        """Combine facts meeting at a block boundary.  Never called with
        ``None`` elements; an empty sequence must yield ``bottom``."""
        raise NotImplementedError

    def transfer(self, block_id: int, fact):
        """Push *fact* through block *block_id*."""
        raise NotImplementedError

    def equal(self, a, b) -> bool:
        """Fact equality, used to detect the fixpoint."""
        return a == b

    def out_edges(self, block_id: int, out_fact, succs: Sequence[int]) -> Iterable[int]:
        """Successors *out_fact* can actually flow to (:data:`EXIT_BLOCK`
        entries included).  Optimistic problems may prune infeasible edges;
        the default keeps them all."""
        return succs


@dataclass
class SolvedDataflow:
    """Per-block IN/OUT facts of a solved problem.

    For optimistic problems, blocks never reached through feasible edges
    keep ``None`` in both lists.
    """

    block_in: list
    block_out: list


def reverse_postorder_of(n: int, succs: Sequence[Sequence[int]], entry: int) -> list[int]:
    """Reverse postorder of the graph, unreachable nodes appended in id
    order (so every node has a deterministic priority)."""
    seen = [False] * n
    order: list[int] = []

    def visit(root: int) -> None:
        stack: list[tuple[int, int]] = [(root, 0)]
        seen[root] = True
        while stack:
            node, idx = stack[-1]
            node_succs = succs[node]
            if idx < len(node_succs):
                stack[-1] = (node, idx + 1)
                nxt = node_succs[idx]
                if not seen[nxt]:
                    seen[nxt] = True
                    stack.append((nxt, 0))
            else:
                order.append(node)
                stack.pop()

    visit(entry)
    for node in range(n):
        if not seen[node]:
            visit(node)
    order.reverse()
    return order


def _adjacency(cfg: FunctionCFG) -> tuple[list[list[int]], list[list[int]]]:
    """Normalized ``(preds, succs)`` with :data:`EXIT_BLOCK` dropped.

    Each edge is the union of both blocks' records: flow graphs built
    outside :mod:`repro.analysis.cfg` may populate only one side (the
    MiniC lint's statement graph records preds only), and the solver must
    still propagate along every edge.  Lists are sorted for determinism.
    """
    preds = [set(block.preds) for block in cfg.blocks]
    succs = [
        {s for s in block.succs if s != EXIT_BLOCK} for block in cfg.blocks
    ]
    for block in cfg.blocks:
        for succ in succs[block.id]:
            preds[succ].add(block.id)
        for pred in block.preds:
            succs[pred].add(block.id)
    return [sorted(p) for p in preds], [sorted(s) for s in succs]


def _graphs(cfg: FunctionCFG, direction: Direction):
    """(preds, succs, iteration succs, roots) for *direction*.

    Exit edges are dropped from the adjacency (the boundary fact stands in
    for the virtual exit); for the backward direction the CFG is reversed
    and iteration starts from the exit predecessors.
    """
    preds, succs = _adjacency(cfg)
    if direction is Direction.FORWARD:
        return preds, succs, succs, [cfg.entry]
    roots = [b.id for b in cfg.blocks if EXIT_BLOCK in b.succs]
    return preds, succs, preds, roots or [cfg.entry]


def solve(cfg: FunctionCFG, problem: DataflowProblem) -> SolvedDataflow:
    """Iterate *problem* over *cfg* to its maximal fixpoint."""
    n = len(cfg.blocks)
    if n == 0:
        return SolvedDataflow(block_in=[], block_out=[])
    forward = problem.direction is Direction.FORWARD

    preds, succs, iter_succs, roots = _graphs(cfg, problem.direction)
    # Priority = reverse postorder of the iteration graph, rooted at the
    # entry (forward) or the exit predecessors (backward).
    order = reverse_postorder_of(n, iter_succs, roots[0])
    priority = [0] * n
    for rank, block_id in enumerate(order):
        priority[block_id] = rank

    # meet_in: the fact at the *meet side* of each block (IN for forward
    # problems, OUT for backward ones); flow_out: the transferred fact.
    meet_in: list = [None] * n
    flow_out: list = [None] * n
    if not problem.optimistic:
        for block_id in range(n):
            flow_out[block_id] = problem.transfer(block_id, problem.bottom())

    heap: list[tuple[int, int]] = []
    queued = [False] * n
    feasible_out: list[list[int] | None] = [None] * n

    def push(block_id: int) -> None:
        if not queued[block_id]:
            queued[block_id] = True
            heapq.heappush(heap, (priority[block_id], block_id))

    if problem.optimistic:
        for root in roots:
            push(root)
    else:
        for block_id in order:
            push(block_id)

    def incoming_facts(block_id: int) -> list:
        facts = []
        if forward:
            for pred in preds[block_id]:
                fact = flow_out[pred]
                if fact is None:
                    continue
                if problem.optimistic:
                    edges = feasible_out[pred]
                    if edges is not None and block_id not in edges:
                        continue
                facts.append(fact)
        else:
            for succ in succs[block_id]:
                fact = flow_out[succ]
                if fact is not None:
                    facts.append(fact)
        return facts

    while heap:
        _, block_id = heapq.heappop(heap)
        queued[block_id] = False

        facts = incoming_facts(block_id)
        if forward:
            boundary_here = block_id == cfg.entry
        else:
            boundary_here = EXIT_BLOCK in cfg.blocks[block_id].succs
        if boundary_here:
            facts = [problem.boundary()] + facts

        if facts:
            new_in = problem.join(facts) if len(facts) > 1 else facts[0]
        elif problem.optimistic:
            continue  # still unreachable; revisit when a pred produces a fact
        else:
            new_in = problem.bottom()

        new_out = problem.transfer(block_id, new_in)
        in_changed = meet_in[block_id] is None or not problem.equal(
            meet_in[block_id], new_in
        )
        out_changed = flow_out[block_id] is None or not problem.equal(
            flow_out[block_id], new_out
        )
        meet_in[block_id] = new_in
        if not (in_changed or out_changed):
            continue
        flow_out[block_id] = new_out
        if problem.optimistic and forward:
            edges = list(
                problem.out_edges(block_id, new_out, cfg.blocks[block_id].succs)
            )
            feasible_out[block_id] = edges
            targets = [s for s in edges if s != EXIT_BLOCK]
        elif forward:
            targets = succs[block_id]
        else:
            targets = preds[block_id]
        for target in targets:
            push(target)

    if forward:
        return SolvedDataflow(block_in=meet_in, block_out=flow_out)
    return SolvedDataflow(block_in=flow_out, block_out=meet_in)


class GenKillProblem(DataflowProblem):
    """Classic may-analysis over sets: ``out = gen ∪ (in − kill)``.

    Hosts the original reaching-definitions and liveness solvers (see
    :mod:`repro.analysis.dataflow`).
    """

    def __init__(
        self,
        direction: Direction,
        gen: Sequence[set],
        kill: Sequence[set],
        boundary_fact: frozenset = frozenset(),
    ):
        self.direction = direction
        self._gen = [frozenset(g) for g in gen]
        self._kill = [frozenset(k) for k in kill]
        self._boundary = frozenset(boundary_fact)

    def boundary(self) -> frozenset:
        return self._boundary

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, facts: Sequence[frozenset]) -> frozenset:
        merged: frozenset = frozenset()
        for fact in facts:
            merged |= fact
        return merged

    def transfer(self, block_id: int, fact: frozenset) -> frozenset:
        return self._gen[block_id] | (fact - self._kill[block_id])
