"""Induction-variable analysis and perfect-unrolling overhead marking.

The paper (§4.2) simulates *perfect and complete loop unrolling* by removing
from the trace every instruction that exists only to drive the loop:

1. instructions that increment a loop index / induction register by a
   constant exactly once per loop iteration;
2. comparisons of loop indices with loop-invariant values;
3. branches based on the results of such comparisons.

This module finds those static instructions.  A register qualifies as a
*basic induction register* of a loop when:

* exactly one instruction in the loop writes it, of the self-increment form
  ``addi r, r, imm``;
* that instruction executes exactly once per iteration — its block dominates
  every back-edge tail and is not inside a nested loop.

A value is *loop-invariant* when it is an immediate, ``$zero``, or a
register with no definition inside the loop.  Comparisons are matched to the
branches they feed by local (within-block) def-use chains, which is how the
code generators of interest always lay them out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import FunctionCFG
from repro.analysis.dominance import UNDEFINED, dominates
from repro.analysis.loops import NaturalLoop, find_loops, loop_dominator_info
from repro.isa import Instruction, Opcode, OpKind, Program, registers

_COMPARE_OPS = frozenset(
    {
        Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE, Opcode.SGT, Opcode.SGE,
        Opcode.SLTI, Opcode.SLEI, Opcode.SEQI, Opcode.SNEI, Opcode.SGTI,
        Opcode.SGEI, Opcode.SUB,
    }
)
# `sub` appears because some code generators branch on `i - n` directly.


@dataclass(frozen=True)
class LoopInductionInfo:
    """Per-loop result: the induction registers and the overhead pcs."""

    loop: NaturalLoop
    induction_regs: frozenset[int]
    overhead_pcs: frozenset[int]


def _instructions_in(loop: NaturalLoop, cfg: FunctionCFG):
    for block_id in sorted(loop.body):
        block = cfg.blocks[block_id]
        for pc in range(block.start, block.end):
            yield block_id, pc


def _nested_blocks(loop: NaturalLoop, all_loops: list[NaturalLoop]) -> frozenset[int]:
    """Blocks of *loop* that belong to some strictly nested loop."""
    nested: set[int] = set()
    for other in all_loops:
        if other is loop:
            continue
        if other.body < loop.body:
            nested |= other.body
    return frozenset(nested)


def analyze_loop(
    program: Program,
    cfg: FunctionCFG,
    loop: NaturalLoop,
    all_loops: list[NaturalLoop],
    idom: list[int],
) -> LoopInductionInfo:
    """Find induction registers and unroll-overhead instructions of *loop*."""
    instructions = program.instructions
    nested = _nested_blocks(loop, all_loops)

    # Map register -> pcs that define it anywhere in the loop.
    defs: dict[int, list[int]] = {}
    for _, pc in _instructions_in(loop, cfg):
        for reg in instructions[pc].writes:
            defs.setdefault(reg, []).append(pc)

    def executes_once_per_iteration(block_id: int) -> bool:
        if block_id in nested:
            return False
        if idom[block_id] == UNDEFINED:
            return False
        return all(
            dominates(idom, block_id, tail, cfg.entry) for tail in loop.tails
        )

    # -- 1. basic induction registers -------------------------------------
    induction: set[int] = set()
    increments: dict[int, int] = {}  # register -> incrementing pc
    for block_id, pc in _instructions_in(loop, cfg):
        instr = instructions[pc]
        if (
            instr.opcode is Opcode.ADDI
            and instr.rd == instr.rs
            and instr.rd != registers.ZERO
            and len(defs.get(instr.rd, ())) == 1
            and executes_once_per_iteration(block_id)
        ):
            induction.add(instr.rd)
            increments[instr.rd] = pc

    def invariant(reg: int) -> bool:
        return reg == registers.ZERO or reg not in defs

    def index_comparison(instr: Instruction) -> bool:
        """True for a comparison of induction register(s) with invariants."""
        if instr.opcode not in _COMPARE_OPS:
            return False
        sources = instr.reads
        if not any(reg in induction for reg in sources):
            return False
        return all(reg in induction or invariant(reg) for reg in sources)

    # -- 2 & 3. comparisons and the branches they feed ----------------------
    overhead: set[int] = set(increments.values())
    for block_id in sorted(loop.body):
        block = cfg.blocks[block_id]
        terminator_pc = block.terminator_pc
        terminator = instructions[terminator_pc]
        if terminator.kind is not OpKind.BRANCH:
            continue
        sources = terminator.reads
        # Case A: the branch tests induction/invariant registers directly.
        if any(reg in induction for reg in sources) and all(
            reg in induction or invariant(reg) for reg in sources
        ):
            overhead.add(terminator_pc)
            continue
        # Case B: the branch tests the result of an index comparison defined
        # earlier in the same block (local def-use walk).
        marked_compare: list[int] = []
        feeds_branch = True
        for reg in sources:
            if reg == registers.ZERO:
                continue
            def_pc = _local_def(instructions, block.start, terminator_pc, reg)
            if def_pc is None or not index_comparison(instructions[def_pc]):
                feeds_branch = False
                break
            marked_compare.append(def_pc)
        if feeds_branch and marked_compare:
            overhead.add(terminator_pc)
            overhead.update(marked_compare)

    return LoopInductionInfo(
        loop=loop,
        induction_regs=frozenset(induction),
        overhead_pcs=frozenset(overhead),
    )


def _local_def(instructions, start: int, before: int, reg: int) -> int | None:
    """The pc defining *reg* last before *before* within [start, before)."""
    for pc in range(before - 1, start - 1, -1):
        if reg in instructions[pc].writes:
            return pc
    return None


def loop_overhead_pcs(program: Program, cfg: FunctionCFG) -> frozenset[int]:
    """Union of unroll-overhead pcs over every natural loop of *cfg*."""
    loops = find_loops(cfg)
    if not loops:
        return frozenset()
    idom = loop_dominator_info(cfg)
    overhead: set[int] = set()
    for loop in loops:
        overhead |= analyze_loop(program, cfg, loop, loops, idom).overhead_pcs
    return frozenset(overhead)
