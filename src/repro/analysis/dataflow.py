"""Classic gen/kill dataflow instances over function CFGs.

The paper's object-code analyses are classic bit-vector problems.  The
solvers here are thin wrappers over the generic worklist engine in
:mod:`repro.analysis.static.framework` (which replaced this module's
original hand-rolled round-robin loops); the two canonical instances used
elsewhere in the toolkit and in tests — reaching definitions and live
registers — are unchanged.  The maximal fixpoint of a monotone framework
is unique, so the wrappers return exactly what the round-robin solvers
did, including ``OUT = gen`` for unreachable blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.cfg import FunctionCFG
from repro.analysis.static.framework import Direction, GenKillProblem, solve
from repro.isa import Program


@dataclass
class DataflowResult:
    """Per-block IN/OUT sets of a solved dataflow problem."""

    block_in: list[frozenset]
    block_out: list[frozenset]


def solve_forward(
    cfg: FunctionCFG,
    gen: list[set],
    kill: list[set],
    entry_fact: frozenset = frozenset(),
) -> DataflowResult:
    """Forward may-analysis: OUT[b] = gen[b] ∪ (IN[b] − kill[b]),
    IN[b] = ∪ OUT[p] over predecessors."""
    solved = solve(
        cfg,
        GenKillProblem(Direction.FORWARD, gen, kill, boundary_fact=entry_fact),
    )
    return DataflowResult(block_in=solved.block_in, block_out=solved.block_out)


def solve_backward(
    cfg: FunctionCFG,
    gen: list[set],
    kill: list[set],
    exit_fact: frozenset = frozenset(),
) -> DataflowResult:
    """Backward may-analysis: IN[b] = gen[b] ∪ (OUT[b] − kill[b]),
    OUT[b] = ∪ IN[s] over successors (exit blocks take *exit_fact*)."""
    solved = solve(
        cfg,
        GenKillProblem(Direction.BACKWARD, gen, kill, boundary_fact=exit_fact),
    )
    return DataflowResult(block_in=solved.block_in, block_out=solved.block_out)


def reaching_definitions(program: Program, cfg: FunctionCFG) -> DataflowResult:
    """Reaching definitions; facts are defining pcs."""
    instructions = program.instructions
    def_pcs_of_reg: dict[int, set[int]] = {}
    for block in cfg.blocks:
        for pc in range(block.start, block.end):
            for reg in instructions[pc].writes:
                def_pcs_of_reg.setdefault(reg, set()).add(pc)

    gen: list[set] = []
    kill: list[set] = []
    for block in cfg.blocks:
        block_gen: dict[int, int] = {}  # register -> last defining pc in block
        for pc in range(block.start, block.end):
            for reg in instructions[pc].writes:
                block_gen[reg] = pc
        gen.append(set(block_gen.values()))
        block_kill: set[int] = set()
        for reg, last_pc in block_gen.items():
            block_kill |= def_pcs_of_reg[reg] - {last_pc}
        kill.append(block_kill)
    return solve_forward(cfg, gen, kill)


def live_registers(
    program: Program,
    cfg: FunctionCFG,
    live_out_exit: frozenset = frozenset(),
    call_defines: frozenset = frozenset(),
    ignore_save_reads: bool = False,
) -> DataflowResult:
    """Live registers; facts are register ids.  *live_out_exit* seeds the
    registers considered live when the function returns (e.g. ``$v0``).

    Two opt-in refinements model the calling convention (used by the
    object-code verifier): *call_defines* registers are treated as written
    by every call (at runtime a call does produce ``$v0``/``$f0``, even
    though the ``jal`` instruction's static write set only holds ``$ra``);
    with *ignore_save_reads*, a store to a stack slot does not count as a
    read of the value register — caller-save spills read a register merely
    to preserve it, which is not a use of its value.
    """
    from repro.isa import registers

    instructions = program.instructions
    gen: list[set] = []
    kill: list[set] = []
    for block in cfg.blocks:
        use: set[int] = set()
        define: set[int] = set()
        for pc in range(block.start, block.end):
            instr = instructions[pc]
            reads = set(instr.reads)
            if (
                ignore_save_reads
                and instr.is_store
                and instr.rs == registers.SP
                and instr.rt is not None
            ):
                reads.discard(instr.rt)
            use |= reads - define
            define |= set(instr.writes)
            if instr.is_call:
                define |= call_defines
        gen.append(use)
        kill.append(define)
    return solve_backward(cfg, gen, kill, exit_fact=live_out_exit)


def transfer_per_instruction(
    program: Program,
    cfg: FunctionCFG,
    block_in: list[frozenset],
    step: Callable[[frozenset, int], frozenset],
) -> dict[int, frozenset]:
    """Propagate block IN facts instruction-by-instruction with *step*,
    returning the fact holding just before each pc."""
    facts: dict[int, frozenset] = {}
    for block in cfg.blocks:
        fact = block_in[block.id]
        for pc in range(block.start, block.end):
            facts[pc] = fact
            fact = step(fact, pc)
    return facts
