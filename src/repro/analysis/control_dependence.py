"""Intraprocedural control dependence via reverse dominance frontiers.

Following the paper (§4.4.1): *all of the instructions within a basic block
are immediately control dependent on the branches in the reverse dominance
frontier of the block.*  We compute, for every basic block of every function
CFG, the set of **branch pcs** (conditional branches and computed jumps —
block terminators with more than one successor or an unknown target) on
which the block is immediately control dependent.

Interprocedural control dependence is *not* computed here: following the
paper it is resolved dynamically by the limit analyzer using a stack of
active procedures (see :mod:`repro.core.cdstack`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import EXIT_BLOCK, FunctionCFG
from repro.analysis.dominance import dominance_frontiers, immediate_dominators
from repro.isa import OpKind, Program


@dataclass(frozen=True)
class ControlDependence:
    """Immediate control dependences of one function's blocks.

    ``block_deps[b]`` is the tuple of terminator pcs of the blocks in the
    reverse dominance frontier of block *b*.
    """

    cfg: FunctionCFG
    block_deps: tuple[tuple[int, ...], ...]

    def deps_of_pc(self, pc: int) -> tuple[int, ...]:
        return self.block_deps[self.cfg.block_at(pc).id]


def _reverse_graph(cfg: FunctionCFG) -> tuple[int, list[list[int]], int]:
    """Build the reverse CFG with a real node for the virtual exit.

    Returns ``(n, succs, exit_node)`` where the reverse graph's entry is the
    exit node.
    """
    n = len(cfg.blocks) + 1
    exit_node = len(cfg.blocks)
    succs: list[list[int]] = [[] for _ in range(n)]
    for block in cfg.blocks:
        for succ in block.succs:
            target = exit_node if succ == EXIT_BLOCK else succ
            succs[target].append(block.id)
    return n, succs, exit_node


def compute_control_dependence(program: Program, cfg: FunctionCFG) -> ControlDependence:
    """Compute immediate control dependences for every block of *cfg*."""
    n, rsuccs, exit_node = _reverse_graph(cfg)
    ipostdom = immediate_dominators(n, rsuccs, exit_node)
    rdf = dominance_frontiers(n, rsuccs, ipostdom, exit_node)

    block_deps: list[tuple[int, ...]] = []
    for block in cfg.blocks:
        deps: list[int] = []
        for controller in sorted(rdf[block.id]):
            if controller == exit_node:
                continue
            terminator = cfg.blocks[controller].terminator_pc
            instr = program.instructions[terminator]
            # Only data-dependent control transfers act as control
            # dependence branches.  (A block can appear in an RDF only if it
            # has multiple CFG successors, which our CFGs give exclusively
            # to conditional branches — the check is defensive.)
            if instr.kind is OpKind.BRANCH or instr.is_computed_jump:
                deps.append(terminator)
        block_deps.append(tuple(deps))
    return ControlDependence(cfg=cfg, block_deps=tuple(block_deps))
