"""Natural-loop detection on function CFGs.

A back edge is a CFG edge ``tail -> header`` whose header dominates its
tail; the natural loop of a header is the union of the header and all nodes
that reach some back-edge tail without passing through the header.  Loops
sharing a header are merged, as usual.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import EXIT_BLOCK, FunctionCFG
from repro.analysis.dominance import UNDEFINED, dominates, immediate_dominators


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop: header block, body blocks (incl. header), back edges."""

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]

    @property
    def tails(self) -> tuple[int, ...]:
        return tuple(tail for tail, _ in self.back_edges)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.body


def _forward_graph(cfg: FunctionCFG) -> list[list[int]]:
    return [
        [succ for succ in block.succs if succ != EXIT_BLOCK]
        for block in cfg.blocks
    ]


def find_loops(cfg: FunctionCFG) -> list[NaturalLoop]:
    """All natural loops of *cfg*, outermost-first by body size."""
    succs = _forward_graph(cfg)
    n = len(cfg.blocks)
    if n == 0:
        return []
    idom = immediate_dominators(n, succs, cfg.entry)

    back_edges_by_header: dict[int, list[tuple[int, int]]] = {}
    for tail in range(n):
        if idom[tail] == UNDEFINED:
            continue  # unreachable code cannot form a (meaningful) loop
        for head in succs[tail]:
            if dominates(idom, head, tail, cfg.entry):
                back_edges_by_header.setdefault(head, []).append((tail, head))

    preds: list[list[int]] = [[] for _ in range(n)]
    for node in range(n):
        for succ in succs[node]:
            preds[succ].append(node)

    loops: list[NaturalLoop] = []
    for header, edges in sorted(back_edges_by_header.items()):
        body = {header}
        stack = [tail for tail, _ in edges if tail != header]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(pred for pred in preds[node] if pred not in body)
        loops.append(
            NaturalLoop(header=header, body=frozenset(body), back_edges=tuple(edges))
        )
    loops.sort(key=lambda loop: -len(loop.body))
    return loops


def loop_dominator_info(cfg: FunctionCFG) -> list[int]:
    """Forward immediate dominators of *cfg* (shared by induction analysis)."""
    return immediate_dominators(len(cfg.blocks), _forward_graph(cfg), cfg.entry)
