"""Length-prefixed JSON-over-TCP protocol between coordinator and workers.

Stdlib-only wire format shared by the remote executor backend
(:mod:`repro.jobs.backends.remote`) and the ``repro-worker`` daemon
(:mod:`repro.jobs.worker_daemon`).  Every message is one *frame*::

    u32 json_len | json bytes (UTF-8)  | u32 blob_len | blob bytes

both lengths big-endian.  The JSON object always carries a ``"type"``
key; the blob carries raw artifact bytes for ``artifact`` and ``push``
messages and is empty (``blob_len == 0``) otherwise.  Keeping the
artifact bytes out of the JSON means a 100M-record gzipped trace crosses
the socket once, verbatim, with no base64 inflation — and its sha256
(the PR 5 integrity sidecar) rides in the JSON header so the receiving
side verifies *exactly* the bytes the cache will trust.

Message types
=============

Coordinator → worker:

``hello``     opens a session: ``{"type": "hello", "version": N}``
``job``       one farm job: ``{"type": "job", "payload": {...}}``
``artifact``  reply to ``fetch``: ``{..., "key", "kind", "sha256",
              "found"}`` + blob (empty when not found)
``shutdown``  the coordinator is done with this connection

Worker → coordinator:

``hello``     session accept: ``{"type": "hello", "version": N, "pid"}``
``fetch``     the worker is missing an input artifact:
              ``{"type": "fetch", "kind", "key"}``
``push``      a produced artifact: ``{"type": "push", "kind", "key",
              "sha256"}`` + blob
``done``      job retired: ``{"type": "done", "key", "record",
              "spans": [...]}``
``fail``      job attempt failed: ``{"type": "fail", "key", "kind",
              "message", "artifact_key", "spans": [...]}``

``fail.kind`` reuses the farm's failure vocabulary (``error`` /
``corrupt``); ``artifact_key`` names the producer of a corrupt input so
the engine's heal machinery can re-enqueue it.  ``spans`` carries the
worker's telemetry span records for the job, letting ``repro-trace``
stitch coordinator and worker into one waterfall without shared disks.
"""

from __future__ import annotations

import json
import socket
import struct

#: Protocol version; bumped on any frame or message change.
PROTOCOL_VERSION = 1

#: Refuse frames larger than this (a garbled length prefix otherwise
#: asks for gigabytes); traces are chunk-streamed files well under it.
MAX_FRAME_BYTES = 1 << 31

_LENGTH = struct.Struct(">I")


class ProtocolError(ConnectionError):
    """The peer sent bytes that are not a valid protocol frame."""


def send_frame(sock: socket.socket, message: dict, blob: bytes = b"") -> None:
    """Serialize and send one frame (atomic under a caller-held lock)."""
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES or len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError("frame exceeds MAX_FRAME_BYTES")
    sock.sendall(
        _LENGTH.pack(len(body)) + body + _LENGTH.pack(len(blob)) + blob
    )


def recv_frame(sock: socket.socket) -> tuple[dict, bytes]:
    """Receive one frame; raises :class:`ConnectionError` on EOF/garbage."""
    body = _recv_exact(sock, _recv_length(sock))
    blob = _recv_exact(sock, _recv_length(sock))
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame body: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame body is not a typed message object")
    return message, blob


def _recv_length(sock: socket.socket) -> int:
    length = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))[0]
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    return length


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({remaining} of {count} "
                f"bytes outstanding)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_worker_address(text: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)``, with a helpful error."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address {text!r} is not of the form host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"worker address {text!r} has a non-numeric port")
    if not 0 < port < 65536:
        raise ValueError(f"worker address {text!r} has an out-of-range port")
    return host, port


#: Input artifact kinds each job stage must have locally before running,
#: as (payload key, artifact kind) pairs.
STAGE_INPUTS: dict[str, tuple[tuple[str, str], ...]] = {
    "trace": (),
    "profile": (("trace", "trace"),),
    "analyze": (("trace", "trace"), ("profile", "profile")),
}

#: Artifact kind each job stage produces under its own payload key.
STAGE_OUTPUT: dict[str, str] = {
    "trace": "trace",
    "profile": "profile",
    "analyze": "result",
}
