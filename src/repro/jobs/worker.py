"""Worker-side job execution.

These functions run inside :class:`~concurrent.futures.ProcessPoolExecutor`
workers (or in-process for the serial fallback), so they are plain
top-level functions taking a picklable payload ``dict``.  Workers never
ship :class:`~repro.vm.Trace` or :class:`~repro.core.AnalysisResult`
objects back over the pipe: every artifact travels through the
content-addressed cache — traces in the RTRC binary format of
:mod:`repro.vm.trace_io`, everything else as JSON — and only a small
timing record is returned.

Programs are not shipped either: each worker recompiles the benchmark's
MiniC source locally (compilation is ~3 orders of magnitude cheaper than
tracing) and memoizes it per process via the benchmark compile cache.
Ad-hoc submissions (``repro-serve`` jobs compiled from client-supplied
MiniC rather than a suite benchmark) carry their source in the payload,
since the worker process's :data:`~repro.bench.SUITE` cannot know them.
"""

from __future__ import annotations

import time

from repro import telemetry
from repro.bench import SUITE
from repro.core import LimitAnalyzer, MachineModel
from repro.jobs import faults
from repro.jobs.cache import ArtifactCache
from repro.prediction import ProfilePredictor
from repro.vm import FastVM


def execute_job(payload: dict) -> dict:
    """Run one farm job described by *payload*; return its timing record.

    A ``telemetry`` payload entry names the telemetry directory: worker
    processes configure themselves against it on first use (each process
    appends to its own ``worker-<pid>.jsonl`` sink, merged by the engine
    afterwards).  In the serial in-process case telemetry is already
    configured, so the job's spans land directly in the main sink.

    A ``faults`` payload entry arms the deterministic fault injector for
    this job: pre-stage faults (raise/hang/exit) fire before any work,
    post-store faults (truncate/garbage) damage the artifact the stage
    just wrote — always keyed by (seed, job key, attempt), so a chaotic
    run replays identically.

    A ``trace_ctx`` payload entry carries the submitting process's
    :class:`~repro.telemetry.context.TraceContext`: the ``job.<stage>``
    span (and everything nested under it) is stitched into that trace,
    so ``repro-trace`` reassembles one waterfall across the coordinator
    and every ``worker-<pid>.jsonl`` sink.
    """
    telemetry_dir = payload.get("telemetry")
    if telemetry_dir and not telemetry.enabled():
        telemetry.configure(
            telemetry_dir, worker=True, profile=bool(payload.get("profiling"))
        )
    started = time.time()
    stage = payload["stage"]
    clause = None
    if payload.get("faults"):
        plan = faults.FaultPlan.from_spec(payload["faults"])
        clause = plan.match(stage, payload["key"], payload.get("attempt", 1))
    if clause is not None and clause.mode in ("raise", "hang", "exit"):
        faults.trigger_before(clause, payload)
    trace_ctx = payload.get("trace_ctx")
    with telemetry.span(
        f"job.{stage}", benchmark=payload["benchmark"], key=payload["key"]
    ) as job_span, telemetry.profiled(f"job-{stage}-{payload['benchmark']}"):
        if trace_ctx:
            job_span.link(
                trace_ctx.get("trace_id"), trace_ctx.get("parent_id")
            )
        if stage == "trace":
            _trace_job(payload)
        elif stage == "profile":
            _profile_job(payload)
        elif stage == "analyze":
            _analysis_job(payload)
        else:
            raise ValueError(f"unknown job stage {stage!r}")
    if clause is not None and clause.mode in ("truncate", "garbage"):
        faults.corrupt_artifact(clause, _artifact_path(payload))
    telemetry.flush()
    return {
        "key": payload["key"],
        "stage": stage,
        "benchmark": payload["benchmark"],
        "seconds": time.time() - started,
    }


def _artifact_path(payload: dict):
    """On-disk location of the artifact this job's stage produces."""
    cache = ArtifactCache(payload["cache_dir"])
    lookup = {
        "trace": cache.trace_path,
        "profile": cache.profile_path,
        "analyze": cache.result_path,
    }
    return lookup[payload["stage"]](payload["key"])


#: Per-process memo of ad-hoc programs (name embeds the source digest).
_ADHOC_PROGRAMS: dict = {}


def _program(payload: dict):
    spec = SUITE.get(payload["benchmark"])
    if spec is not None:
        return spec.compile(payload["scale"])
    source = payload.get("source")
    if source is None:
        raise KeyError(
            f"unknown benchmark {payload['benchmark']!r} and the payload "
            f"carries no inline MiniC source"
        )
    name = payload["benchmark"]
    program = _ADHOC_PROGRAMS.get(name)
    if program is None:
        from repro.lang import compile_source

        program = _ADHOC_PROGRAMS[name] = compile_source(source, name=name)
    return program


def _trace_job(payload: dict) -> None:
    # Specialized VM, streamed straight into the cache: the trace never
    # materializes in worker memory, so the budget is disk-bound only.
    cache = ArtifactCache(payload["cache_dir"])
    program = _program(payload)
    with cache.store_trace_stream(payload["key"], program) as writer:
        FastVM(program).run(max_steps=payload["max_steps"], sink=writer)


def _profile_job(payload: dict) -> None:
    cache = ArtifactCache(payload["cache_dir"])
    reader = cache.open_trace_reader(payload["trace"], _program(payload))
    cache.store_profile(payload["key"], ProfilePredictor.from_source(reader))


def _analysis_job(payload: dict) -> None:
    cache = ArtifactCache(payload["cache_dir"])
    program = _program(payload)
    reader = cache.open_trace_reader(payload["trace"], program)
    predictor = cache.load_profile(payload["profile"])
    result = LimitAnalyzer(program).analyze(
        reader,
        models=[MachineModel(label) for label in payload["models"]],
        predictor=predictor,
        perfect_unrolling=payload["perfect_unrolling"],
        perfect_inlining=payload["perfect_inlining"],
        collect_misprediction_stats=payload["misprediction_stats"],
        engine=payload.get("engine", "fused"),
    )
    cache.store_result(payload["key"], result)
