"""Declarative descriptions of the artifacts an experiment needs.

Each experiment module exposes ``requirements(config)`` returning a list
of these requests; the CLI pools the requests of every selected
experiment and hands them to the engine, which expands them into a
deduplicated :class:`~repro.jobs.engine.JobGraph` of compile → trace →
profile → analysis jobs.

Fields left at ``None`` inherit from the session's
:class:`~repro.experiments.runner.RunConfig` (workload scale, trace
budget), so the same request list adapts to ``--max-steps`` / ``--scale``.

Requests describe *what* must exist, never *how* reliably it is
produced: retry budgets, timeouts, and fault injection are run-level
policy (:class:`~repro.jobs.retry.RetryPolicy`,
:mod:`repro.jobs.faults`) applied by the execution engine, so the same
request list behaves identically under a chaotic run and a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import ALL_MODELS, MachineModel


@dataclass(frozen=True)
class TraceRequest:
    """Request the trace (and branch profile) of one benchmark."""

    benchmark: str
    max_steps: int | None = None  # None: RunConfig.max_steps


@dataclass(frozen=True)
class AnalysisRequest:
    """Request one benchmark analyzed under one analyzer option set.

    Implies the benchmark's trace and profile.  ``models`` is ``None``
    for the full model set (the default of ``SuiteRunner.analyze``).
    """

    benchmark: str
    models: tuple[MachineModel, ...] | None = None
    perfect_unrolling: bool = True
    perfect_inlining: bool = True
    collect_misprediction_stats: bool = False
    max_steps: int | None = None  # None: RunConfig.max_steps

    @property
    def model_labels(self) -> tuple[str, ...]:
        models = ALL_MODELS if self.models is None else self.models
        return tuple(model.label for model in models)


Request = TraceRequest | AnalysisRequest
