"""Retry policy for farm jobs: bounded attempts, deterministic backoff,
wall-clock timeouts.

A failed job attempt is retried up to ``max_attempts`` times with
exponential backoff.  The jitter folded into each delay is
*deterministic* — a hash of (job key, attempt) — so two identically
configured runs retry on identical schedules, keeping chaotic runs
replayable (the same property the fault injector guarantees on the
failure side).

``job_timeout`` bounds one attempt's wall clock.  Pool workers that
exceed it are killed and their pool rebuilt; for in-process execution
the bound is enforced with ``SIGALRM`` where available (main thread,
POSIX) and skipped otherwise — an in-process hang cannot be preempted
portably.
"""

from __future__ import annotations

import hashlib
import signal
import threading
from dataclasses import dataclass


class JobTimeout(Exception):
    """A job attempt exceeded its wall-clock budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry configuration for one farm run."""

    #: Total attempts per job (1 = no retries).
    max_attempts: int = 3
    #: Delay before the second attempt, in seconds.
    backoff_base: float = 0.1
    #: Multiplier applied per additional failed attempt.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay, in seconds.
    backoff_cap: float = 5.0
    #: Deterministic jitter as a fraction of the delay (0 disables).
    jitter: float = 0.5
    #: Wall-clock budget per job attempt, in seconds (None: unbounded).
    job_timeout: float | None = None
    #: Consecutive process-pool rebuilds tolerated before degrading to
    #: serial in-process execution.
    max_pool_rebuilds: int = 3

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be non-negative")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retrying *key* after failed *attempt*.

        Deterministic: exponential in the attempt number, plus a jitter
        term hashed from (key, attempt).
        """
        base = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_cap,
        )
        return base * (1.0 + self.jitter * deterministic_fraction(key, attempt))


def deterministic_fraction(key: str, attempt: int) -> float:
    """Uniform [0, 1) draw that is a pure function of (key, attempt)."""
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def call_with_timeout(fn, argument, timeout: float | None):
    """Run ``fn(argument)`` under a wall-clock budget, in-process.

    Uses an interval timer + ``SIGALRM`` so a hung job raises
    :class:`JobTimeout` mid-flight.  Only possible on the main thread of
    a POSIX process; elsewhere the call runs unbounded (the process-pool
    path enforces timeouts by killing workers instead).
    """
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return fn(argument)

    def _expired(signum, frame):
        raise JobTimeout(f"job exceeded its {timeout:.1f}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(argument)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
