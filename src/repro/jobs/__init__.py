"""Parallel experiment farm with a content-addressed artifact cache.

Turns ``repro-experiments`` from a one-shot serial script into an
incremental farm: work is sharded at (benchmark × stage) granularity —
compile, trace, profile, analysis — dispatched through a pluggable
executor backend (in-process, local process pool, or remote
``repro-worker`` daemons over TCP; see ``docs/distributed.md``), and
every artifact is stored on disk under a content hash so re-running
experiments only recomputes what changed.  See ``docs/jobs.md``.

The farm is also the pipeline's reliability substrate: artifacts carry
sidecar checksums and corrupt entries are quarantined and re-produced,
failed jobs are retried under a bounded :class:`RetryPolicy`, hung jobs
are timed out, dead jobs are quarantined with full provenance, retired
work is journaled for ``--resume``, and a deterministic fault injector
(:mod:`repro.jobs.faults`) exercises all of it on demand.  See
``docs/robustness.md``.
"""

from repro.jobs.backends import (
    BACKEND_NAMES,
    BackendCapabilities,
    Completion,
    ExecutorBackend,
    WorkerLost,
)
from repro.jobs.cache import ArtifactCache
from repro.jobs.engine import (
    ExecutionEngine,
    Job,
    JobGraph,
    Planner,
    RequestKeys,
    RunJournal,
    run_requests,
)
from repro.jobs.faults import FaultClause, FaultPlan, FaultSpecError, InjectedFault
from repro.jobs.report import (
    DEAD,
    HIT,
    RESUMED,
    RUN,
    FailureRecord,
    FarmReport,
    JobRecord,
)
from repro.jobs.requests import AnalysisRequest, Request, TraceRequest
from repro.jobs.retry import JobTimeout, RetryPolicy

__all__ = [
    "AnalysisRequest",
    "ArtifactCache",
    "BACKEND_NAMES",
    "BackendCapabilities",
    "Completion",
    "DEAD",
    "ExecutionEngine",
    "ExecutorBackend",
    "WorkerLost",
    "FailureRecord",
    "FarmReport",
    "FaultClause",
    "FaultPlan",
    "FaultSpecError",
    "HIT",
    "InjectedFault",
    "Job",
    "JobGraph",
    "JobRecord",
    "JobTimeout",
    "Planner",
    "RESUMED",
    "RUN",
    "Request",
    "RequestKeys",
    "RetryPolicy",
    "RunJournal",
    "TraceRequest",
    "run_requests",
]
