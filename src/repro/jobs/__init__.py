"""Parallel experiment farm with a content-addressed artifact cache.

Turns ``repro-experiments`` from a one-shot serial script into an
incremental farm: work is sharded at (benchmark × stage) granularity —
compile, trace, profile, analysis — dispatched across a process pool,
and every artifact is stored on disk under a content hash so re-running
experiments only recomputes what changed.  See ``docs/jobs.md``.
"""

from repro.jobs.cache import ArtifactCache
from repro.jobs.engine import ExecutionEngine, Job, JobGraph, Planner
from repro.jobs.report import HIT, RUN, FarmReport, JobRecord
from repro.jobs.requests import AnalysisRequest, Request, TraceRequest

__all__ = [
    "AnalysisRequest",
    "ArtifactCache",
    "ExecutionEngine",
    "FarmReport",
    "HIT",
    "Job",
    "JobGraph",
    "JobRecord",
    "Planner",
    "RUN",
    "Request",
    "TraceRequest",
]
