"""Content-addressed cache keys for experiment artifacts.

Every artifact the farm produces — a compiled listing, a trace, a branch
profile, an analysis result — is stored under a key that is a SHA-256
digest of *everything that determines its content*:

* the artifact kind and the cache schema version (:data:`SCHEMA`);
* the package version (``repro.__version__``), so upgrades never serve
  stale artifacts produced by older code;
* the RTRC trace-format version for trace artifacts;
* the benchmark's generated MiniC source (compile keys) or the compiled
  program's *fingerprint* — a digest of its disassembled object code —
  for everything downstream, so any change to the source or the code
  generator invalidates dependent artifacts;
* the workload scale, the trace budget, and the analyzer option set.

Keys are pure functions of their inputs: two processes (or two machines)
computing the key for the same work arrive at the same address, which is
what lets workers ship artifacts to each other through the cache.
"""

from __future__ import annotations

import hashlib
import json

from repro._version import __version__
from repro.vm.trace_io import VERSION as RTRC_VERSION

#: Bump when the on-disk artifact layout, JSON shapes, or the analyzer
#: internals that produce result artifacts change.  Schema 2: the fused
#: single-pass analyzer engine replaced the per-model sweep as the
#: default producer of analysis results.  Schema 3: every artifact
#: gained a sidecar checksum and artifacts without one are treated as
#: absent, so pre-integrity caches re-produce rather than half-verify.
SCHEMA = 3


def _digest(material: dict) -> str:
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fingerprint_text(text: str) -> str:
    """Digest of a program's disassembled object code (its "bytes")."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def compile_key(benchmark: str, scale: int, source: str) -> str:
    """Key of the compile stage: benchmark source at one workload scale."""
    return _digest(
        {
            "kind": "compile",
            "schema": SCHEMA,
            "repro": __version__,
            "benchmark": benchmark,
            "scale": scale,
            "source": source,
        }
    )


def trace_key(program_fingerprint: str, scale: int, max_steps: int) -> str:
    """Key of the trace stage: one VM run of one compiled program."""
    return _digest(
        {
            "kind": "trace",
            "schema": SCHEMA,
            "repro": __version__,
            "rtrc": RTRC_VERSION,
            "program": program_fingerprint,
            "scale": scale,
            "max_steps": max_steps,
        }
    )


def profile_key(trace: str) -> str:
    """Key of the profile stage: branch directions trained on one trace."""
    return _digest(
        {
            "kind": "profile",
            "schema": SCHEMA,
            "repro": __version__,
            "trace": trace,
            "predictor": "profile",
        }
    )


def result_key(
    trace: str,
    models: tuple[str, ...],
    perfect_unrolling: bool,
    perfect_inlining: bool,
    collect_misprediction_stats: bool,
) -> str:
    """Key of an analysis stage: one trace under one analyzer option set.

    ``models`` are machine-model labels; they are sorted so that the same
    *set* of models always maps to the same artifact regardless of request
    order.
    """
    return _digest(
        {
            "kind": "result",
            "schema": SCHEMA,
            "repro": __version__,
            "trace": trace,
            "predictor": "profile",
            "models": sorted(models),
            "perfect_unrolling": perfect_unrolling,
            "perfect_inlining": perfect_inlining,
            "misprediction_stats": collect_misprediction_stats,
        }
    )
