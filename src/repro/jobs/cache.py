"""Persistent, content-addressed artifact store (default ``.repro-cache/``).

Layout::

    <root>/
        asm/<key>.s             disassembled object code (compile stage)
        traces/<key>.rtrc.gz    RTRC binary traces (trace stage)
        profiles/<key>.json     trained branch directions (profile stage)
        results/<key>.json      serialized AnalysisResults (analysis stage)

Artifacts are immutable: a key fully determines its content (see
:mod:`repro.jobs.keys`), so writers never need to invalidate — a new
input produces a new key.  Writes go through a temporary file followed by
an atomic :func:`os.replace`, so concurrent workers racing to produce the
same artifact are harmless (last writer wins with identical bytes) and a
killed worker never leaves a half-written artifact at a live address.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.core.results import AnalysisResult
from repro.isa import Program
from repro.prediction.profile import ProfilePredictor
from repro.vm.trace import Trace
from repro.vm.trace_io import load_trace, save_trace


class ArtifactCache:
    """On-disk artifact store addressed by content keys."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- paths ---------------------------------------------------------

    def asm_path(self, key: str) -> Path:
        return self.root / "asm" / f"{key}.s"

    def trace_path(self, key: str) -> Path:
        return self.root / "traces" / f"{key}.rtrc.gz"

    def profile_path(self, key: str) -> Path:
        return self.root / "profiles" / f"{key}.json"

    def result_path(self, key: str) -> Path:
        return self.root / "results" / f"{key}.json"

    # -- existence -----------------------------------------------------

    def has_asm(self, key: str) -> bool:
        return self.asm_path(key).is_file()

    def has_trace(self, key: str) -> bool:
        return self.trace_path(key).is_file()

    def has_profile(self, key: str) -> bool:
        return self.profile_path(key).is_file()

    def has_result(self, key: str) -> bool:
        return self.result_path(key).is_file()

    # -- compile stage -------------------------------------------------

    def store_asm(self, key: str, text: str) -> None:
        self._write_bytes(self.asm_path(key), text.encode("utf-8"))

    def load_asm(self, key: str) -> str:
        return self.asm_path(key).read_text(encoding="utf-8")

    # -- trace stage ---------------------------------------------------

    def store_trace(self, key: str, trace: Trace) -> None:
        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = _tmp_sibling(path)
        try:
            # save_trace picks compression from the suffix; keep .gz on
            # the temporary file so the final artifact really is gzipped.
            save_trace(trace, tmp)
            os.replace(tmp, path)
        finally:
            _discard(tmp)

    def load_trace(self, key: str, program: Program) -> Trace:
        return load_trace(self.trace_path(key), program)

    # -- profile stage -------------------------------------------------

    def store_profile(self, key: str, predictor: ProfilePredictor) -> None:
        payload = {
            "directions": {
                str(pc): taken for pc, taken in predictor.direction_map().items()
            },
            "default_taken": predictor.default_taken,
        }
        self._write_json(self.profile_path(key), payload)

    def load_profile(self, key: str) -> ProfilePredictor:
        payload = json.loads(self.profile_path(key).read_text(encoding="utf-8"))
        directions = {int(pc): taken for pc, taken in payload["directions"].items()}
        return ProfilePredictor(directions, default_taken=payload["default_taken"])

    # -- analysis stage ------------------------------------------------

    def store_result(self, key: str, result: AnalysisResult) -> None:
        self._write_json(self.result_path(key), result.to_json())

    def load_result(self, key: str) -> AnalysisResult:
        payload = json.loads(self.result_path(key).read_text(encoding="utf-8"))
        return AnalysisResult.from_json(payload)

    # -- plumbing ------------------------------------------------------

    def _write_json(self, path: Path, payload: dict) -> None:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._write_bytes(path, text.encode("utf-8"))

    def _write_bytes(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = _tmp_sibling(path)
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            _discard(tmp)


def _tmp_sibling(path: Path) -> Path:
    handle, name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=path.suffix
    )
    os.close(handle)
    return Path(name)


def _discard(tmp: Path) -> None:
    try:
        tmp.unlink()
    except FileNotFoundError:
        pass
