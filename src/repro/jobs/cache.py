"""Persistent, content-addressed artifact store (default ``.repro-cache/``).

Layout::

    <root>/
        asm/<key>.s             disassembled object code (compile stage)
        traces/<key>.rtrc.gz    RTRC binary traces (trace stage)
        profiles/<key>.json     trained branch directions (profile stage)
        results/<key>.json      serialized AnalysisResults (analysis stage)
        corrupt/                quarantined artifacts that failed verification
        journal/<digest>.jsonl  per-invocation retirement journals (resume)

Artifacts are immutable: a key fully determines its content (see
:mod:`repro.jobs.keys`), so writers never need to invalidate — a new
input produces a new key.

**Concurrency invariant (atomic rename).**  Every write — artifact and
sidecar alike — lands in a uniquely named temporary sibling first and is
published with an atomic :func:`os.replace` to its final, content-keyed
address.  A reader therefore observes either no file or complete bytes,
never a torn write, and concurrent producers racing to store the same
key are harmless: keys are content addresses, so the racers carry
identical bytes and last-writer-wins changes nothing.  This is what lets
any number of execution engines — pool workers of one farm run, several
``repro-experiments`` invocations, or a long-lived ``repro-serve``
process next to ad-hoc batch runs — share one cache directory with no
locking.  The only cross-process ordering rule is embedded in
:meth:`ArtifactCache._present`: the artifact is replaced *before* its
sidecar, and presence requires both, so a reader never trusts an
artifact whose checksum has not been published yet.

Every artifact carries a sidecar checksum (``<name>.sha256``) written
from the exact bytes stored.  Loads verify it: a mismatch (torn write,
bit rot, a fault-injected truncation) moves the artifact and its sidecar
into ``corrupt/`` and raises :class:`~repro.vm.trace_io.
CorruptArtifactError`, whose ``key`` lets the execution engine re-produce
exactly the damaged artifact instead of crashing the run.  An artifact
without its sidecar (a crash landed between the two writes) is treated as
absent, so it is transparently re-produced.  Temporary files abandoned by
killed writers are reclaimed by :meth:`ArtifactCache.sweep_orphans`,
which ``repro-serve`` runs once at startup; stores themselves never
delete temp siblings, because a temp file they can see might belong to a
*live* concurrent writer, not a dead one.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

from repro import telemetry
from repro.core.results import AnalysisResult
from repro.isa import Program
from repro.prediction.profile import ProfilePredictor
from repro.vm.trace import Trace
from repro.vm.trace_io import (
    DEFAULT_CHUNK_RECORDS,
    CorruptArtifactError,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    load_trace,
    save_trace,
)

#: Sidecar suffix appended to every artifact file name.
CHECKSUM_SUFFIX = ".sha256"

#: Subdirectory quarantined artifacts are moved into.
CORRUPT_DIR = "corrupt"


#: Artifact subdirectories swept by :meth:`ArtifactCache.sweep_orphans`.
ARTIFACT_DIRS = ("asm", "traces", "profiles", "results")


class ArtifactCache:
    """On-disk artifact store addressed by content keys."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def sweep_orphans(self) -> int:
        """Delete every orphaned ``.tmp`` sibling in the cache; return count.

        Temporary files are dot-prefixed (``.<artifact>.<random>``) and
        only live between a writer's ``mkstemp`` and its ``os.replace``,
        so with no writers running, any found by a scan belong to
        writers that died mid-store.  Long-lived services call this once
        at startup.  Calling it while another process is actively
        storing is safe for the *cache* — a racing writer whose temp
        file vanishes under it treats the publish as lost to an
        identical-bytes racer (see ``_replace_published``) — but it can
        waste that writer's work, so don't run it periodically.
        """
        removed = 0
        for kind in ARTIFACT_DIRS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for orphan in directory.glob(".*"):
                if orphan.is_file():
                    _discard(orphan)
                    removed += 1
        return removed

    # -- paths ---------------------------------------------------------

    def asm_path(self, key: str) -> Path:
        return self.root / "asm" / f"{key}.s"

    def trace_path(self, key: str) -> Path:
        return self.root / "traces" / f"{key}.rtrc.gz"

    def profile_path(self, key: str) -> Path:
        return self.root / "profiles" / f"{key}.json"

    def result_path(self, key: str) -> Path:
        return self.root / "results" / f"{key}.json"

    def checksum_path(self, path: Path) -> Path:
        return path.parent / (path.name + CHECKSUM_SUFFIX)

    #: Artifact kind → path method, the vocabulary of the remote
    #: push/pull protocol (:mod:`repro.jobs.protocol`).
    KINDS = ("asm", "trace", "profile", "result")

    def artifact_path(self, kind: str, key: str) -> Path:
        """Path of the *kind* artifact for *key* (protocol plumbing)."""
        lookup = {
            "asm": self.asm_path,
            "trace": self.trace_path,
            "profile": self.profile_path,
            "result": self.result_path,
        }
        try:
            return lookup[kind](key)
        except KeyError:
            raise ValueError(f"unknown artifact kind {kind!r}") from None

    def has_artifact(self, kind: str, key: str) -> bool:
        return self._present(self.artifact_path(kind, key))

    def load_artifact_bytes(self, kind: str, key: str) -> tuple[bytes, str]:
        """Verified raw bytes + sha256 of one artifact, for shipping.

        The returned digest is the sidecar's (re-verified against the
        bytes read), so a receiver can store bytes and checksum without
        trusting the wire.
        """
        data = self._verified_bytes(self.artifact_path(kind, key), key)
        return data, hashlib.sha256(data).hexdigest()

    def store_artifact_bytes(
        self, kind: str, key: str, data: bytes, sha256: str
    ) -> None:
        """Store shipped artifact bytes, verifying the sender's digest.

        Raises :class:`CorruptArtifactError` (without touching the
        cache) when the bytes do not hash to *sha256* — a transfer that
        damaged an artifact must not publish it.
        """
        actual = hashlib.sha256(data).hexdigest()
        if actual != sha256:
            raise CorruptArtifactError(
                f"shipped {kind} artifact {key[:12]} arrived damaged "
                f"({actual[:12]} != {sha256[:12]})",
                key=key,
            )
        self._write_bytes(self.artifact_path(kind, key), data)

    def corrupt_dir(self) -> Path:
        return self.root / CORRUPT_DIR

    # -- existence -----------------------------------------------------

    def _present(self, path: Path) -> bool:
        """An artifact exists only with its sidecar checksum.

        A lone artifact means the writer died between the artifact
        replace and the sidecar write; treating it as absent makes the
        next producer re-store both halves.
        """
        return path.is_file() and self.checksum_path(path).is_file()

    def has_asm(self, key: str) -> bool:
        return self._present(self.asm_path(key))

    def has_trace(self, key: str) -> bool:
        return self._present(self.trace_path(key))

    def has_profile(self, key: str) -> bool:
        return self._present(self.profile_path(key))

    def has_result(self, key: str) -> bool:
        return self._present(self.result_path(key))

    # -- compile stage -------------------------------------------------

    def store_asm(self, key: str, text: str) -> None:
        self._write_bytes(self.asm_path(key), text.encode("utf-8"))

    def load_asm(self, key: str) -> str:
        return self._verified_bytes(self.asm_path(key), key).decode("utf-8")

    # -- trace stage ---------------------------------------------------

    def store_trace(self, key: str, trace: Trace) -> None:
        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = _tmp_sibling(path)
        try:
            # save_trace picks compression from the suffix; keep .gz on
            # the temporary file so the final artifact really is gzipped.
            save_trace(trace, tmp)
            digest = _sha256_file(tmp)
            _replace_published(tmp, path)
        finally:
            _discard(tmp)
        self._write_checksum(path, digest)

    def load_trace(self, key: str, program: Program) -> Trace:
        path = self.trace_path(key)
        self._verified_bytes(path, key)
        try:
            return load_trace(path, program)
        except (TraceFormatError, EOFError, gzip.BadGzipFile) as exc:
            # Checksum-consistent but unparseable: the artifact was
            # *stored* damaged (e.g. a fault-injected torn write that
            # also rewrote the sidecar).  Quarantine it all the same.
            raise self._quarantine(path, key, f"unreadable trace: {exc}") from exc

    @contextmanager
    def store_trace_stream(
        self,
        key: str,
        program: Program,
        chunk_size: int = DEFAULT_CHUNK_RECORDS,
    ):
        """Stream a trace artifact into the cache with bounded memory.

        Yields a :class:`TraceWriter` bound to a temporary sibling; a VM
        run feeds it chunk by chunk (``FastVM(...).run(sink=writer)``),
        so the trace never materializes in the producer.  On clean exit
        the finished file is checksummed and atomically published
        exactly like :meth:`store_trace`; on error nothing is published
        and the temp file is discarded.
        """
        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = _tmp_sibling(path)
        digest: str | None = None
        try:
            writer = TraceWriter(tmp, program, chunk_size=chunk_size)
            try:
                yield writer
            except BaseException:
                writer.abort()
                raise
            writer.close()
            digest = _sha256_file(tmp)
            _replace_published(tmp, path)
        finally:
            _discard(tmp)
        self._write_checksum(path, digest)

    def open_trace_reader(self, key: str, program: Program) -> TraceReader:
        """Open a streaming reader on a cached trace (bounded memory).

        Integrity is verified by hashing the file in fixed-size buffers —
        never holding the artifact in memory — and any parse failure,
        including one surfacing mid-stream from :meth:`TraceReader.chunks`,
        quarantines the artifact exactly like :meth:`load_trace`.
        """
        path = self.trace_path(key)
        self._verified_file(path, key)
        try:
            return _QuarantiningTraceReader(path, program, self, key)
        except (TraceFormatError, EOFError, gzip.BadGzipFile) as exc:
            raise self._quarantine(path, key, f"unreadable trace: {exc}") from exc

    # -- profile stage -------------------------------------------------

    def store_profile(self, key: str, predictor: ProfilePredictor) -> None:
        payload = {
            "directions": {
                str(pc): taken for pc, taken in predictor.direction_map().items()
            },
            "default_taken": predictor.default_taken,
        }
        self._write_json(self.profile_path(key), payload)

    def load_profile(self, key: str) -> ProfilePredictor:
        payload = self._verified_json(self.profile_path(key), key)
        directions = {int(pc): taken for pc, taken in payload["directions"].items()}
        return ProfilePredictor(directions, default_taken=payload["default_taken"])

    # -- analysis stage ------------------------------------------------

    def store_result(self, key: str, result: AnalysisResult) -> None:
        self._write_json(self.result_path(key), result.to_json())

    def load_result(self, key: str) -> AnalysisResult:
        payload = self._verified_json(self.result_path(key), key)
        try:
            return AnalysisResult.from_json(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise self._quarantine(
                self.result_path(key), key, f"unreadable result: {exc}"
            ) from exc

    # -- integrity -----------------------------------------------------

    def _verified_bytes(self, path: Path, key: str) -> bytes:
        """Read *path*, verifying its sidecar checksum.

        On mismatch (or a missing sidecar) the artifact is quarantined
        and :class:`CorruptArtifactError` is raised.
        """
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise self._quarantine(path, key, "artifact file is missing")
        sidecar = self.checksum_path(path)
        try:
            expected = sidecar.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            raise self._quarantine(path, key, "checksum sidecar is missing")
        actual = hashlib.sha256(data).hexdigest()
        if actual != expected:
            raise self._quarantine(
                path, key, f"checksum mismatch ({actual[:12]} != {expected[:12]})"
            )
        return data

    def _verified_file(self, path: Path, key: str) -> None:
        """Checksum-verify *path* without reading it into memory.

        The streaming sibling of :meth:`_verified_bytes`: same sidecar
        contract and quarantine behaviour, but the artifact is hashed in
        1 MiB buffers, so a 100M-record trace costs no resident memory.
        """
        if not path.is_file():
            raise self._quarantine(path, key, "artifact file is missing")
        sidecar = self.checksum_path(path)
        try:
            expected = sidecar.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            raise self._quarantine(path, key, "checksum sidecar is missing")
        actual = _sha256_file(path)
        if actual != expected:
            raise self._quarantine(
                path, key, f"checksum mismatch ({actual[:12]} != {expected[:12]})"
            )

    def _verified_json(self, path: Path, key: str) -> dict:
        data = self._verified_bytes(path, key)
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise self._quarantine(path, key, f"unparseable JSON: {exc}") from exc

    def _quarantine(
        self, path: Path, key: str, reason: str
    ) -> CorruptArtifactError:
        """Move a damaged artifact (and sidecar) into ``corrupt/``.

        Returns the exception for the caller to raise, so call sites
        read ``raise self._quarantine(...)`` and control flow is
        explicit.
        """
        destination = self.corrupt_dir() / path.name
        destination.parent.mkdir(parents=True, exist_ok=True)
        for victim in (path, self.checksum_path(path)):
            try:
                os.replace(victim, destination.parent / victim.name)
            except FileNotFoundError:
                pass
        kind = path.parent.name
        if telemetry.enabled():
            telemetry.METRICS.counter(
                "repro_jobs_corrupt_artifacts_total"
            ).inc(kind=kind)
        return CorruptArtifactError(
            f"corrupt {kind} artifact {path.name}: {reason} "
            f"(quarantined to {destination})",
            key=key,
            path=str(destination),
        )

    # -- plumbing ------------------------------------------------------

    def _write_json(self, path: Path, payload: dict) -> None:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._write_bytes(path, text.encode("utf-8"))

    def _write_bytes(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = _tmp_sibling(path)
        try:
            tmp.write_bytes(data)
            _replace_published(tmp, path)
        finally:
            _discard(tmp)
        self._write_checksum(path, hashlib.sha256(data).hexdigest())

    def _write_checksum(self, path: Path, digest: str) -> None:
        """Atomically write *path*'s sidecar (no sidecar-of-sidecar)."""
        sidecar = self.checksum_path(path)
        tmp = _tmp_sibling(sidecar)
        try:
            tmp.write_text(digest + "\n", encoding="utf-8")
            _replace_published(tmp, sidecar)
        finally:
            _discard(tmp)


class _QuarantiningTraceReader(TraceReader):
    """A :class:`TraceReader` whose mid-stream failures quarantine.

    Checksum verification happens before the reader is handed out, but a
    checksum-consistent artifact can still be unparseable (stored damaged
    under fault injection).  Construction and the lazy :meth:`chunks` /
    :meth:`to_trace` paths translate those failures into the cache's
    quarantine-and-raise protocol so the farm can re-produce the trace.
    """

    def __init__(self, path: Path, program: Program, cache: ArtifactCache, key: str):
        self._cache = cache
        self._key = key
        super().__init__(path, program)

    def chunks(self):
        # ``to_trace`` funnels through here too, so one override covers
        # both the streaming and materializing consumers.
        try:
            yield from super().chunks()
        except (TraceFormatError, EOFError, gzip.BadGzipFile) as exc:
            raise self._cache._quarantine(
                Path(self.path), self._key, f"unreadable trace: {exc}"
            ) from exc


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _replace_published(tmp: Path, path: Path) -> None:
    """Publish *tmp* at *path*, tolerating a racer that got there first.

    If the temp file vanished out from under this writer (an aggressive
    :meth:`ArtifactCache.sweep_orphans` on a live cache), the publish is
    only lost if nobody else published: keys are content addresses, so a
    racer's bytes at *path* are identical to ours and the store already
    succeeded from the reader's point of view.
    """
    try:
        os.replace(tmp, path)
    except FileNotFoundError:
        if not path.exists():
            raise


def _tmp_sibling(path: Path) -> Path:
    handle, name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=path.suffix
    )
    os.close(handle)
    return Path(name)


def _discard(tmp: Path) -> None:
    try:
        tmp.unlink()
    except FileNotFoundError:
        pass
