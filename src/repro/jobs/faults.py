"""Deterministic fault injection for the experiment farm.

The farm's recovery machinery — retries, timeouts, quarantine, pool
rebuilds — is only trustworthy if it can be exercised on demand, the way
a speculative machine's recovery path is exercised by misspeculation.
This module injects *reproducible* failures into farm jobs: which jobs
fail, how, and on which attempts is a pure function of the fault spec's
seed and the job's content key, so a chaotic run can be replayed
bit-for-bit.

A fault *spec* is a semicolon-separated list of clauses, each a
comma-separated list of ``field=value`` pairs::

    stage=trace,mode=raise,rate=0.5,times=1,seed=42
    mode=exit,rate=0.2,seed=7;stage=analyze,mode=truncate,seed=7

Fields:

``mode`` (required)
    ``raise``    — raise :class:`InjectedFault` before the stage runs
    ``hang``     — sleep ``secs`` seconds (exercises job timeouts)
    ``exit``     — kill the worker process with ``os._exit`` (exercises
    pool rebuilds; converted to ``raise`` for in-process execution,
    which would otherwise kill the coordinator)
    ``truncate`` — after the stage stores its artifact, cut the file to
    half its bytes (exercises checksum quarantine)
    ``garbage``  — overwrite the stored artifact with garbage bytes
``stage``
    Only fault this pipeline stage (``trace``/``profile``/``analyze``);
    default: every stage.
``rate``
    Fraction of job keys the clause selects, decided deterministically
    per (seed, key); default 1.0 (all).
``times``
    Fire only on attempts 1..N, so retries eventually succeed; 0 means
    every attempt (producing dead jobs).  Default 1.
``seed``
    Folded into the key-selection hash; default 0.
``secs``
    Hang duration for ``mode=hang``; default 300.

Specs are armed with ``repro-experiments --inject-faults SPEC`` or the
``REPRO_INJECT_FAULTS`` environment variable, and travel to pool workers
inside job payloads.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

#: Environment variable consulted by the CLI when --inject-faults is absent.
ENV_VAR = "REPRO_INJECT_FAULTS"

MODES = ("raise", "hang", "exit", "truncate", "garbage")

#: Exit status used by ``mode=exit`` worker crashes (recognizable in
#: pool post-mortems; any nonzero status breaks the pool identically).
CRASH_EXIT_STATUS = 13


class InjectedFault(RuntimeError):
    """A deliberately injected, transient job failure."""


class FaultSpecError(ValueError):
    """A fault spec string could not be parsed."""


def _fraction(seed: int, key: str) -> float:
    """Deterministic uniform [0, 1) draw for (seed, key)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultClause:
    """One deterministic failure rule of a fault plan."""

    mode: str
    stage: str | None = None
    rate: float = 1.0
    times: int = 1
    seed: int = 0
    secs: float = 300.0

    def __post_init__(self):
        if self.mode not in MODES:
            raise FaultSpecError(
                f"unknown fault mode {self.mode!r} (choose from {', '.join(MODES)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError(f"rate must be in [0, 1], got {self.rate}")
        if self.times < 0:
            raise FaultSpecError(f"times must be >= 0, got {self.times}")
        if self.secs < 0:
            raise FaultSpecError(f"secs must be >= 0, got {self.secs}")

    def matches(self, stage: str, key: str, attempt: int) -> bool:
        """Does this clause fire for *key*'s *attempt* at *stage*?"""
        if self.stage is not None and self.stage != stage:
            return False
        if self.times and attempt > self.times:
            return False
        if self.rate >= 1.0:
            return True
        return _fraction(self.seed, key) < self.rate

    def to_spec(self) -> str:
        parts = [f"mode={self.mode}"]
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        parts.append(f"rate={self.rate}")
        parts.append(f"times={self.times}")
        parts.append(f"seed={self.seed}")
        parts.append(f"secs={self.secs}")
        return ",".join(parts)


_FIELD_PARSERS = {
    "mode": str,
    "stage": str,
    "rate": float,
    "times": int,
    "seed": int,
    "secs": float,
}


@dataclass(frozen=True)
class FaultPlan:
    """An armed set of fault clauses; the first matching clause fires."""

    clauses: tuple[FaultClause, ...] = ()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``field=value,...;field=value,...`` into a plan."""
        clauses = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields: dict = {}
            for pair in chunk.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                name, _, value = pair.partition("=")
                name = name.strip()
                parser = _FIELD_PARSERS.get(name)
                if parser is None:
                    raise FaultSpecError(
                        f"unknown fault field {name!r} in clause {chunk!r}"
                    )
                try:
                    fields[name] = parser(value.strip())
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad value for {name!r} in clause {chunk!r}: {exc}"
                    ) from exc
            if "mode" not in fields:
                raise FaultSpecError(f"clause {chunk!r} is missing mode=")
            clauses.append(FaultClause(**fields))
        if not clauses:
            raise FaultSpecError("fault spec contains no clauses")
        return cls(tuple(clauses))

    def to_spec(self) -> str:
        """Serialize back to spec syntax (for embedding in job payloads)."""
        return ";".join(clause.to_spec() for clause in self.clauses)

    def match(self, stage: str, key: str, attempt: int) -> FaultClause | None:
        for clause in self.clauses:
            if clause.matches(stage, key, attempt):
                return clause
        return None


def trigger_before(clause: FaultClause, payload: dict) -> None:
    """Fire a pre-stage fault (``raise``/``hang``/``exit``) for one job."""
    stage, key, attempt = payload["stage"], payload["key"], payload.get("attempt", 1)
    tag = f"stage {stage} key {key[:12]} attempt {attempt}"
    if clause.mode == "raise":
        raise InjectedFault(f"injected fault: {tag}")
    if clause.mode == "hang":
        time.sleep(clause.secs)
        # If no timeout reaped us, still fail the attempt so the hang is
        # never mistaken for a successful job.
        raise InjectedFault(f"injected hang elapsed: {tag}")
    if clause.mode == "exit":
        if payload.get("in_process"):
            # os._exit would take down the coordinating process itself.
            raise InjectedFault(f"injected crash (in-process, softened): {tag}")
        os._exit(CRASH_EXIT_STATUS)


def corrupt_artifact(clause: FaultClause, path: Path) -> None:
    """Fire a post-store fault: damage the artifact just written at *path*.

    The sidecar checksum (written from the pristine bytes) is left
    intact, so the damage models a torn write and is caught by
    verification on the next load.
    """
    data = path.read_bytes()
    if clause.mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif clause.mode == "garbage":
        path.write_bytes(b"\x00garbage\xff" * 8)
