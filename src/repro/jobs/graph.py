"""The job graph: schedulable units addressed by their artifact keys.

Split out of :mod:`repro.jobs.engine` so executor backends
(:mod:`repro.jobs.backends`) can type against :class:`Job` without
importing the engine that drives them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work, addressed by its artifact key."""

    key: str
    stage: str  # "trace" | "profile" | "analyze"
    benchmark: str
    payload: dict
    deps: tuple[str, ...] = ()


@dataclass
class JobGraph:
    """Deduplicated DAG of jobs, keyed by artifact address."""

    jobs: dict[str, Job] = field(default_factory=dict)

    def add(self, job: Job) -> None:
        self.jobs.setdefault(job.key, job)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs.values())

    def digest(self) -> str:
        """Stable identity of this graph (the sorted job-key set)."""
        material = "\n".join(sorted(self.jobs))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()
