"""``repro-worker``: a remote execution daemon for the experiment farm.

Listens on a TCP port and serves farm jobs shipped by a coordinator (a
``repro-experiments --backend remote`` or ``repro-serve`` process on any
host) over the length-prefixed JSON protocol of
:mod:`repro.jobs.protocol`.  Each daemon owns a *local* content-addressed
:class:`~repro.jobs.cache.ArtifactCache`: job payloads arrive with their
``cache_dir`` rewritten to it, missing input artifacts are pulled from
the coordinator on demand (``fetch``), and produced artifacts are pushed
back (``push``) — always verified against their sha256 integrity
digests, so a transfer that damages bytes is refused exactly like a torn
local write.

The daemon is deliberately boring: no scheduling, no retries, no
quarantine — all policy stays on the coordinator, where the
:class:`~repro.jobs.engine.ExecutionEngine`'s retry/heal/resume
machinery treats a remote failure like any local one.  One thread per
coordinator connection executes that connection's jobs in arrival order;
the coordinator's per-worker in-flight bound is what pipelines transfer
against compute.

Telemetry: spans recorded while a job runs are harvested from the
daemon's local sink and shipped back inside the ``done``/``fail``
message, so ``repro-trace`` on the coordinator stitches one waterfall
across hosts without a shared filesystem.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import tempfile
import threading
from collections import deque
from pathlib import Path

from repro import telemetry
from repro.jobs import protocol
from repro.jobs.cache import ArtifactCache
from repro.jobs.worker import execute_job
from repro.telemetry.sinks import worker_sink_name
from repro.vm.trace_io import CorruptArtifactError

#: Default location of a worker daemon's local artifact cache.
DEFAULT_CACHE_DIR = ".repro-worker-cache"


class WorkerDaemon:
    """Accepts coordinator connections and executes their jobs."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        telemetry_dir: str | Path | None = None,
        quiet: bool = False,
    ):
        self.cache_dir = Path(cache_dir)
        self.cache = ArtifactCache(self.cache_dir)
        self.telemetry_dir = (
            Path(telemetry_dir) if telemetry_dir is not None else None
        )
        self.quiet = quiet
        self._telemetry_lock = threading.Lock()
        self._span_offset = 0
        self._listener = socket.create_server(
            (host, port), reuse_port=False
        )
        self.host, self.port = self._listener.getsockname()[:2]

    def serve_forever(self) -> None:  # pragma: no cover - process entry
        if not self.quiet:
            print(
                f"repro-worker listening on {self.host}:{self.port} "
                f"(cache {self.cache_dir}, pid {os.getpid()})",
                flush=True,
            )
        while True:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                daemon=True,
            )
            thread.start()

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # -- one coordinator connection --------------------------------------

    def _serve_connection(self, conn: socket.socket, peer: str) -> None:
        """Handshake, then execute this connection's jobs until EOF."""
        jobs: deque[dict] = deque()
        try:
            message, _ = protocol.recv_frame(conn)
            if (
                message.get("type") != "hello"
                or message.get("version") != protocol.PROTOCOL_VERSION
            ):
                protocol.send_frame(
                    conn,
                    {
                        "type": "error",
                        "message": "protocol version mismatch "
                        f"(worker speaks {protocol.PROTOCOL_VERSION})",
                    },
                )
                return
            protocol.send_frame(
                conn,
                {
                    "type": "hello",
                    "version": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid(),
                },
            )
            while True:
                if jobs:
                    self._run_job(conn, jobs.popleft(), jobs)
                    continue
                message, _ = protocol.recv_frame(conn)
                kind = message.get("type")
                if kind == "job":
                    jobs.append(message["payload"])
                elif kind == "shutdown":
                    return
                # anything else between jobs is a stray reply; ignore
        except (ConnectionError, OSError):
            return  # coordinator went away; nothing to clean up
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _run_job(
        self, conn: socket.socket, payload: dict, jobs: deque
    ) -> None:
        """Execute one job against the local cache; report the outcome."""
        payload = dict(payload)
        payload["cache_dir"] = str(self.cache_dir)
        self._localize_telemetry(payload)
        key = payload["key"]
        try:
            self._pull_inputs(conn, payload, jobs)
            record = execute_job(payload)
            kind = protocol.STAGE_OUTPUT[payload["stage"]]
            data, sha256 = self.cache.load_artifact_bytes(kind, key)
            protocol.send_frame(
                conn,
                {"type": "push", "kind": kind, "key": key, "sha256": sha256},
                blob=data,
            )
        except Exception as exc:
            failure_kind = (
                "corrupt" if isinstance(exc, CorruptArtifactError) else "error"
            )
            protocol.send_frame(
                conn,
                {
                    "type": "fail",
                    "key": key,
                    "kind": failure_kind,
                    "message": str(exc) or type(exc).__name__,
                    "artifact_key": getattr(exc, "key", None),
                    "spans": self._harvest_spans(),
                },
            )
            return
        protocol.send_frame(
            conn,
            {
                "type": "done",
                "key": key,
                "record": record,
                "spans": self._harvest_spans(),
            },
        )

    def _pull_inputs(
        self, conn: socket.socket, payload: dict, jobs: deque
    ) -> None:
        """Fetch every input artifact the local cache is missing."""
        for payload_key, kind in protocol.STAGE_INPUTS[payload["stage"]]:
            key = payload[payload_key]
            if self.cache.has_artifact(kind, key):
                continue
            protocol.send_frame(
                conn, {"type": "fetch", "kind": kind, "key": key}
            )
            reply, blob = self._await_artifact(conn, jobs)
            if not reply.get("found"):
                # The coordinator cannot serve the input (missing or
                # quarantined there): name its producer so the engine's
                # corrupt-input heal re-enqueues it.
                raise CorruptArtifactError(
                    f"input {kind} artifact {key[:12]} unavailable at "
                    f"the coordinator",
                    key=key,
                )
            self.cache.store_artifact_bytes(
                reply["kind"], reply["key"], blob, reply["sha256"]
            )

    @staticmethod
    def _await_artifact(
        conn: socket.socket, jobs: deque
    ) -> tuple[dict, bytes]:
        """Next ``artifact`` reply; queues ``job`` frames arriving first."""
        while True:
            message, blob = protocol.recv_frame(conn)
            kind = message.get("type")
            if kind == "artifact":
                return message, blob
            if kind == "job":
                jobs.append(message["payload"])
            elif kind == "shutdown":
                raise ConnectionError("coordinator shut the session down")

    # -- telemetry --------------------------------------------------------

    def _localize_telemetry(self, payload: dict) -> None:
        """Point the job at this daemon's telemetry sink (if any is wanted).

        The coordinator's telemetry directory means nothing on this
        host; when either side wants spans, the daemon lazily creates
        its own directory and rewrites the payload, and the recorded
        spans travel back inside the job's ``done``/``fail`` message.
        """
        wants = bool(payload.get("telemetry")) or self.telemetry_dir is not None
        if not wants:
            payload["telemetry"] = None
            return
        with self._telemetry_lock:
            if self.telemetry_dir is None:
                self.telemetry_dir = Path(
                    tempfile.mkdtemp(prefix="repro-worker-tele-")
                )
        payload["telemetry"] = str(self.telemetry_dir)

    def _harvest_spans(self) -> list[dict]:
        """Span records this daemon wrote since the last harvest."""
        if self.telemetry_dir is None or not telemetry.enabled():
            return []
        telemetry.flush()
        sink = self.telemetry_dir / worker_sink_name()
        spans: list[dict] = []
        with self._telemetry_lock:
            try:
                with open(sink, "r", encoding="utf-8") as stream:
                    stream.seek(self._span_offset)
                    text = stream.read()
                    self._span_offset = stream.tell()
            except FileNotFoundError:
                return []
        import json

        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:  # torn concurrent line
                continue
        return spans


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Serve experiment-farm jobs to remote coordinators "
        "over TCP (see docs/distributed.md).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to listen on (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 picks a free one; the chosen "
                        "port is printed on startup)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="this worker's local artifact cache "
                        f"(default {DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--telemetry-dir", default=None,
                        help="record this worker's spans here (spans are "
                        "also shipped back to coordinators per job)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if args.telemetry_dir:
        telemetry.configure(args.telemetry_dir, worker=True)
    daemon = WorkerDaemon(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        telemetry_dir=args.telemetry_dir,
        quiet=args.quiet,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
