"""Per-job timing and cache hit-rate accounting for a farm run.

Every unit of work the farm considers — one (benchmark × stage × option
set), identified by its content key — is recorded exactly once, either as
``run`` (the job executed and produced its artifact) or ``hit`` (the
artifact was already in the cache and the job was skipped).  Later
sightings of the same key (e.g. a lazy load after a prefetch) are ignored,
so the report reflects what the invocation actually had to do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import telemetry

#: Stage names in pipeline order (used only for display sorting).
STAGES = ("compile", "trace", "profile", "analyze")

RUN = "run"
HIT = "hit"


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one farm job."""

    key: str
    stage: str
    benchmark: str
    status: str  # RUN or HIT
    seconds: float = 0.0
    worker: str = ""
    #: Monotonic timestamp of when the outcome was recorded; with
    #: ``seconds`` this bounds the job's wall-clock window.
    recorded_at: float = 0.0


@dataclass
class FarmReport:
    """Accumulated job records for one experiment invocation."""

    records: dict[str, JobRecord] = field(default_factory=dict)

    def record(
        self,
        key: str,
        stage: str,
        benchmark: str,
        status: str,
        seconds: float = 0.0,
        worker: str = "",
    ) -> None:
        """Record a job outcome (first sighting of a key wins)."""
        if key in self.records:
            return
        self.records[key] = JobRecord(
            key, stage, benchmark, status, seconds, worker, time.perf_counter()
        )
        if telemetry.enabled():
            if status == HIT:
                telemetry.METRICS.counter("repro_jobs_cache_hits_total").inc(
                    stage=stage
                )
            else:
                telemetry.METRICS.counter("repro_jobs_cache_misses_total").inc(
                    stage=stage
                )
                telemetry.METRICS.counter("repro_jobs_stage_seconds_total").inc(
                    seconds, stage=stage
                )

    # -- aggregates ----------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records.values() if r.status == RUN)

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records.values() if r.status == HIT)

    def executed_in(self, stage: str) -> int:
        return sum(
            1
            for r in self.records.values()
            if r.stage == stage and r.status == RUN
        )

    def hits_in(self, stage: str) -> int:
        return sum(
            1
            for r in self.records.values()
            if r.stage == stage and r.status == HIT
        )

    def seconds_in(self, stage: str) -> float:
        """CPU-seconds spent executing *stage* jobs (hits cost nothing)."""
        return sum(
            r.seconds
            for r in self.records.values()
            if r.stage == stage and r.status == RUN
        )

    def wall_in(self, stage: str) -> float:
        """Wall-clock window covered by *stage*'s executed jobs.

        Each record's ``(recorded_at - seconds, recorded_at)`` interval
        approximates when the job ran; the window spans the earliest start
        to the latest finish, so with parallel workers it is smaller than
        the CPU-second sum.
        """
        runs = [
            r
            for r in self.records.values()
            if r.stage == stage and r.status == RUN
        ]
        if not runs:
            return 0.0
        return max(r.recorded_at for r in runs) - min(
            r.recorded_at - r.seconds for r in runs
        )

    @property
    def hit_rate(self) -> float:
        """Percent of jobs satisfied from the cache (100.0 if no jobs)."""
        if not self.records:
            return 100.0
        return 100.0 * self.hits / self.total

    # -- rendering -----------------------------------------------------

    def render(self, per_job: bool = True) -> str:
        """Human-readable report (one summary line plus per-job lines)."""
        lines = []
        stage_order = {stage: i for i, stage in enumerate(STAGES)}
        if per_job:
            ordered = sorted(
                self.records.values(),
                key=lambda r: (stage_order.get(r.stage, len(STAGES)), r.benchmark, r.key),
            )
            for r in ordered:
                timing = f"{r.seconds:8.3f}s" if r.status == RUN else "        -"
                lines.append(
                    f"[farm] {r.stage:<8s} {r.benchmark:<12s} {r.status:<4s} {timing}"
                )
        for stage in STAGES:
            stage_records = [r for r in self.records.values() if r.stage == stage]
            if not stage_records:
                continue
            ran = sum(1 for r in stage_records if r.status == RUN)
            hits = len(stage_records) - ran
            hit_pct = 100.0 * hits / len(stage_records)
            lines.append(
                f"[farm] {stage}: {len(stage_records)} jobs, {ran} executed, "
                f"{hits} hits ({hit_pct:.1f}%), "
                f"cpu {self.seconds_in(stage):.2f}s, "
                f"wall {self.wall_in(stage):.2f}s"
            )
        lines.append(
            f"[farm] total {self.total} jobs: {self.executed} executed, "
            f"{self.hits} cache hits (hit rate {self.hit_rate:.1f}%)"
        )
        return "\n".join(lines)
