"""Per-job timing and cache hit-rate accounting for a farm run.

Every unit of work the farm considers — one (benchmark × stage × option
set), identified by its content key — is recorded exactly once, either as
``run`` (the job executed and produced its artifact) or ``hit`` (the
artifact was already in the cache and the job was skipped).  Later
sightings of the same key (e.g. a lazy load after a prefetch) are ignored,
so the report reflects what the invocation actually had to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Stage names in pipeline order (used only for display sorting).
STAGES = ("compile", "trace", "profile", "analyze")

RUN = "run"
HIT = "hit"


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one farm job."""

    key: str
    stage: str
    benchmark: str
    status: str  # RUN or HIT
    seconds: float = 0.0
    worker: str = ""


@dataclass
class FarmReport:
    """Accumulated job records for one experiment invocation."""

    records: dict[str, JobRecord] = field(default_factory=dict)

    def record(
        self,
        key: str,
        stage: str,
        benchmark: str,
        status: str,
        seconds: float = 0.0,
        worker: str = "",
    ) -> None:
        """Record a job outcome (first sighting of a key wins)."""
        if key not in self.records:
            self.records[key] = JobRecord(key, stage, benchmark, status, seconds, worker)

    # -- aggregates ----------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records.values() if r.status == RUN)

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records.values() if r.status == HIT)

    def executed_in(self, stage: str) -> int:
        return sum(
            1
            for r in self.records.values()
            if r.stage == stage and r.status == RUN
        )

    @property
    def hit_rate(self) -> float:
        """Percent of jobs satisfied from the cache (100.0 if no jobs)."""
        if not self.records:
            return 100.0
        return 100.0 * self.hits / self.total

    # -- rendering -----------------------------------------------------

    def render(self, per_job: bool = True) -> str:
        """Human-readable report (one summary line plus per-job lines)."""
        lines = []
        stage_order = {stage: i for i, stage in enumerate(STAGES)}
        if per_job:
            ordered = sorted(
                self.records.values(),
                key=lambda r: (stage_order.get(r.stage, len(STAGES)), r.benchmark, r.key),
            )
            for r in ordered:
                timing = f"{r.seconds:8.3f}s" if r.status == RUN else "        -"
                lines.append(
                    f"[farm] {r.stage:<8s} {r.benchmark:<12s} {r.status:<4s} {timing}"
                )
        for stage in STAGES:
            stage_records = [r for r in self.records.values() if r.stage == stage]
            if not stage_records:
                continue
            ran = sum(1 for r in stage_records if r.status == RUN)
            spent = sum(r.seconds for r in stage_records if r.status == RUN)
            lines.append(
                f"[farm] {stage}: {len(stage_records)} jobs, {ran} executed, "
                f"{len(stage_records) - ran} hits, {spent:.2f}s"
            )
        lines.append(
            f"[farm] total {self.total} jobs: {self.executed} executed, "
            f"{self.hits} cache hits (hit rate {self.hit_rate:.1f}%)"
        )
        return "\n".join(lines)
