"""Per-job timing, cache hit-rate, and failure accounting for a farm run.

Every unit of work the farm considers — one (benchmark × stage × option
set), identified by its content key — is recorded exactly once, either as
``run`` (the job executed and produced its artifact), ``hit`` (the
artifact was already in the cache and the job was skipped), ``resumed``
(the artifact was cached *and* the resume journal shows a previous
invocation retired it), or ``dead`` (the job exhausted its retry budget
and was quarantined).  Later sightings of the same key (e.g. a lazy load
after a prefetch) are ignored, so the report reflects what the
invocation actually had to do.

Separately from job outcomes, every *failed attempt* is recorded as a
:class:`FailureRecord` with full provenance — stage, attempt number,
failure kind, message — so a chaotic run can be audited from the report
alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import telemetry

#: Stage names in pipeline order (used only for display sorting).
STAGES = ("compile", "trace", "profile", "analyze")

RUN = "run"
HIT = "hit"
RESUMED = "resumed"
DEAD = "dead"

#: Failure kinds carried by :class:`FailureRecord`.
FAILURE_KINDS = ("error", "timeout", "crash", "corrupt", "dependency")


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one farm job."""

    key: str
    stage: str
    benchmark: str
    status: str  # RUN, HIT, RESUMED, or DEAD
    seconds: float = 0.0
    worker: str = ""
    #: Monotonic timestamp of when the outcome was recorded; with
    #: ``seconds`` this bounds the job's wall-clock window.
    recorded_at: float = 0.0


@dataclass(frozen=True)
class FailureRecord:
    """One failed job attempt (or a dead-dependency skip)."""

    key: str
    stage: str
    benchmark: str
    kind: str  # one of FAILURE_KINDS
    attempt: int
    message: str
    #: True when the attempt was requeued; False when it killed the job.
    retried: bool


@dataclass
class FarmReport:
    """Accumulated job records for one experiment invocation."""

    records: dict[str, JobRecord] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def record(
        self,
        key: str,
        stage: str,
        benchmark: str,
        status: str,
        seconds: float = 0.0,
        worker: str = "",
    ) -> None:
        """Record a job outcome (first sighting of a key wins)."""
        if key in self.records:
            return
        self.records[key] = JobRecord(
            key, stage, benchmark, status, seconds, worker, time.perf_counter()
        )
        if telemetry.enabled():
            if status in (HIT, RESUMED):
                telemetry.METRICS.counter("repro_jobs_cache_hits_total").inc(
                    stage=stage
                )
            elif status == RUN:
                telemetry.METRICS.counter("repro_jobs_cache_misses_total").inc(
                    stage=stage
                )
                telemetry.METRICS.counter("repro_jobs_stage_seconds_total").inc(
                    seconds, stage=stage
                )
            elif status == DEAD:
                telemetry.METRICS.counter("repro_jobs_dead_total").inc(
                    stage=stage
                )

    def record_failure(
        self,
        key: str,
        stage: str,
        benchmark: str,
        kind: str,
        attempt: int,
        message: str,
        retried: bool,
    ) -> None:
        """Record one failed attempt with its full provenance."""
        self.failures.append(
            FailureRecord(key, stage, benchmark, kind, attempt, message, retried)
        )
        if telemetry.enabled():
            if retried:
                telemetry.METRICS.counter("repro_jobs_retries_total").inc(
                    stage=stage
                )
            if kind == "timeout":
                telemetry.METRICS.counter("repro_jobs_timeouts_total").inc(
                    stage=stage
                )

    def note(self, message: str) -> None:
        """Attach a run-level note (e.g. a degradation event)."""
        self.notes.append(message)

    # -- aggregates ----------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records.values() if r.status == RUN)

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records.values() if r.status == HIT)

    @property
    def resumed(self) -> int:
        return sum(1 for r in self.records.values() if r.status == RESUMED)

    @property
    def dead(self) -> int:
        return sum(1 for r in self.records.values() if r.status == DEAD)

    @property
    def retries(self) -> int:
        """Failed attempts that were requeued."""
        return sum(1 for f in self.failures if f.retried)

    @property
    def timeouts(self) -> int:
        return sum(1 for f in self.failures if f.kind == "timeout")

    @property
    def corrupt_artifacts(self) -> int:
        return sum(1 for f in self.failures if f.kind == "corrupt")

    def executed_in(self, stage: str) -> int:
        return sum(
            1
            for r in self.records.values()
            if r.stage == stage and r.status == RUN
        )

    def hits_in(self, stage: str) -> int:
        return sum(
            1
            for r in self.records.values()
            if r.stage == stage and r.status == HIT
        )

    def seconds_in(self, stage: str) -> float:
        """CPU-seconds spent executing *stage* jobs (hits cost nothing)."""
        return sum(
            r.seconds
            for r in self.records.values()
            if r.stage == stage and r.status == RUN
        )

    def wall_in(self, stage: str) -> float:
        """Wall-clock window covered by *stage*'s executed jobs.

        Each record's ``(recorded_at - seconds, recorded_at)`` interval
        approximates when the job ran; the window spans the earliest start
        to the latest finish, so with parallel workers it is smaller than
        the CPU-second sum.
        """
        runs = [
            r
            for r in self.records.values()
            if r.stage == stage and r.status == RUN
        ]
        if not runs:
            return 0.0
        return max(r.recorded_at for r in runs) - min(
            r.recorded_at - r.seconds for r in runs
        )

    @property
    def hit_rate(self) -> float:
        """Percent of jobs satisfied from the cache (100.0 if no jobs)."""
        if not self.records:
            return 100.0
        return 100.0 * (self.hits + self.resumed) / self.total

    # -- rendering -----------------------------------------------------

    def render(self, per_job: bool = True) -> str:
        """Human-readable report (one summary line plus per-job lines).

        Failure provenance and run-level notes are always rendered —
        they are the audit trail of a chaotic run — while the per-job
        status lines honor *per_job*.
        """
        lines = []
        stage_order = {stage: i for i, stage in enumerate(STAGES)}
        if per_job:
            ordered = sorted(
                self.records.values(),
                key=lambda r: (stage_order.get(r.stage, len(STAGES)), r.benchmark, r.key),
            )
            for r in ordered:
                timing = f"{r.seconds:8.3f}s" if r.status == RUN else "        -"
                lines.append(
                    f"[farm] {r.stage:<8s} {r.benchmark:<12s} {r.status:<7s} {timing}"
                )
        for failure in self.failures:
            outcome = "retried" if failure.retried else "gave up"
            lines.append(
                f"[farm] failure  {failure.stage:<8s} {failure.benchmark:<12s} "
                f"attempt {failure.attempt} {failure.kind}: "
                f"{failure.message} ({outcome})"
            )
        for message in self.notes:
            lines.append(f"[farm] note: {message}")
        for stage in STAGES:
            stage_records = [r for r in self.records.values() if r.stage == stage]
            if not stage_records:
                continue
            ran = sum(1 for r in stage_records if r.status == RUN)
            skipped = sum(
                1 for r in stage_records if r.status in (HIT, RESUMED)
            )
            dead = sum(1 for r in stage_records if r.status == DEAD)
            hit_pct = 100.0 * skipped / len(stage_records)
            dead_text = f", {dead} dead" if dead else ""
            lines.append(
                f"[farm] {stage}: {len(stage_records)} jobs, {ran} executed, "
                f"{skipped} hits ({hit_pct:.1f}%){dead_text}, "
                f"cpu {self.seconds_in(stage):.2f}s, "
                f"wall {self.wall_in(stage):.2f}s"
            )
        resumed_text = f", {self.resumed} resumed" if self.resumed else ""
        dead_text = f", {self.dead} dead" if self.dead else ""
        lines.append(
            f"[farm] total {self.total} jobs: {self.executed} executed, "
            f"{self.hits} cache hits{resumed_text}{dead_text} "
            f"(hit rate {self.hit_rate:.1f}%)"
        )
        if self.failures:
            lines.append(
                f"[farm] faults: {self.retries} retries, "
                f"{self.timeouts} timeouts, {self.dead} dead jobs, "
                f"{self.corrupt_artifacts} corrupt artifacts"
            )
        return "\n".join(lines)
