"""Local process-pool execution backend (``--backend pool``).

Re-hosts the farm's :class:`~concurrent.futures.ProcessPoolExecutor`
path behind the :class:`~repro.jobs.backends.base.ExecutorBackend`
protocol.  Jobs are shipped to pool workers as picklable payloads and
exchange artifacts exclusively through the content-addressed cache, so
results are byte-identical regardless of worker count or scheduling
order.

Timeouts are enforced by condemnation: a hung worker cannot be cancelled
through the executor API, so any expired deadline condemns the whole
pool.  Condemnation first *harvests* every future that actually finished
— their jobs retire normally, and can therefore never be requeued and
executed twice (the double-execution bug the old degradation path had) —
then charges expired jobs a timeout, fails the unfinished rest as
uncharged victims, and marks the backend broken so the engine rebuilds
it (or degrades to serial once :attr:`~repro.jobs.retry.RetryPolicy.
max_pool_rebuilds` is exhausted).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.jobs.backends.base import (
    BackendCapabilities,
    Completion,
    WorkerLost,
    _InFlight,
)
from repro.jobs.graph import Job
from repro.jobs.retry import JobTimeout
from repro.jobs.worker import execute_job


class PoolBackend:
    """Runs jobs across a local :class:`ProcessPoolExecutor`.

    Raises :class:`BrokenProcessPool`/:class:`OSError` from the
    constructor when no pool can be created at all (the engine catches
    this and runs serially).
    """

    capabilities = BackendCapabilities(
        name="pool",
        supports_timeouts=True,   # by pool condemnation, not preemption
        supports_cancellation=True,  # queued futures are cancellable
    )

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("pool backend needs a positive worker count")
        self.workers = workers
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self._running: dict[Future, _InFlight] = {}
        self._broken = False

    @property
    def in_flight(self) -> int:
        return len(self._running)

    @property
    def broken(self) -> bool:
        return self._broken

    def can_accept(self) -> bool:
        # Keep the dispatch window modestly ahead of the workers so a
        # failure settles before the whole ready set is committed.
        return not self._broken and len(self._running) < 2 * self.workers

    def submit(self, job: Job, payload: dict, attempt: int,
               timeout: float | None) -> None:
        deadline = time.monotonic() + timeout if timeout else None
        try:
            future = self._pool.submit(execute_job, payload)
        except (BrokenProcessPool, RuntimeError) as exc:
            self._broken = True
            raise WorkerLost(str(exc) or "process pool is broken") from exc
        self._running[future] = _InFlight(
            job, attempt, deadline, extra={"timeout": timeout}
        )

    def poll(self, timeout: float) -> list[Completion]:
        if not self._running:
            return []
        finished, _ = wait(
            self._running,
            timeout=self._wait_budget(timeout),
            return_when=FIRST_COMPLETED,
        )
        completions: list[Completion] = []
        pool_broken = False
        for future in finished:
            entry = self._running.pop(future)
            completion = self._settle(future, entry)
            if isinstance(completion.error, BrokenProcessPool):
                pool_broken = True
            completions.append(completion)
        if pool_broken:
            completions.extend(self._condemn(pool_died=True))
        elif self._deadline_expired():
            completions.extend(self._condemn(pool_died=False))
        return completions

    def shutdown(self) -> None:
        """Tear the pool down without waiting on hung or dead workers."""
        processes = []
        try:
            processes = list((self._pool._processes or {}).values())
        except AttributeError:  # pragma: no cover - CPython internal moved
            pass
        self._pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already gone
                pass

    # -- internals -------------------------------------------------------

    def _wait_budget(self, timeout: float) -> float:
        """Block at most *timeout*, shortened to the nearest deadline."""
        now = time.monotonic()
        deadlines = [
            e.deadline for e in self._running.values() if e.deadline is not None
        ]
        if deadlines:
            timeout = min(timeout, max(0.01, min(deadlines) - now))
        return timeout

    def _deadline_expired(self) -> bool:
        now = time.monotonic()
        return any(
            e.deadline is not None and now > e.deadline
            for e in self._running.values()
        )

    @staticmethod
    def _settle(future: Future, entry: _InFlight) -> Completion:
        try:
            record = future.result()
        except Exception as exc:
            return Completion(entry.job, entry.attempt, error=exc)
        return Completion(entry.job, entry.attempt, record=record)

    def _condemn(self, pool_died: bool) -> list[Completion]:
        """Settle every in-flight future of a pool that must die.

        Futures that *finished* — even between the dispatcher's ``wait``
        and this condemnation — retire normally: requeuing them would
        execute their job a second time even though its artifact and
        journal entry already landed.  Of the rest, a crashed pool
        charges everyone (the culprit cannot be told apart from its
        pool-mates, which stays deterministic), while a timeout
        condemnation charges only the expired jobs and requeues the
        innocent in-flight rest uncharged.
        """
        self._broken = True
        now = time.monotonic()
        completions: list[Completion] = []
        for future, entry in list(self._running.items()):
            if future.done() and not future.cancelled():
                completions.append(self._settle(future, entry))
            elif entry.deadline is not None and now > entry.deadline:
                timeout = entry.extra.get("timeout")
                completions.append(
                    Completion(
                        entry.job,
                        entry.attempt,
                        error=JobTimeout(
                            f"job exceeded its {timeout:.1f}s wall-clock "
                            f"budget"
                            if timeout
                            else "job exceeded its wall-clock budget"
                        ),
                    )
                )
            else:
                completions.append(
                    Completion(
                        entry.job,
                        entry.attempt,
                        error=BrokenProcessPool(
                            "worker process died unexpectedly"
                        ),
                        charged=pool_died,
                    )
                )
        self._running.clear()
        return completions
