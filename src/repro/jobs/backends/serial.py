"""In-process serial execution backend (``--backend serial``).

The degenerate — and most trustworthy — backend: :meth:`submit` runs the
job synchronously in the calling process and queues its completion for
the next :meth:`poll`.  One job is in flight at a time, so the engine's
dispatch loop reduces to exactly the old serial executor: pick a ready
job, run it, handle the outcome, repeat.

Timeouts are preemptive here: attempts run under
:func:`~repro.jobs.retry.call_with_timeout` (``SIGALRM`` where
available), so a hung job raises :class:`~repro.jobs.retry.JobTimeout`
mid-flight instead of condemning anything.  This backend can never
break; it is also what every other backend degrades to.
"""

from __future__ import annotations

from repro.jobs.backends.base import BackendCapabilities, Completion
from repro.jobs.graph import Job
from repro.jobs.retry import call_with_timeout
from repro.jobs.worker import execute_job


class SerialBackend:
    """Runs every job synchronously in the engine's own process."""

    capabilities = BackendCapabilities(
        name="serial",
        supports_timeouts=True,   # preemptive, via SIGALRM
        supports_cancellation=False,  # submit has already run the job
    )

    def __init__(self):
        self._completed: list[Completion] = []

    @property
    def in_flight(self) -> int:
        return len(self._completed)

    @property
    def broken(self) -> bool:
        return False

    def can_accept(self) -> bool:
        # One at a time: the engine must settle each outcome before the
        # next dispatch, because a failure may requeue producers or kill
        # dependents that this sweep would otherwise still run.
        return not self._completed

    def submit(self, job: Job, payload: dict, attempt: int,
               timeout: float | None) -> None:
        try:
            record = call_with_timeout(execute_job, payload, timeout)
        except Exception as exc:
            self._completed.append(Completion(job, attempt, error=exc))
        else:
            self._completed.append(Completion(job, attempt, record=record))

    def poll(self, timeout: float) -> list[Completion]:
        settled, self._completed = self._completed, []
        return settled

    def shutdown(self) -> None:
        pass
