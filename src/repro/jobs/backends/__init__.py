"""Pluggable execution backends for the experiment farm.

The engine's dispatch loop drives every backend through the
:class:`~repro.jobs.backends.base.ExecutorBackend` protocol; see
``docs/distributed.md`` for the remote wire protocol and failure
semantics.  Backend implementations import lazily from their modules so
importing :mod:`repro.jobs` does not pull in sockets or process pools.
"""

from repro.jobs.backends.base import (
    BackendCapabilities,
    Completion,
    ExecutorBackend,
    WorkerLost,
)

BACKEND_NAMES = ("serial", "pool", "remote")

__all__ = [
    "BACKEND_NAMES",
    "BackendCapabilities",
    "Completion",
    "ExecutorBackend",
    "WorkerLost",
]
