"""Socket-connected remote worker backend (``--backend remote``).

The coordinator side of the distributed experiment farm: shards the
deduplicated job graph across ``repro-worker`` daemons over the
length-prefixed JSON protocol of :mod:`repro.jobs.protocol`.  Artifacts
move through the content-addressed cache on both ends — workers ``fetch``
inputs they are missing and ``push`` what they produce, each transfer
verified against its sha256 integrity sidecar — so a distributed run
retires the same graph to the same bytes as a local one.

Placement is *home-hashed with stealing*: every job key hashes to a home
worker (stable across runs, so warm worker caches keep paying off), but
a job whose home is saturated ships to any worker with a free slot
instead of idling.  Each worker runs one job at a time per connection
and holds at most ``per_worker`` in flight, which pipelines artifact
transfer against compute without letting one connection absorb the
whole ready set.

Failure semantics mirror the pool backend's condemnation: an expired
deadline condemns only the hung worker's connection — the expired job
is charged a timeout, that worker's other in-flight jobs are requeued
as uncharged victims — and a dead connection charges its in-flight jobs
a :class:`~repro.jobs.backends.base.WorkerLost` crash, which the
engine's ordinary retry/quarantine machinery then absorbs.  The backend
is ``broken`` only when the last worker is gone.
"""

from __future__ import annotations

import hashlib
import json
import queue
import socket
import threading
import time

from repro import telemetry
from repro.jobs import protocol
from repro.jobs.backends.base import (
    BackendCapabilities,
    Completion,
    WorkerLost,
    _InFlight,
)
from repro.jobs.cache import ArtifactCache
from repro.jobs.graph import Job
from repro.jobs.retry import JobTimeout
from repro.vm.trace_io import CorruptArtifactError

#: Seconds allowed for connect + hello before a worker is unreachable.
CONNECT_TIMEOUT = 10.0


class _WorkerConn:
    """One live connection to a ``repro-worker`` daemon."""

    def __init__(self, address: str, events: "queue.Queue", cache: ArtifactCache):
        self.address = address
        self.cache = cache
        self._events = events
        self.send_lock = threading.Lock()
        self.dead = False
        #: Keys currently shipped to this worker.
        self.keys: set[str] = set()
        #: Push transfers that arrived damaged, surfaced at ``done``.
        self.push_errors: dict[str, Exception] = {}
        host, port = protocol.parse_worker_address(address)
        self.sock = socket.create_connection((host, port), timeout=CONNECT_TIMEOUT)
        try:
            protocol.send_frame(
                self.sock,
                {"type": "hello", "version": protocol.PROTOCOL_VERSION},
            )
            reply, _ = protocol.recv_frame(self.sock)
            if (
                reply.get("type") != "hello"
                or reply.get("version") != protocol.PROTOCOL_VERSION
            ):
                raise ConnectionError(
                    f"worker {address} speaks protocol "
                    f"{reply.get('version')!r}, not {protocol.PROTOCOL_VERSION}"
                )
        except Exception:
            self.sock.close()
            raise
        self.sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-remote-{address}", daemon=True
        )
        self._reader.start()

    def send(self, message: dict, blob: bytes = b"") -> None:
        with self.send_lock:
            protocol.send_frame(self.sock, message, blob)

    def close(self) -> None:
        self.dead = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # -- reader thread ---------------------------------------------------

    def _read_loop(self) -> None:
        """Serve fetch/push inline; queue done/fail/lost for the poller."""
        try:
            while True:
                message, blob = protocol.recv_frame(self.sock)
                kind = message.get("type")
                if kind == "fetch":
                    self._serve_fetch(message)
                elif kind == "push":
                    self._accept_push(message, blob)
                elif kind in ("done", "fail"):
                    self._events.put((kind, self, message))
                # anything else is a stray frame; ignore
        except (ConnectionError, OSError) as exc:
            if not self.dead:
                self._events.put(("lost", self, exc))

    def _serve_fetch(self, message: dict) -> None:
        kind, key = message["kind"], message["key"]
        try:
            data, sha256 = self.cache.load_artifact_bytes(kind, key)
        except (CorruptArtifactError, FileNotFoundError, ValueError):
            self.send(
                {"type": "artifact", "kind": kind, "key": key,
                 "sha256": None, "found": False}
            )
            return
        if telemetry.enabled():
            telemetry.METRICS.counter("repro_remote_bytes_pulled_total").inc(
                len(data), kind=kind
            )
        self.send(
            {"type": "artifact", "kind": kind, "key": key,
             "sha256": sha256, "found": True},
            blob=data,
        )

    def _accept_push(self, message: dict, blob: bytes) -> None:
        kind, key = message["kind"], message["key"]
        try:
            self.cache.store_artifact_bytes(kind, key, blob, message["sha256"])
        except CorruptArtifactError as exc:
            # Refuse the damaged transfer; the worker's imminent `done`
            # for this key becomes a corrupt failure instead of a retire.
            self.push_errors[key] = exc
            return
        if telemetry.enabled():
            telemetry.METRICS.counter("repro_remote_bytes_pushed_total").inc(
                len(blob), kind=kind
            )


class RemoteBackend:
    """Ships jobs to ``repro-worker`` daemons over TCP.

    Raises :class:`RuntimeError` from the constructor when *no* worker
    address is reachable — a distributed run with zero workers is a
    configuration error, not something to silently degrade from.
    """

    capabilities = BackendCapabilities(
        name="remote",
        supports_timeouts=True,   # by condemning the hung worker
        supports_cancellation=False,  # a shipped job cannot be recalled
    )

    def __init__(
        self,
        cache: ArtifactCache,
        workers: list[str],
        per_worker: int = 2,
    ):
        if not workers:
            raise RuntimeError("remote backend needs at least one worker")
        self.cache = cache
        self.per_worker = max(1, per_worker)
        #: The full configured address list; home hashing indexes this so
        #: placement is stable even as individual workers die.
        self.addresses = list(workers)
        self._events: queue.Queue = queue.Queue()
        self._conns: dict[str, _WorkerConn] = {}
        self._inflight: dict[str, _InFlight] = {}
        self._pending: list[Completion] = []
        self._notes: list[str] = []
        failures: list[str] = []
        for address in self.addresses:
            try:
                self._conns[address] = _WorkerConn(
                    address, self._events, cache
                )
            except (OSError, ConnectionError, ValueError) as exc:
                failures.append(f"{address} ({exc})")
        if not self._conns:
            raise RuntimeError(
                "no remote worker is reachable: " + "; ".join(failures)
            )
        for failure in failures:
            self._notes.append(f"remote worker {failure} unreachable; skipped")

    # -- protocol surface ------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._inflight) + len(self._pending)

    @property
    def broken(self) -> bool:
        return not self._conns

    def can_accept(self) -> bool:
        return any(
            len(conn.keys) < self.per_worker for conn in self._conns.values()
        )

    def take_notes(self) -> list[str]:
        """Operator-facing notes (worker losses) accumulated since last call."""
        notes, self._notes = self._notes, []
        return notes

    def submit(self, job: Job, payload: dict, attempt: int,
               timeout: float | None) -> None:
        deadline = time.monotonic() + timeout if timeout else None
        while True:
            conn, stolen = self._place(job.key)
            if conn is None:
                raise WorkerLost("all remote workers are lost")
            try:
                conn.send({"type": "job", "payload": payload})
            except (ConnectionError, OSError) as exc:
                self._condemn(conn, f"send failed: {exc}")
                continue  # re-place on a surviving worker
            if telemetry.enabled():
                telemetry.METRICS.counter(
                    "repro_remote_jobs_shipped_total"
                ).inc(worker=conn.address)
                if stolen:
                    telemetry.METRICS.counter(
                        "repro_remote_jobs_stolen_total"
                    ).inc(worker=conn.address)
            conn.keys.add(job.key)
            self._inflight[job.key] = _InFlight(
                job, attempt, deadline, worker=conn.address,
                extra={"timeout": timeout},
            )
            return

    def poll(self, timeout: float) -> list[Completion]:
        completions, self._pending = self._pending, []
        block = not completions
        budget = self._wait_budget(timeout)
        while True:
            try:
                event = self._events.get(
                    timeout=budget if block and self._inflight else 0.0
                )
            except queue.Empty:
                break
            block = False
            kind, conn, detail = event
            if kind == "lost":
                self._condemn(conn, str(detail) or "connection lost")
                completions.extend(self._take_pending())
            else:
                completion = self._settle(kind, conn, detail)
                if completion is not None:
                    completions.append(completion)
        completions.extend(self._reap_timeouts())
        return completions

    def shutdown(self) -> None:
        for conn in list(self._conns.values()):
            try:
                conn.send({"type": "shutdown"})
            except (ConnectionError, OSError):
                pass
            conn.close()
        self._conns.clear()

    # -- internals -------------------------------------------------------

    def _take_pending(self) -> list[Completion]:
        taken, self._pending = self._pending, []
        return taken

    def _home(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.addresses[int(digest[:8], 16) % len(self.addresses)]

    def _place(self, key: str) -> tuple[_WorkerConn | None, bool]:
        """The home worker if it has a free slot, else steal to any."""
        home = self._home(key)
        conn = self._conns.get(home)
        stolen = False
        if conn is None or len(conn.keys) >= self.per_worker:
            if not self._conns:
                return None, False
            # can_accept() may race a loss; fall back to the
            # least-loaded survivor even if every slot is full.
            conn = min(
                self._conns.values(),
                key=lambda c: (len(c.keys), c.address),
            )
            stolen = conn.address != home
        return conn, stolen

    def _wait_budget(self, timeout: float) -> float:
        now = time.monotonic()
        deadlines = [
            e.deadline for e in self._inflight.values() if e.deadline is not None
        ]
        if deadlines:
            timeout = min(timeout, max(0.01, min(deadlines) - now))
        return timeout

    def _settle(
        self, kind: str, conn: _WorkerConn, message: dict
    ) -> Completion | None:
        key = message.get("key")
        entry = self._inflight.pop(key, None)
        conn.keys.discard(key)
        self._write_spans(conn, message.get("spans") or [])
        if entry is None:
            return None  # already condemned (timeout beat the reply)
        push_error = conn.push_errors.pop(key, None)
        if push_error is not None:
            return Completion(
                entry.job, entry.attempt, error=push_error, worker=conn.address
            )
        if kind == "done":
            return Completion(
                entry.job, entry.attempt, record=message["record"],
                worker=conn.address,
            )
        message_text = message.get("message") or "remote job failed"
        if message.get("kind") == "corrupt":
            error: Exception = CorruptArtifactError(
                message_text, key=message.get("artifact_key")
            )
        else:
            error = RuntimeError(message_text)
        return Completion(
            entry.job, entry.attempt, error=error, worker=conn.address
        )

    def _reap_timeouts(self) -> list[Completion]:
        """Condemn every worker holding an expired job."""
        now = time.monotonic()
        expired_workers = {
            entry.worker
            for entry in self._inflight.values()
            if entry.deadline is not None and now > entry.deadline
        }
        for address in expired_workers:
            conn = self._conns.get(address)
            if conn is not None:
                self._condemn(conn, "job deadline expired", timed_out=True)
        return self._take_pending()

    def _condemn(
        self, conn: _WorkerConn, reason: str, timed_out: bool = False
    ) -> None:
        """Drop one worker and settle everything in flight on it.

        With ``timed_out``, expired jobs are charged a timeout and the
        worker's other in-flight jobs (queued behind the hung one, never
        started) are requeued uncharged; a plain connection loss charges
        everyone a :class:`WorkerLost` crash — the culprit cannot be
        told apart, which stays deterministic.
        """
        if self._conns.get(conn.address) is not conn:
            return  # already condemned
        del self._conns[conn.address]
        conn.close()
        self._notes.append(f"remote worker {conn.address} lost ({reason})")
        if telemetry.enabled():
            telemetry.METRICS.counter("repro_remote_worker_losses_total").inc(
                worker=conn.address
            )
        now = time.monotonic()
        for key in sorted(conn.keys):
            entry = self._inflight.pop(key, None)
            if entry is None:
                continue
            if (
                timed_out
                and entry.deadline is not None
                and now > entry.deadline
            ):
                timeout = entry.extra.get("timeout")
                error: Exception = JobTimeout(
                    f"job exceeded its {timeout:.1f}s wall-clock budget "
                    f"on worker {conn.address}"
                    if timeout
                    else f"job timed out on worker {conn.address}"
                )
                charged = True
            else:
                error = WorkerLost(
                    f"remote worker {conn.address} lost ({reason})"
                )
                charged = not timed_out
            self._pending.append(
                Completion(
                    entry.job, entry.attempt, error=error,
                    charged=charged, worker=conn.address,
                )
            )
        conn.keys.clear()

    def _write_spans(self, conn: _WorkerConn, spans: list[dict]) -> None:
        """Land worker spans where ``merge_worker_sinks`` will fold them."""
        if not spans:
            return
        directory = telemetry.telemetry_dir()
        if directory is None:
            return
        name = "worker-remote-" + conn.address.replace(":", "-") + ".jsonl"
        with open(directory / name, "a", encoding="utf-8") as sink:
            for span in spans:
                sink.write(json.dumps(span, sort_keys=True) + "\n")
