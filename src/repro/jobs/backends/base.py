"""The executor-backend protocol the farm engine dispatches through.

The :class:`~repro.jobs.engine.ExecutionEngine` owns everything about a
run that must be *policy* — retry accounting, backoff, corrupt-input
healing, dead-job quarantine, journaling, the farm report.  A backend
owns only *mechanism*: given a ready job payload, run it somewhere and
eventually hand back a :class:`Completion`.  The engine drives every
backend through the same loop::

    while pending or backend.in_flight:
        submit ready jobs while backend.can_accept()
        for completion in backend.poll(budget):
            retire / retry / requeue
        if backend.broken:
            replace the backend (rebuild, or degrade to serial)

Three backends ship: in-process serial execution
(:class:`~repro.jobs.backends.serial.SerialBackend`), a local process
pool (:class:`~repro.jobs.backends.pool.PoolBackend`), and socket-
connected remote workers
(:class:`~repro.jobs.backends.remote.RemoteBackend`).  A new backend
implements this interface and passes the conformance suite in
``tests/jobs/test_backend_conformance.py``; nothing else in the farm
needs to change.

**Failure vocabulary.**  A completion either carries a timing ``record``
(the job retired) or an ``error``.  ``charged=False`` marks an innocent
victim — a job whose attempt never really ran because its executor was
condemned (a pool-mate hung, a remote connection died) — which the
engine requeues without spending one of its retry attempts.  Backends
that cannot tell victims apart from culprits charge everyone; that is
deterministic, which matters more than fairness here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.jobs.graph import Job  # re-exported for backend authors


class WorkerLost(Exception):
    """An executor (pool worker, remote connection) died under its jobs."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can and cannot do, declared up front.

    ``supports_timeouts``
        The backend enforces per-attempt wall-clock budgets itself
        (preemptively, like the serial backend's ``SIGALRM``, or by
        condemning the executor, like the pool and remote backends).
        When False the engine runs attempts unbounded.
    ``supports_cancellation``
        Work not yet started can be revoked on shutdown (a queued pool
        future can be cancelled; a job already shipped to a remote
        worker cannot).
    """

    name: str
    supports_timeouts: bool
    supports_cancellation: bool


@dataclass
class Completion:
    """One settled job attempt, as reported by a backend."""

    job: Job
    attempt: int
    #: Timing record from the worker (``execute_job``'s return) on success.
    record: dict | None = None
    #: The failure on error; classified by the engine's retry machinery.
    error: BaseException | None = None
    #: False: an innocent victim of executor loss — requeue uncharged.
    charged: bool = True
    #: Which executor ran the job (display/metrics only).
    worker: str = ""


@runtime_checkable
class ExecutorBackend(Protocol):
    """Protocol every execution backend implements."""

    capabilities: BackendCapabilities

    @property
    def in_flight(self) -> int:
        """Number of submitted jobs not yet returned by :meth:`poll`."""

    @property
    def broken(self) -> bool:
        """True when the backend can no longer accept or finish work."""

    def can_accept(self) -> bool:
        """May the engine submit another job right now?"""

    def submit(self, job: Job, payload: dict, attempt: int,
               timeout: float | None) -> None:
        """Start one job attempt.  Raises :class:`WorkerLost` if the
        backend discovered mid-submit that it is broken; the engine
        unwinds the attempt and replaces the backend."""

    def poll(self, timeout: float) -> list[Completion]:
        """Settled attempts, blocking up to *timeout* seconds for the
        first one.  Also where condemnation happens: a backend noticing
        an expired deadline or a dead executor settles every affected
        in-flight job (culprits charged, victims not) before returning."""

    def shutdown(self) -> None:
        """Release executors.  Idempotent; never blocks on hung work."""


@dataclass
class _InFlight:
    """Bookkeeping every backend keeps per submitted job."""

    job: Job
    attempt: int
    deadline: float | None
    worker: str = ""
    extra: dict = field(default_factory=dict)
