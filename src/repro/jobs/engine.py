"""Job graph construction and the fault-tolerant execution engine.

The planner expands a pooled list of experiment requests into a
deduplicated :class:`JobGraph` sharded at (benchmark × stage)
granularity::

    compile ──> trace ──> profile ──> analysis (one per option set)

The compile stage runs in the planner itself: it is three orders of
magnitude cheaper than tracing, and its product — the program fingerprint
that addresses every downstream artifact — is needed to build the graph
at all.  On a warm cache the planner does not even compile: it hashes the
cached disassembly listing instead.

The :class:`ExecutionEngine` then retires the graph.  Jobs whose artifact
already exists in the cache are recorded as hits and skipped; the rest
are dispatched through a pluggable :class:`~repro.jobs.backends.base.
ExecutorBackend` — in-process serial execution (``--backend serial``,
the default at ``jobs=1`` and what the test suite exercises), a local
:class:`~concurrent.futures.ProcessPoolExecutor`
(``--backend pool``), or socket-connected ``repro-worker`` daemons
(``--backend remote``) — each job as soon as its dependencies have
retired.  Workers exchange artifacts exclusively through the
content-addressed cache (see :mod:`repro.jobs.worker`), so results are
byte-identical regardless of backend, worker count, or scheduling order.

The engine treats partial failure the way a speculative machine treats
misspeculation — detect, discard, re-execute:

* a failed attempt is retried under the :class:`~repro.jobs.retry.
  RetryPolicy` (bounded attempts, exponential backoff with deterministic
  jitter, optional per-attempt wall-clock timeouts);
* a job that exhausts its budget is quarantined as *dead* — with its
  dependents — and the run continues; full provenance lands in the
  :class:`~repro.jobs.report.FarmReport`;
* a :class:`~repro.vm.trace_io.CorruptArtifactError` from a consumer
  re-enqueues the *producer* of the damaged (and now quarantined)
  artifact, then the consumer, so corruption heals instead of crashing;
* a broken process pool (crashed worker) is rebuilt; if pools keep
  dying — or every remote worker is lost — the engine degrades to
  serial in-process execution;
* every retired job is journaled so ``--resume`` can skip work an
  interrupted invocation already finished.
"""

from __future__ import annotations

import json
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro import telemetry
from repro.asm.disassembler import disassemble
from repro.bench import SUITE
from repro.jobs import keys
from repro.jobs.backends import BACKEND_NAMES, Completion, WorkerLost
from repro.jobs.cache import ArtifactCache
from repro.jobs.faults import FaultPlan
from repro.jobs.graph import Job, JobGraph
from repro.jobs.report import DEAD, HIT, RESUMED, RUN, FarmReport
from repro.jobs.requests import AnalysisRequest, Request, TraceRequest
from repro.jobs.retry import JobTimeout, RetryPolicy
from repro.vm.trace_io import CorruptArtifactError

__all__ = [
    "Job",
    "JobGraph",
    "RunJournal",
    "RequestKeys",
    "Planner",
    "run_requests",
    "ExecutionEngine",
]


class RunJournal:
    """Append-only log of retired job keys for one job graph.

    The journal file is addressed by the graph digest, so re-running the
    same invocation finds the same journal.  Each retirement appends one
    JSON line and flushes, so a SIGKILL loses at most the in-flight job.
    ``--resume`` loads the journal and skips journaled jobs whose
    artifacts are still cached and intact.

    A journal is a context manager; :meth:`close` runs on exit whether
    the engine retired the graph or raised, so long-lived processes that
    execute many graphs (the ``repro-serve`` scheduler) never leak file
    handles.
    """

    def __init__(self, directory: str | Path, graph: JobGraph):
        self.path = Path(directory) / f"{graph.digest()}.jsonl"
        self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def load(self) -> set[str]:
        """Previously retired job keys (tolerates a torn final line)."""
        retired: set[str] = set()
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return retired
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final write from a killed run
            key = record.get("key")
            if key:
                retired.add(key)
        return retired

    def append(self, job: Job, seconds: float) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(
            {
                "key": job.key,
                "stage": job.stage,
                "benchmark": job.benchmark,
                "seconds": round(seconds, 6),
            },
            sort_keys=True,
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass(frozen=True)
class RequestKeys:
    """Content addresses of every artifact one request resolves to.

    ``result`` is ``None`` for a bare :class:`TraceRequest`.  Exposed so
    callers that need to map a request back to its artifacts after a run
    (the ``repro-serve`` scheduler, the load harness) share the planner's
    key derivation instead of re-implementing it.
    """

    compile: str
    trace: str
    profile: str
    result: str | None = None

    def all(self) -> tuple[str, ...]:
        keys_ = (self.compile, self.trace, self.profile, self.result)
        return tuple(k for k in keys_ if k is not None)


class Planner:
    """Expands requests into a job graph against one cache/config.

    ``adhoc`` maps benchmark names to :class:`~repro.bench.BenchmarkSpec`
    objects that are not in the static :data:`~repro.bench.SUITE` — the
    ad-hoc MiniC submissions of ``repro-serve``.  Jobs planned for an
    ad-hoc spec carry the MiniC source in their payload so process-pool
    workers (whose ``SUITE`` lacks the spec) can compile it locally.
    """

    def __init__(
        self,
        cache: ArtifactCache,
        report: FarmReport,
        telemetry_dir: str | None = None,
        profile: bool = False,
        adhoc: dict[str, "BenchmarkSpec"] | None = None,
    ):
        self.cache = cache
        self.report = report
        self.telemetry_dir = str(telemetry_dir) if telemetry_dir is not None else None
        self.profile = profile
        self.adhoc = adhoc if adhoc is not None else {}
        self._fingerprints: dict[tuple[str, int], str] = {}

    def spec(self, benchmark: str) -> "BenchmarkSpec":
        """The suite spec for *benchmark*, or its ad-hoc registration."""
        spec = self.adhoc.get(benchmark)
        return spec if spec is not None else SUITE[benchmark]

    def _telemetry_payload(self) -> tuple[str | None, bool]:
        """Telemetry directory + profile flag to embed in job payloads.

        Falls back to the process-wide telemetry state so callers that
        configured telemetry globally need not thread it through here.
        """
        directory = self.telemetry_dir
        if directory is None and telemetry.enabled():
            configured = telemetry.telemetry_dir()
            directory = str(configured) if configured is not None else None
        return directory, self.profile or telemetry.profiling()

    # -- compile stage (runs in-process during planning) ----------------

    def fingerprint(self, benchmark: str, scale: int) -> str:
        """Program fingerprint for (benchmark, scale), via the compile stage.

        Cache hit: hash the stored disassembly without compiling.
        Cache miss — or a corrupt cached listing — compile, disassemble,
        store the listing.
        """
        memo = self._fingerprints.get((benchmark, scale))
        if memo is not None:
            return memo
        spec = self.spec(benchmark)
        source = spec.source(scale)
        compile_key = keys.compile_key(benchmark, scale, source)
        fingerprint = None
        if self.cache.has_asm(compile_key):
            try:
                fingerprint = keys.fingerprint_text(self.cache.load_asm(compile_key))
                self.report.record(compile_key, "compile", benchmark, HIT)
            except CorruptArtifactError as exc:
                self.report.record_failure(
                    compile_key, "compile", benchmark, "corrupt", 1, str(exc),
                    retried=True,
                )
        if fingerprint is None:
            started = time.time()
            listing = disassemble(spec.compile(scale))
            self.cache.store_asm(compile_key, listing)
            fingerprint = keys.fingerprint_text(listing)
            self.report.record(
                compile_key, "compile", benchmark, RUN, time.time() - started
            )
        self._fingerprints[(benchmark, scale)] = fingerprint
        return fingerprint

    # -- downstream stages ----------------------------------------------

    def _resolve(self, request: Request, default_scale, default_max_steps):
        spec = self.spec(request.benchmark)
        scale = default_scale if default_scale is not None else spec.default_scale
        max_steps = (
            request.max_steps if request.max_steps is not None else default_max_steps
        )
        return scale, max_steps

    def request_keys(
        self,
        request: Request,
        default_scale: int | None,
        default_max_steps: int,
    ) -> RequestKeys:
        """Content addresses of every artifact *request* maps to.

        Derives keys exactly as :meth:`plan` does (including running the
        in-planner compile stage when the fingerprint is not memoized),
        without adding any jobs to a graph.
        """
        scale, max_steps = self._resolve(request, default_scale, default_max_steps)
        spec = self.spec(request.benchmark)
        compile_key = keys.compile_key(
            request.benchmark, scale, spec.source(scale)
        )
        trace_key = keys.trace_key(
            self.fingerprint(request.benchmark, scale), scale, max_steps
        )
        profile_key = keys.profile_key(trace_key)
        result_key = None
        if isinstance(request, AnalysisRequest):
            result_key = keys.result_key(
                trace_key,
                request.model_labels,
                request.perfect_unrolling,
                request.perfect_inlining,
                request.collect_misprediction_stats,
            )
        return RequestKeys(compile_key, trace_key, profile_key, result_key)

    def plan(
        self,
        requests: Iterable[Request],
        default_scale: int | None,
        default_max_steps: int,
    ) -> JobGraph:
        graph = JobGraph()
        telemetry_dir, profile = self._telemetry_payload()
        for request in requests:
            scale, max_steps = self._resolve(
                request, default_scale, default_max_steps
            )
            trace_key, profile_key = self._add_trace_jobs(
                graph, request.benchmark, scale, max_steps, telemetry_dir, profile
            )
            if isinstance(request, AnalysisRequest):
                labels = request.model_labels
                result_key = keys.result_key(
                    trace_key,
                    labels,
                    request.perfect_unrolling,
                    request.perfect_inlining,
                    request.collect_misprediction_stats,
                )
                graph.add(
                    Job(
                        key=result_key,
                        stage="analyze",
                        benchmark=request.benchmark,
                        deps=(trace_key, profile_key),
                        payload=self._with_source(
                            request.benchmark,
                            scale,
                            {
                                "stage": "analyze",
                                "key": result_key,
                                "benchmark": request.benchmark,
                                "scale": scale,
                                "trace": trace_key,
                                "profile": profile_key,
                                "models": list(labels),
                                "perfect_unrolling": request.perfect_unrolling,
                                "perfect_inlining": request.perfect_inlining,
                                "misprediction_stats": request.collect_misprediction_stats,
                                "cache_dir": str(self.cache.root),
                                "telemetry": telemetry_dir,
                                "profiling": profile,
                            },
                        ),
                    )
                )
        return graph

    def _with_source(self, benchmark: str, scale: int, payload: dict) -> dict:
        """Embed ad-hoc MiniC source so pool workers can compile it."""
        spec = self.adhoc.get(benchmark)
        if spec is not None:
            payload["source"] = spec.source(scale)
        return payload

    def _add_trace_jobs(
        self,
        graph: JobGraph,
        benchmark: str,
        scale: int,
        max_steps: int,
        telemetry_dir: str | None = None,
        profile: bool = False,
    ) -> tuple[str, str]:
        fingerprint = self.fingerprint(benchmark, scale)
        trace_key = keys.trace_key(fingerprint, scale, max_steps)
        profile_key = keys.profile_key(trace_key)
        graph.add(
            Job(
                key=trace_key,
                stage="trace",
                benchmark=benchmark,
                payload=self._with_source(
                    benchmark,
                    scale,
                    {
                        "stage": "trace",
                        "key": trace_key,
                        "benchmark": benchmark,
                        "scale": scale,
                        "max_steps": max_steps,
                        "cache_dir": str(self.cache.root),
                        "telemetry": telemetry_dir,
                        "profiling": profile,
                    },
                ),
            )
        )
        graph.add(
            Job(
                key=profile_key,
                stage="profile",
                benchmark=benchmark,
                deps=(trace_key,),
                payload=self._with_source(
                    benchmark,
                    scale,
                    {
                        "stage": "profile",
                        "key": profile_key,
                        "benchmark": benchmark,
                        "scale": scale,
                        "trace": trace_key,
                        "cache_dir": str(self.cache.root),
                        "telemetry": telemetry_dir,
                        "profiling": profile,
                    },
                ),
            )
        )
        return trace_key, profile_key


def run_requests(
    cache: ArtifactCache,
    requests: Iterable[Request],
    *,
    max_steps: int = 150_000,
    default_scale: int | None = None,
    jobs: int = 1,
    retry: RetryPolicy | None = None,
    faults: str | FaultPlan | None = None,
    resume: bool = False,
    adhoc: dict | None = None,
    report: FarmReport | None = None,
    backend: str | None = None,
    workers: list[str] | str | None = None,
) -> FarmReport:
    """Plan *requests* into a job graph, retire it, and return the report.

    The library entry point onto the farm: everything the
    ``repro-experiments`` CLI does to produce artifacts — planning,
    deduplication, cache hits, retries — behind one call, with no table
    rendering attached.  ``repro-serve`` batches live through here, as
    does the serve load harness when it computes expected result bytes.

    All artifacts land in *cache*; use
    :meth:`Planner.request_keys` to locate them afterwards.  Passing an
    existing *report* accumulates across calls instead of starting fresh.
    """
    if report is None:
        report = FarmReport()
    planner = Planner(cache, report, adhoc=adhoc)
    graph = planner.plan(requests, default_scale, max_steps)
    engine = ExecutionEngine(
        cache, jobs=jobs, retry=retry, faults=faults, resume=resume,
        backend=backend, workers=workers,
    )
    engine.execute(graph, report)
    return report


class _RunState:
    """Mutable bookkeeping shared by the serial and parallel executors."""

    def __init__(self, graph: JobGraph, pending: dict, done: set):
        self.graph = graph
        self.pending = pending
        self.done = done
        self.dead: set[str] = set()
        self.attempts: dict[str, int] = {}
        #: Monotonic deadline before which a requeued job may not run.
        self.not_before: dict[str, float] = {}
        #: Corrupt-input heals granted per consumer (bounds heal cycles).
        self.corrupt_heals: dict[str, int] = {}

    def next_attempt(self, key: str) -> int:
        attempt = self.attempts.get(key, 0) + 1
        self.attempts[key] = attempt
        return attempt

    def unwind_attempt(self, key: str) -> None:
        """Forget an attempt that never ran (e.g. a cancelled submit)."""
        if self.attempts.get(key, 0) > 0:
            self.attempts[key] -= 1

    def runnable(self, now: float) -> list[Job]:
        return [
            job
            for job in self.pending.values()
            if all(dep in self.done for dep in job.deps)
            and self.not_before.get(job.key, 0.0) <= now
        ]

    def earliest_backoff(self) -> float | None:
        deadlines = [
            self.not_before[job.key]
            for job in self.pending.values()
            if job.key in self.not_before
            and all(dep in self.done for dep in job.deps)
        ]
        return min(deadlines) if deadlines else None


class ExecutionEngine:
    """Retires a job graph through a pluggable executor backend.

    ``retry`` bounds attempts, backoff, and per-attempt timeouts;
    ``faults`` arms the deterministic fault injector (a spec string or a
    :class:`~repro.jobs.faults.FaultPlan`); ``resume`` skips jobs the
    run journal shows a previous identical invocation already retired.

    ``backend`` picks the executor: ``"serial"`` (in-process),
    ``"pool"`` (local process pool of ``jobs`` workers), or ``"remote"``
    (``repro-worker`` daemons at the ``workers`` addresses, each holding
    up to ``jobs`` jobs in flight).  Left ``None``, it is inferred the
    way the farm always behaved: remote when worker addresses are given,
    else pool when ``jobs > 1``, else serial.
    """

    def __init__(
        self,
        cache: ArtifactCache,
        jobs: int = 1,
        retry: RetryPolicy | None = None,
        faults: str | FaultPlan | None = None,
        resume: bool = False,
        backend: str | None = None,
        workers: list[str] | str | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be a positive worker count")
        self.cache = cache
        self.jobs = jobs
        self.retry = retry if retry is not None else RetryPolicy()
        if isinstance(faults, str):
            faults = FaultPlan.from_spec(faults)
        self.faults = faults
        self.resume = resume
        if isinstance(workers, str):
            workers = [w.strip() for w in workers.split(",") if w.strip()]
        self.workers: list[str] = list(workers) if workers else []
        if backend is None:
            backend = (
                "remote" if self.workers else ("pool" if jobs > 1 else "serial")
            )
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r} (choose from "
                f"{', '.join(BACKEND_NAMES)})"
            )
        if backend == "remote" and not self.workers:
            raise ValueError(
                "remote backend needs worker addresses (host:port,...)"
            )
        self.backend_name = backend

    def execute(self, graph: JobGraph, report: FarmReport) -> None:
        with RunJournal(self.cache.root / "journal", graph) as journal:
            retired = journal.load() if self.resume else set()
            done: set[str] = set()
            pending: dict[str, Job] = {}
            for job in graph:
                if self._cached(job):
                    status = RESUMED if job.key in retired else HIT
                    report.record(job.key, job.stage, job.benchmark, status)
                    done.add(job.key)
                else:
                    pending[job.key] = job
            if not pending:
                return
            state = _RunState(graph, pending, done)
            with telemetry.span(
                "farm.execute", jobs=len(pending), workers=self.jobs
            ):
                self._execute(state, report, journal)
        self._merge_telemetry()

    @staticmethod
    def _merge_telemetry() -> None:
        """Fold worker span sinks into the main ``spans.jsonl``.

        Worker processes each append to their own sink file (they cannot
        share the main one); after the pool drains, the engine merges them
        in deterministic file-name order.  Also covers worker files left
        by an earlier interrupted run.
        """
        directory = telemetry.telemetry_dir()
        if directory is None:
            return
        telemetry.flush()
        telemetry.merge_worker_sinks(directory)

    @staticmethod
    def _note_queue_depth(depth: int) -> None:
        if telemetry.enabled():
            telemetry.METRICS.gauge("repro_jobs_queue_depth_peak").set_max(depth)

    def _cached(self, job: Job) -> bool:
        if job.stage == "trace":
            return self.cache.has_trace(job.key)
        if job.stage == "profile":
            return self.cache.has_profile(job.key)
        return self.cache.has_result(job.key)

    # -- payloads -------------------------------------------------------

    def _payload(self, job: Job, attempt: int, in_process: bool) -> dict:
        payload = dict(job.payload, attempt=attempt)
        if in_process:
            payload["in_process"] = True
        if self.faults is not None:
            payload["faults"] = self.faults.to_spec()
        if "trace_ctx" not in payload and telemetry.enabled():
            ctx = self._dispatch_trace_ctx()
            if ctx is not None:
                payload["trace_ctx"] = ctx
        return payload

    @staticmethod
    def _dispatch_trace_ctx() -> dict | None:
        """Trace context stitching this dispatch into the ambient trace.

        The worker's ``job.<stage>`` span parents to the innermost open
        span here (``farm.execute``), inheriting the invocation's trace
        id; planners that already embedded a per-submission ``trace_ctx``
        (the ``repro-serve`` scheduler) take precedence in
        :meth:`_payload`.  Only built when telemetry is enabled, so
        disabled runs ship byte-identical payloads.
        """
        open_span = telemetry.current_span()
        trace_id = getattr(open_span, "trace_id", None)
        parent_id = getattr(open_span, "span_id", None)
        if trace_id is None:
            ambient = telemetry.context.current()
            if ambient is None:
                return None
            trace_id = ambient.trace_id
            if parent_id is None:
                parent_id = ambient.parent_id
        return {"trace_id": trace_id, "parent_id": parent_id}

    # -- failure handling ----------------------------------------------

    @staticmethod
    def _classify(exc: BaseException) -> str:
        if isinstance(exc, JobTimeout):
            return "timeout"
        if isinstance(exc, CorruptArtifactError):
            return "corrupt"
        if isinstance(exc, (BrokenProcessPool, WorkerLost)):
            return "crash"
        return "error"

    def _handle_failure(
        self,
        state: _RunState,
        report: FarmReport,
        job: Job,
        attempt: int,
        exc: BaseException,
    ) -> None:
        """Requeue a failed attempt, or quarantine the job as dead."""
        kind = self._classify(exc)
        if kind == "corrupt" and self._requeue_corrupt_producer(
            state, report, job, attempt, exc
        ):
            return
        fatal = attempt >= self.retry.max_attempts
        message = str(exc) or type(exc).__name__
        report.record_failure(
            job.key, job.stage, job.benchmark, kind, attempt, message,
            retried=not fatal,
        )
        if fatal:
            self._kill_job(state, report, job)
        else:
            state.pending[job.key] = job
            state.not_before[job.key] = time.monotonic() + self.retry.delay(
                job.key, attempt
            )

    def _requeue_corrupt_producer(
        self,
        state: _RunState,
        report: FarmReport,
        job: Job,
        attempt: int,
        exc: BaseException,
    ) -> bool:
        """Heal a corrupt *input*: re-run its producer, then this job.

        The cache has already quarantined the damaged artifact; if its
        producer is part of this graph, pull it back out of ``done`` so
        it re-executes, and requeue the consumer without charging it an
        attempt (the failure was not its fault).  Returns False when the
        producer is unknown, leaving ordinary retry handling to run.
        """
        producer_key = getattr(exc, "key", None)
        producer = state.graph.jobs.get(producer_key) if producer_key else None
        if producer is None or producer.key == job.key:
            return False
        # A producer whose output is corrupt *every* time (persistent
        # disk fault, or times=0 injection) must not heal forever: once
        # the consumer has been granted max_attempts heals, fall back to
        # ordinary retry accounting so the job eventually dies.
        heals = state.corrupt_heals.get(job.key, 0) + 1
        if heals > self.retry.max_attempts:
            return False
        state.corrupt_heals[job.key] = heals
        report.record_failure(
            job.key, job.stage, job.benchmark, "corrupt", attempt, str(exc),
            retried=True,
        )
        state.done.discard(producer.key)
        state.pending[producer.key] = producer
        # The producer's previous outcome (a hit or an earlier run) is
        # stale: drop its record so the re-execution is reported.
        report.records.pop(producer.key, None)
        state.unwind_attempt(job.key)
        state.pending[job.key] = job
        return True

    def _kill_job(self, state: _RunState, report: FarmReport, job: Job) -> None:
        """Quarantine a job as dead, along with every transitive dependent."""
        report.record(job.key, job.stage, job.benchmark, DEAD)
        state.dead.add(job.key)
        state.pending.pop(job.key, None)
        self._kill_dead_dependents(state, report)

    def _kill_dead_dependents(self, state: _RunState, report: FarmReport) -> None:
        changed = True
        while changed:
            changed = False
            for job in list(state.pending.values()):
                lost = [dep for dep in job.deps if dep in state.dead]
                if not lost:
                    continue
                report.record_failure(
                    job.key, job.stage, job.benchmark, "dependency", 0,
                    f"dependency {lost[0][:12]} is dead", retried=False,
                )
                report.record(job.key, job.stage, job.benchmark, DEAD)
                state.dead.add(job.key)
                del state.pending[job.key]
                changed = True

    def _retire(
        self,
        state: _RunState,
        report: FarmReport,
        journal: RunJournal,
        job: Job,
        record: dict,
    ) -> None:
        report.record(
            job.key, job.stage, job.benchmark, RUN, record["seconds"]
        )
        state.done.add(job.key)
        journal.append(job, record["seconds"])

    # -- the backend dispatch loop ---------------------------------------

    def _make_backend(self, report: FarmReport, name: str):
        """Instantiate one backend, degrading pool→serial if no pool fits."""
        if name == "serial":
            from repro.jobs.backends.serial import SerialBackend

            return SerialBackend()
        if name == "pool":
            from repro.jobs.backends.pool import PoolBackend
            from repro.jobs.backends.serial import SerialBackend

            try:
                return PoolBackend(self.jobs)
            except (BrokenProcessPool, OSError) as exc:
                report.note(
                    f"process pool unavailable ({exc}); running serially"
                )
                return SerialBackend()
        from repro.jobs.backends.remote import RemoteBackend

        return RemoteBackend(self.cache, self.workers, per_worker=self.jobs)

    def _replace_backend(
        self, backend, rebuilds: int, report: FarmReport
    ) -> tuple[object, int]:
        """A broken backend's successor, per the degradation policy."""
        from repro.jobs.backends.serial import SerialBackend

        name = backend.capabilities.name
        if name == "pool":
            rebuilds += 1
            if rebuilds > self.retry.max_pool_rebuilds:
                report.note(
                    f"process pool died {rebuilds} times; degrading "
                    f"to serial in-process execution"
                )
                return SerialBackend(), rebuilds
            report.note(
                f"process pool died (rebuild {rebuilds}/"
                f"{self.retry.max_pool_rebuilds}); rebuilding"
            )
            return self._make_backend(report, "pool"), rebuilds
        if name == "remote":
            report.note(
                "all remote workers lost; degrading to serial "
                "in-process execution"
            )
            return SerialBackend(), rebuilds
        raise RuntimeError(
            f"{name} backend broke, and there is nothing to degrade to"
        )

    def _execute(
        self, state: _RunState, report: FarmReport, journal: RunJournal
    ) -> None:
        backend = self._make_backend(report, self.backend_name)
        rebuilds = 0
        try:
            while state.pending or backend.in_flight:
                now = time.monotonic()
                dispatched = False
                for job in state.runnable(now):
                    if not backend.can_accept():
                        break
                    if job.key not in state.pending:
                        continue  # requeued/killed earlier this sweep
                    attempt = state.next_attempt(job.key)
                    payload = self._payload(
                        job,
                        attempt,
                        in_process=backend.capabilities.name == "serial",
                    )
                    try:
                        backend.submit(
                            job, payload, attempt, self.retry.job_timeout
                        )
                    except WorkerLost:
                        state.unwind_attempt(job.key)
                        break
                    del state.pending[job.key]
                    dispatched = True
                self._note_queue_depth(len(state.pending) + backend.in_flight)
                if backend.in_flight:
                    for completion in backend.poll(self._poll_budget(state)):
                        self._settle(state, report, journal, completion)
                elif not dispatched and not backend.broken:
                    wake_at = state.earliest_backoff()
                    if wake_at is not None:
                        time.sleep(max(0.0, wake_at - time.monotonic()))
                        continue
                    if state.pending:
                        raise RuntimeError("job graph has a dependency cycle")
                self._drain_notes(backend, report)
                if backend.broken:
                    backend.shutdown()
                    backend, rebuilds = self._replace_backend(
                        backend, rebuilds, report
                    )
        finally:
            self._drain_notes(backend, report)
            backend.shutdown()

    def _settle(
        self,
        state: _RunState,
        report: FarmReport,
        journal: RunJournal,
        completion: Completion,
    ) -> None:
        """Fold one backend completion into the run state."""
        job, attempt = completion.job, completion.attempt
        if completion.record is not None:
            self._retire(state, report, journal, job, completion.record)
            return
        if not completion.charged:
            # Innocent victim of executor loss: requeue without spending
            # an attempt — unless its artifact actually landed (the job
            # finished but its acknowledgement was lost), in which case
            # it must retire, never execute twice.
            state.unwind_attempt(job.key)
            if self._cached(job):
                self._retire(state, report, journal, job, {"seconds": 0.0})
            else:
                state.pending[job.key] = job
            return
        if isinstance(
            completion.error, (BrokenProcessPool, WorkerLost)
        ) and self._cached(job):
            # The executor died *after* the job published its artifact:
            # retiring from the cache is the only outcome that cannot
            # run the job a second time.
            self._retire(state, report, journal, job, {"seconds": 0.0})
            return
        self._handle_failure(state, report, job, attempt, completion.error)

    def _poll_budget(self, state: _RunState) -> float:
        """How long a backend may block in :meth:`poll`.

        Short enough to notice backoff expiries; backends shorten it
        further to their nearest in-flight deadline.
        """
        horizon = 0.5
        wake_at = state.earliest_backoff()
        if wake_at is not None:
            horizon = min(horizon, max(0.01, wake_at - time.monotonic()))
        return horizon

    @staticmethod
    def _drain_notes(backend, report: FarmReport) -> None:
        """Surface backend operator notes (e.g. worker losses)."""
        take = getattr(backend, "take_notes", None)
        if take is None:
            return
        for note in take():
            report.note(note)
