"""Job graph construction and the process-parallel execution engine.

The planner expands a pooled list of experiment requests into a
deduplicated :class:`JobGraph` sharded at (benchmark × stage)
granularity::

    compile ──> trace ──> profile ──> analysis (one per option set)

The compile stage runs in the planner itself: it is three orders of
magnitude cheaper than tracing, and its product — the program fingerprint
that addresses every downstream artifact — is needed to build the graph
at all.  On a warm cache the planner does not even compile: it hashes the
cached disassembly listing instead.

The :class:`ExecutionEngine` then retires the graph.  Jobs whose artifact
already exists in the cache are recorded as hits and skipped; the rest
run either in-process (``jobs=1``, the default — also what the test suite
exercises) or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
dispatching each job as soon as its dependencies have retired.  Workers
exchange artifacts exclusively through the content-addressed cache (see
:mod:`repro.jobs.worker`), so results are byte-identical regardless of
worker count or scheduling order.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Iterable

from repro import telemetry
from repro.asm.disassembler import disassemble
from repro.bench import SUITE
from repro.jobs import keys
from repro.jobs.cache import ArtifactCache
from repro.jobs.report import HIT, RUN, FarmReport
from repro.jobs.requests import AnalysisRequest, Request, TraceRequest
from repro.jobs.worker import execute_job


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work, addressed by its artifact key."""

    key: str
    stage: str  # "trace" | "profile" | "analyze"
    benchmark: str
    payload: dict
    deps: tuple[str, ...] = ()


@dataclass
class JobGraph:
    """Deduplicated DAG of jobs, keyed by artifact address."""

    jobs: dict[str, Job] = field(default_factory=dict)

    def add(self, job: Job) -> None:
        self.jobs.setdefault(job.key, job)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs.values())


class Planner:
    """Expands requests into a job graph against one cache/config."""

    def __init__(
        self,
        cache: ArtifactCache,
        report: FarmReport,
        telemetry_dir: str | None = None,
        profile: bool = False,
    ):
        self.cache = cache
        self.report = report
        self.telemetry_dir = str(telemetry_dir) if telemetry_dir is not None else None
        self.profile = profile
        self._fingerprints: dict[tuple[str, int], str] = {}

    def _telemetry_payload(self) -> tuple[str | None, bool]:
        """Telemetry directory + profile flag to embed in job payloads.

        Falls back to the process-wide telemetry state so callers that
        configured telemetry globally need not thread it through here.
        """
        directory = self.telemetry_dir
        if directory is None and telemetry.enabled():
            configured = telemetry.telemetry_dir()
            directory = str(configured) if configured is not None else None
        return directory, self.profile or telemetry.profiling()

    # -- compile stage (runs in-process during planning) ----------------

    def fingerprint(self, benchmark: str, scale: int) -> str:
        """Program fingerprint for (benchmark, scale), via the compile stage.

        Cache hit: hash the stored disassembly without compiling.
        Cache miss: compile, disassemble, store the listing.
        """
        memo = self._fingerprints.get((benchmark, scale))
        if memo is not None:
            return memo
        spec = SUITE[benchmark]
        source = spec.source(scale)
        compile_key = keys.compile_key(benchmark, scale, source)
        if self.cache.has_asm(compile_key):
            fingerprint = keys.fingerprint_text(self.cache.load_asm(compile_key))
            self.report.record(compile_key, "compile", benchmark, HIT)
        else:
            started = time.time()
            listing = disassemble(spec.compile(scale))
            self.cache.store_asm(compile_key, listing)
            fingerprint = keys.fingerprint_text(listing)
            self.report.record(
                compile_key, "compile", benchmark, RUN, time.time() - started
            )
        self._fingerprints[(benchmark, scale)] = fingerprint
        return fingerprint

    # -- downstream stages ----------------------------------------------

    def plan(
        self,
        requests: Iterable[Request],
        default_scale: int | None,
        default_max_steps: int,
    ) -> JobGraph:
        graph = JobGraph()
        telemetry_dir, profile = self._telemetry_payload()
        for request in requests:
            spec = SUITE[request.benchmark]
            scale = default_scale if default_scale is not None else spec.default_scale
            max_steps = (
                request.max_steps if request.max_steps is not None else default_max_steps
            )
            trace_key, profile_key = self._add_trace_jobs(
                graph, request.benchmark, scale, max_steps, telemetry_dir, profile
            )
            if isinstance(request, AnalysisRequest):
                labels = request.model_labels
                result_key = keys.result_key(
                    trace_key,
                    labels,
                    request.perfect_unrolling,
                    request.perfect_inlining,
                    request.collect_misprediction_stats,
                )
                graph.add(
                    Job(
                        key=result_key,
                        stage="analyze",
                        benchmark=request.benchmark,
                        deps=(trace_key, profile_key),
                        payload={
                            "stage": "analyze",
                            "key": result_key,
                            "benchmark": request.benchmark,
                            "scale": scale,
                            "trace": trace_key,
                            "profile": profile_key,
                            "models": list(labels),
                            "perfect_unrolling": request.perfect_unrolling,
                            "perfect_inlining": request.perfect_inlining,
                            "misprediction_stats": request.collect_misprediction_stats,
                            "cache_dir": str(self.cache.root),
                            "telemetry": telemetry_dir,
                            "profiling": profile,
                        },
                    )
                )
        return graph

    def _add_trace_jobs(
        self,
        graph: JobGraph,
        benchmark: str,
        scale: int,
        max_steps: int,
        telemetry_dir: str | None = None,
        profile: bool = False,
    ) -> tuple[str, str]:
        fingerprint = self.fingerprint(benchmark, scale)
        trace_key = keys.trace_key(fingerprint, scale, max_steps)
        profile_key = keys.profile_key(trace_key)
        graph.add(
            Job(
                key=trace_key,
                stage="trace",
                benchmark=benchmark,
                payload={
                    "stage": "trace",
                    "key": trace_key,
                    "benchmark": benchmark,
                    "scale": scale,
                    "max_steps": max_steps,
                    "cache_dir": str(self.cache.root),
                    "telemetry": telemetry_dir,
                    "profiling": profile,
                },
            )
        )
        graph.add(
            Job(
                key=profile_key,
                stage="profile",
                benchmark=benchmark,
                deps=(trace_key,),
                payload={
                    "stage": "profile",
                    "key": profile_key,
                    "benchmark": benchmark,
                    "scale": scale,
                    "trace": trace_key,
                    "cache_dir": str(self.cache.root),
                    "telemetry": telemetry_dir,
                    "profiling": profile,
                },
            )
        )
        return trace_key, profile_key


class ExecutionEngine:
    """Retires a job graph serially or across a process pool."""

    def __init__(self, cache: ArtifactCache, jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be a positive worker count")
        self.cache = cache
        self.jobs = jobs

    def execute(self, graph: JobGraph, report: FarmReport) -> None:
        done: set[str] = set()
        pending: dict[str, Job] = {}
        for job in graph:
            if self._cached(job):
                report.record(job.key, job.stage, job.benchmark, HIT)
                done.add(job.key)
            else:
                pending[job.key] = job
        if not pending:
            return
        with telemetry.span(
            "farm.execute", jobs=len(pending), workers=self.jobs
        ):
            if self.jobs == 1:
                self._execute_serial(pending, done, report)
            else:
                self._execute_parallel(pending, done, report)
        self._merge_telemetry()

    @staticmethod
    def _merge_telemetry() -> None:
        """Fold worker span sinks into the main ``spans.jsonl``.

        Worker processes each append to their own sink file (they cannot
        share the main one); after the pool drains, the engine merges them
        in deterministic file-name order.  Also covers worker files left
        by an earlier interrupted run.
        """
        directory = telemetry.telemetry_dir()
        if directory is None:
            return
        telemetry.flush()
        telemetry.merge_worker_sinks(directory)

    @staticmethod
    def _note_queue_depth(depth: int) -> None:
        if telemetry.enabled():
            telemetry.METRICS.gauge("repro_jobs_queue_depth_peak").set_max(depth)

    def _cached(self, job: Job) -> bool:
        if job.stage == "trace":
            return self.cache.has_trace(job.key)
        if job.stage == "profile":
            return self.cache.has_profile(job.key)
        return self.cache.has_result(job.key)

    def _execute_serial(
        self, pending: dict[str, Job], done: set[str], report: FarmReport
    ) -> None:
        while pending:
            self._note_queue_depth(len(pending))
            ready = [
                job
                for job in pending.values()
                if all(dep in done for dep in job.deps)
            ]
            if not ready:
                raise RuntimeError("job graph has a dependency cycle")
            for job in ready:
                record = execute_job(job.payload)
                self._retire(job, record, report, done)
                del pending[job.key]

    def _execute_parallel(
        self, pending: dict[str, Job], done: set[str], report: FarmReport
    ) -> None:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            running: dict = {}
            while pending or running:
                for key in list(pending):
                    job = pending[key]
                    if all(dep in done for dep in job.deps):
                        running[pool.submit(execute_job, job.payload)] = job
                        del pending[key]
                if not running:
                    raise RuntimeError("job graph has a dependency cycle")
                self._note_queue_depth(len(pending) + len(running))
                finished, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in finished:
                    job = running.pop(future)
                    self._retire(job, future.result(), report, done)

    @staticmethod
    def _retire(job: Job, record: dict, report: FarmReport, done: set[str]) -> None:
        report.record(
            job.key, job.stage, job.benchmark, RUN, record["seconds"]
        )
        done.add(job.key)
