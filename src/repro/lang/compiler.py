"""MiniC compiler driver: source text → assembly → Program."""

from __future__ import annotations

import time

from repro import telemetry
from repro.asm import assemble
from repro.isa import Program
from repro.lang.codegen import generate
from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.semantics import check
from repro.lang.types import INT


def compile_to_assembly(source: str, if_convert: bool = False) -> str:
    """Compile MiniC *source* to assembly text (inspectable, reassemblable).

    ``if_convert=True`` turns simple guarded assignments into conditional
    moves instead of branches (paper §6's guarded instructions).
    """
    with telemetry.span("compile.frontend", chars=len(source)):
        with telemetry.span("compile.parse"):
            unit = parse(tokenize(source))
        with telemetry.span("compile.semantics"):
            checked = check(unit)
        main_sig = checked.functions.get("main")
        if main_sig is None:
            last = unit.functions[-1].line if unit.functions else 1
            raise CompileError("program has no main function", last)
        if main_sig.param_types or main_sig.return_type is not INT:
            main_def = next(f for f in unit.functions if f.name == "main")
            raise CompileError("main must be declared as `int main()`", main_def.line)
        with telemetry.span("compile.codegen"):
            return generate(checked, if_convert=if_convert)


def compile_source(source: str, name: str = "a.out", if_convert: bool = False) -> Program:
    """Compile MiniC *source* all the way to an executable Program."""
    tele_on = telemetry.enabled()
    started = time.perf_counter() if tele_on else 0.0
    with telemetry.span("compile", program=name) as sp:
        assembly = compile_to_assembly(source, if_convert=if_convert)
        with telemetry.span("compile.assemble", program=name):
            program = assemble(assembly, name=name)
        sp.set(instructions=len(program))
    if tele_on:
        telemetry.METRICS.histogram("repro_compile_seconds").observe(
            time.perf_counter() - started
        )
    return program
