"""A reference interpreter for MiniC — the compiler's executable spec.

Evaluates the *checked AST* directly with C semantics (32-bit wrapping
integers, truncating division, ``x/0 == 0``/``x%0 == x`` like the VM,
short-circuit booleans, switch fallthrough).  The property-based compiler
tests run random programs through both this interpreter and the full
compile→assemble→VM pipeline and require identical results, so a
divergence pinpoints a bug in one of the two implementations.

The memory model mirrors the machine's: one flat word-addressed space with
globals laid out in declaration order and per-call frames for local
arrays, so pointer arithmetic behaves identically (addresses differ from
the VM's, but all *relative* behaviour matches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import nodes as N
from repro.lang.errors import CompileError
from repro.lang.semantics import BUILTINS, CheckedUnit, GlobalVar, LocalVar

_WRAP = 0xFFFFFFFF
_SIGN = 0x80000000


def _wrap32(value: int) -> int:
    value &= _WRAP
    return value - (1 << 32) if value & _SIGN else value


def _c_div(a: int, b: int) -> int:
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return _wrap32(-quotient if (a < 0) != (b < 0) else quotient)


def _c_rem(a: int, b: int) -> int:
    if b == 0:
        return a
    remainder = abs(a) % abs(b)
    return _wrap32(-remainder if a < 0 else remainder)


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class ReferenceError_(Exception):
    """Raised when the interpreted program does something undefined that
    the reference cannot model (e.g. wild pointer writes)."""


@dataclass
class ReferenceResult:
    exit_value: int | float
    output: list[int | float | str] = field(default_factory=list)


class ReferenceInterpreter:
    """Direct evaluator over a checked translation unit."""

    def __init__(self, checked: CheckedUnit, max_steps: int = 5_000_000):
        self.checked = checked
        self.functions = {f.name: f for f in checked.unit.functions}
        self.max_steps = max_steps
        self.steps = 0
        self.memory: dict[int, int | float] = {}
        self.global_addr: dict[str, int] = {}
        self.string_addr: dict[str, int] = {}
        self.output: list[int | float | str] = []
        self._cursor = 0x1000
        self._stack_base = 1 << 22
        self._lay_out_globals()

    # -- setup ------------------------------------------------------------

    def _alloc(self, words: int) -> int:
        address = self._cursor
        self._cursor += words
        return address

    def _lay_out_globals(self) -> None:
        # Strings first (mirrors codegen), then globals in order.
        for decl in self.checked.unit.globals:
            init = decl.init
            if isinstance(init, N.StringLit):
                self._intern_string(init.value)
        for decl in self.checked.unit.globals:
            var_type = decl.var_type
            if var_type.is_array:
                base = self._alloc(var_type.size)  # type: ignore[attr-defined]
                self.global_addr[decl.name] = base
                zero = 0.0 if var_type.element.is_float else 0  # type: ignore[attr-defined]
                for i in range(var_type.size):  # type: ignore[attr-defined]
                    self.memory[base + i] = zero
                values = decl.init if isinstance(decl.init, list) else []
                for i, lit in enumerate(values):
                    self.memory[base + i] = lit.value
            else:
                addr = self._alloc(1)
                self.global_addr[decl.name] = addr
                self.memory[addr] = self._global_initial_value(decl)

    def _intern_string(self, text: str) -> int:
        if text not in self.string_addr:
            base = self._alloc(len(text) + 1)
            for i, ch in enumerate(text):
                self.memory[base + i] = ord(ch)
            self.memory[base + len(text)] = 0
            self.string_addr[text] = base
        return self.string_addr[text]

    def _global_initial_value(self, decl: N.GlobalDecl):
        init = decl.init
        if init is None:
            return 0.0 if decl.var_type.is_float else 0
        if isinstance(init, N.StringLit):
            return self._intern_string(init.value)
        if isinstance(init, N.AddrOf):
            symbol = self.checked.var_symbols[id(init)]
            return self.global_addr[symbol.name] + getattr(init, "const_offset", 0)
        if isinstance(init, (N.IntLit, N.FloatLit)):
            return init.value
        raise ReferenceError_(f"unsupported global initializer for {decl.name}")

    # -- execution ----------------------------------------------------------

    def run(self) -> ReferenceResult:
        value = self._call("main", [])
        return ReferenceResult(exit_value=value, output=self.output)

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ReferenceError_("reference interpreter step budget exhausted")

    def _call(self, name: str, args: list):
        builtin = BUILTINS.get(name)
        if builtin is not None:
            (arg,) = args
            if name == "put_char":
                self.output.append(chr(int(arg) & 0x10FFFF))
            elif name == "print_float":
                self.output.append(float(arg))
            else:
                self.output.append(arg)
            return None
        func = self.functions[name]
        env: dict[LocalVar, object] = {}
        frame_base = self._stack_base
        locals_ = self.checked.func_locals[name]
        params = [var for var in locals_ if var.is_param]
        for var, value in zip(params, args):
            env[var] = value
        # Local arrays get frame addresses (descending like a real stack).
        for var in locals_:
            if var.type.is_array:
                frame_base -= var.type.size  # type: ignore[attr-defined]
                env[var] = frame_base
                zero = 0.0 if var.type.element.is_float else 0  # type: ignore[attr-defined]
                for i in range(var.type.size):  # type: ignore[attr-defined]
                    self.memory[frame_base + i] = zero
        saved_stack = self._stack_base
        self._stack_base = frame_base
        try:
            self._exec_block(func.body, env)
        except _Return as ret:
            return ret.value
        finally:
            self._stack_base = saved_stack
        return 0  # fell off the end of a non-void function: unspecified; 0

    # -- statements -----------------------------------------------------------

    def _exec_block(self, block: N.Block, env) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: N.Stmt, env) -> None:
        self._tick()
        if isinstance(stmt, N.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, N.VarDecl):
            var = self.checked.var_symbols[id(stmt)]
            if stmt.init is not None:
                env[var] = self._coerce(self._eval(stmt.init, env), var.type)
            elif not var.type.is_array:
                env[var] = 0.0 if var.type.is_float else 0
        elif isinstance(stmt, N.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, N.If):
            if self._truthy(self._eval(stmt.cond, env)):
                self._exec_stmt(stmt.then, env)
            elif stmt.otherwise is not None:
                self._exec_stmt(stmt.otherwise, env)
        elif isinstance(stmt, N.While):
            while self._truthy(self._eval(stmt.cond, env)):
                self._tick()
                try:
                    self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, N.DoWhile):
            while True:
                self._tick()
                try:
                    self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._truthy(self._eval(stmt.cond, env)):
                    break
        elif isinstance(stmt, N.For):
            if stmt.init is not None:
                self._exec_stmt(stmt.init, env)
            while stmt.cond is None or self._truthy(self._eval(stmt.cond, env)):
                self._tick()
                try:
                    self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step, env)
        elif isinstance(stmt, N.Switch):
            self._exec_switch(stmt, env)
        elif isinstance(stmt, N.Return):
            raise _Return(
                None if stmt.value is None else self._eval(stmt.value, env)
            )
        elif isinstance(stmt, N.Break):
            raise _Break()
        elif isinstance(stmt, N.Continue):
            raise _Continue()
        elif isinstance(stmt, N.Empty):
            pass
        else:  # pragma: no cover
            raise ReferenceError_(f"unhandled statement {type(stmt).__name__}")

    def _exec_switch(self, stmt: N.Switch, env) -> None:
        selector = self._eval(stmt.cond, env)
        start = None
        for index, case in enumerate(stmt.cases):
            if case.value is not None and case.value == selector:
                start = index
                break
        if start is None:
            for index, case in enumerate(stmt.cases):
                if case.value is None:
                    start = index
                    break
        if start is None:
            return
        try:
            for case in stmt.cases[start:]:  # fallthrough
                for inner in case.body:
                    self._exec_stmt(inner, env)
        except _Break:
            pass

    # -- expressions -----------------------------------------------------------

    def _truthy(self, value) -> bool:
        return value != 0

    def _coerce(self, value, target_type):
        if target_type.is_float:
            return float(value)
        if target_type.is_int:
            return _wrap32(int(value))
        return value  # pointers are ints already

    def _eval(self, expr: N.Expr, env):
        self._tick()
        if isinstance(expr, N.IntLit):
            return _wrap32(expr.value)
        if isinstance(expr, N.FloatLit):
            return expr.value
        if isinstance(expr, N.StringLit):
            return self._intern_string(expr.value)
        if isinstance(expr, N.VarRef):
            return self._read_var(expr, env)
        if isinstance(expr, N.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, N.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, N.Logical):
            left = self._truthy(self._eval(expr.left, env))
            if expr.op == "&&":
                if not left:
                    return 0
                return 1 if self._truthy(self._eval(expr.right, env)) else 0
            if left:
                return 1
            return 1 if self._truthy(self._eval(expr.right, env)) else 0
        if isinstance(expr, N.Conditional):
            if self._truthy(self._eval(expr.cond, env)):
                return self._eval(expr.then, env)
            return self._eval(expr.otherwise, env)
        if isinstance(expr, N.Assign):
            return self._eval_assign(expr, env)
        if isinstance(expr, N.IncDec):
            return self._eval_incdec(expr, env)
        if isinstance(expr, N.Call):
            args = [self._eval(arg, env) for arg in expr.args]
            return self._call(expr.name, args)
        if isinstance(expr, N.Index):
            address = self._address_of(expr, env)
            return self.memory.get(address, 0)
        if isinstance(expr, N.Deref):
            address = self._eval(expr.pointer, env)
            return self.memory.get(int(address), 0)
        if isinstance(expr, N.AddrOf):
            return self._address_of(expr.operand, env)
        if isinstance(expr, N.Cast):
            value = self._eval(expr.operand, env)
            if expr.target_type.is_float:
                return float(value)
            return _wrap32(int(value))
        raise ReferenceError_(f"unhandled expression {type(expr).__name__}")

    def _read_var(self, expr: N.VarRef, env):
        symbol = self.checked.var_symbols[id(expr)]
        if isinstance(symbol, GlobalVar):
            if symbol.type.is_array:
                return self.global_addr[symbol.name]
            return self.memory[self.global_addr[symbol.name]]
        if symbol.type.is_array:
            return env[symbol]  # frame address
        return env.get(symbol, 0)

    def _address_of(self, expr: N.Expr, env) -> int:
        if isinstance(expr, N.Index):
            base = self._eval(expr.base, env)
            index = self._eval(expr.index, env)
            return int(base) + int(index)
        if isinstance(expr, N.Deref):
            return int(self._eval(expr.pointer, env))
        if isinstance(expr, N.VarRef):
            symbol = self.checked.var_symbols[id(expr)]
            if isinstance(symbol, GlobalVar):
                return self.global_addr[symbol.name]
            if symbol.type.is_array:
                return env[symbol]
            raise ReferenceError_(f"address of register variable {expr.name}")
        raise ReferenceError_("expression has no address")

    def _write_lvalue(self, target: N.Expr, value, env) -> None:
        if isinstance(target, N.VarRef):
            symbol = self.checked.var_symbols[id(target)]
            coerced = self._coerce(value, symbol.type)
            if isinstance(symbol, GlobalVar):
                self.memory[self.global_addr[symbol.name]] = coerced
            else:
                env[symbol] = coerced
            return
        address = self._address_of(target, env)
        self.memory[address] = self._coerce(value, target.type)

    def _eval_assign(self, expr: N.Assign, env):
        if expr.op is None:
            value = self._eval(expr.value, env)
            value = self._coerce(value, expr.type)
            self._write_lvalue(expr.target, value, env)
            return value
        current = self._eval(expr.target, env)
        operand = self._eval(expr.value, env)
        value = self._apply_binary(expr.op, current, operand, expr.type.is_float)
        value = self._coerce(value, expr.type)
        self._write_lvalue(expr.target, value, env)
        return value

    def _eval_incdec(self, expr: N.IncDec, env):
        current = self._eval(expr.target, env)
        updated = self._coerce(current + expr.delta, expr.type)
        self._write_lvalue(expr.target, updated, env)
        return updated if expr.is_prefix else current

    def _eval_unary(self, expr: N.Unary, env):
        value = self._eval(expr.operand, env)
        if expr.op == "-":
            if expr.type.is_float:
                return -value
            return _wrap32(-int(value))
        if expr.op == "!":
            return 0 if self._truthy(value) else 1
        return _wrap32(~int(value))  # '~'

    def _eval_binary(self, expr: N.Binary, env):
        left = self._eval(expr.left, env)
        op = expr.op
        if op in ("==", "!=", "<", ">", "<=", ">="):
            right = self._eval(expr.right, env)
            table = {
                "==": left == right, "!=": left != right, "<": left < right,
                ">": left > right, "<=": left <= right, ">=": left >= right,
            }
            return 1 if table[op] else 0
        right = self._eval(expr.right, env)
        return self._apply_binary(op, left, right, expr.type.is_float)

    def _apply_binary(self, op: str, left, right, is_float: bool):
        if is_float:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right if right != 0.0 else 0.0
            raise ReferenceError_(f"bad float operator {op}")
        a, b = int(left), int(right)
        if op == "+":
            return _wrap32(a + b)
        if op == "-":
            return _wrap32(a - b)
        if op == "*":
            return _wrap32(a * b)
        if op == "/":
            return _c_div(a, b)
        if op == "%":
            return _c_rem(a, b)
        if op == "&":
            return _wrap32(a & b)
        if op == "|":
            return _wrap32(a | b)
        if op == "^":
            return _wrap32(a ^ b)
        if op == "<<":
            return _wrap32(a << (b & 31))
        if op == ">>":
            return _wrap32(a >> (b & 31))
        raise ReferenceError_(f"bad int operator {op}")


def interpret(source: str, max_steps: int = 5_000_000) -> ReferenceResult:
    """Parse, check, and interpret MiniC *source* directly."""
    from repro.lang.lexer import tokenize
    from repro.lang.parser import parse
    from repro.lang.semantics import check

    unit = parse(tokenize(source))
    checked = check(unit)
    if "main" not in checked.functions:
        last = unit.functions[-1].line if unit.functions else 1
        raise CompileError("program has no main function", last)
    return ReferenceInterpreter(checked, max_steps=max_steps).run()
