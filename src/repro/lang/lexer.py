"""Hand-written lexer for MiniC."""

from __future__ import annotations

from repro.lang.errors import CompileError
from repro.lang.tokens import KEYWORDS, Token, TokenType

_TWO_CHAR = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND_AND,
    "||": TokenType.OR_OR,
    "++": TokenType.PLUS_PLUS,
    "--": TokenType.MINUS_MINUS,
    "+=": TokenType.PLUS_ASSIGN,
    "-=": TokenType.MINUS_ASSIGN,
    "*=": TokenType.STAR_ASSIGN,
    "/=": TokenType.SLASH_ASSIGN,
    "%=": TokenType.PERCENT_ASSIGN,
    "<<": TokenType.SHL,
    ">>": TokenType.SHR,
}

_ONE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMI,
    ",": TokenType.COMMA,
    "?": TokenType.QUESTION,
    ":": TokenType.COLON,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
    "&": TokenType.AMP,
    "|": TokenType.PIPE,
    "^": TokenType.CARET,
    "~": TokenType.TILDE,
}

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "\\": "\\", "'": "'", '"': '"',
}


class Lexer:
    """Tokenizes MiniC source; supports // and /* */ comments."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            token = self._next()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # -- internals -----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self.line, self.col)

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance()
                self._advance()
                while True:
                    if self.pos >= len(self.source):
                        raise CompileError("unterminated comment", start_line)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _next(self) -> Token:
        self._skip_trivia()
        line, col = self.line, self.col
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, "", line, col)
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, col)
        if ch.isalpha() or ch == "_":
            return self._ident(line, col)
        if ch == "'":
            return self._char(line, col)
        if ch == '"':
            return self._string(line, col)
        two = ch + self._peek(1)
        if two in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[two], two, line, col)
        if ch in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[ch], ch, line, col)
        raise self._error(f"unexpected character {ch!r}")

    def _number(self, line: int, col: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance()
            self._advance()
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            return Token(TokenType.INT_LIT, text, line, col, value=int(text, 16))
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        if is_float:
            return Token(TokenType.FLOAT_LIT, text, line, col, value=float(text))
        return Token(TokenType.INT_LIT, text, line, col, value=int(text))

    def _ident(self, line: int, col: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        if text in KEYWORDS:
            return Token(KEYWORDS[text], text, line, col)
        return Token(TokenType.IDENT, text, line, col)

    def _escape(self) -> str:
        ch = self._advance()
        if ch != "\\":
            return ch
        esc = self._advance() if self.pos < len(self.source) else ""
        if esc not in _ESCAPES:
            raise self._error(f"bad escape sequence \\{esc}")
        return _ESCAPES[esc]

    def _char(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        if self.pos >= len(self.source):
            raise self._error("unterminated character literal")
        value = self._escape()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token(TokenType.CHAR_LIT, f"'{value}'", line, col, value=ord(value))

    def _string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise self._error("unterminated string literal")
            if self._peek() == '"':
                self._advance()
                break
            chars.append(self._escape())
        text = "".join(chars)
        return Token(TokenType.STRING_LIT, text, line, col, value=text)


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC *source*, ending with an EOF token."""
    return Lexer(source).tokenize()
