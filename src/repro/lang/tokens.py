"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    # literals / identifiers
    INT_LIT = "int literal"
    FLOAT_LIT = "float literal"
    CHAR_LIT = "char literal"
    STRING_LIT = "string literal"
    IDENT = "identifier"
    # keywords
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_CHAR = "char"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    QUESTION = "?"
    COLON = ":"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    NOT = "!"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHL = "<<"
    SHR = ">>"
    EOF = "<eof>"


KEYWORDS = {
    "int": TokenType.KW_INT,
    "float": TokenType.KW_FLOAT,
    "void": TokenType.KW_VOID,
    "char": TokenType.KW_CHAR,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "do": TokenType.KW_DO,
    "for": TokenType.KW_FOR,
    "return": TokenType.KW_RETURN,
    "switch": TokenType.KW_SWITCH,
    "case": TokenType.KW_CASE,
    "default": TokenType.KW_DEFAULT,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    text: str
    line: int
    col: int
    value: int | float | str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.col})"
