"""MiniC abstract syntax tree.

Expression nodes carry a ``type`` attribute filled in by the semantic
checker (:mod:`repro.lang.semantics`); the code generator relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.types import Type

# ---------------------------------------------------------------------------
# expressions


@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)
    type: Type | None = field(default=None, kw_only=True, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!', '~'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""  # + - * / % == != < > <= >= & | ^ << >>
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Logical(Expr):
    op: str = ""  # '&&' or '||'
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Conditional(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Assign(Expr):
    target: Expr | None = None  # VarRef, Index, or Deref
    value: Expr | None = None
    op: str | None = None  # None for plain '=', else '+', '-', '*', '/', '%'


@dataclass
class IncDec(Expr):
    target: Expr | None = None
    delta: int = 1  # +1 or -1
    is_prefix: bool = False


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Deref(Expr):
    pointer: Expr | None = None


@dataclass
class AddrOf(Expr):
    operand: Expr | None = None


@dataclass
class Cast(Expr):
    target_type: Type | None = None
    operand: Expr | None = None


# ---------------------------------------------------------------------------
# statements


@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class VarDecl(Stmt):
    name: str = ""
    var_type: Type | None = None
    init: Expr | None = None


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None  # ExprStmt or VarDecl or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class SwitchCase:
    """One `case N:` (or `default:` when value is None) and the statements
    up to the next label.  C fallthrough: execution continues into the next
    case unless a `break` intervenes."""

    value: int | None
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch(Stmt):
    cond: Expr | None = None
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Empty(Stmt):
    pass


# ---------------------------------------------------------------------------
# top level


@dataclass
class Param:
    name: str
    type: Type
    line: int = 0


@dataclass
class FuncDef:
    name: str
    return_type: Type
    params: list[Param]
    body: Block
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    var_type: Type
    init: Expr | list[Expr] | None = None  # list for array initializers
    line: int = 0


@dataclass
class TranslationUnit:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
