"""MiniC: a small C-like language compiled to the repro ISA.

Features: ``int``/``float``/``char`` (= int) scalars, pointers, global and
local arrays, global initializers, string literals, full C expression
grammar (including ``&&``/``||`` short-circuiting, ``?:``, compound
assignment, ``++``/``--``), ``if``/``while``/``do``/``for``/``break``/
``continue``/``return``, recursion, and the ``print_int``/``print_float``/
``put_char`` debug builtins.

The code generator follows MIPS o32 conventions so that the limit study's
perfect-inlining and perfect-unrolling transformations apply exactly as in
the paper (see :mod:`repro.lang.codegen`).
"""

from repro.lang.compiler import compile_source, compile_to_assembly
from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize
from repro.lang.lint import lint_checked, lint_minic
from repro.lang.parser import parse
from repro.lang.reference import ReferenceInterpreter, ReferenceResult, interpret
from repro.lang.semantics import BUILTINS, CheckedUnit, check

__all__ = [
    "BUILTINS",
    "CheckedUnit",
    "CompileError",
    "ReferenceInterpreter",
    "ReferenceResult",
    "check",
    "compile_source",
    "compile_to_assembly",
    "interpret",
    "lint_checked",
    "lint_minic",
    "parse",
    "tokenize",
]
