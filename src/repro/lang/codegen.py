"""MiniC code generator: checked AST → repro assembly text.

Register allocation follows the MIPS o32 conventions used by the paper's
compilers:

* integer/pointer local scalars and parameters live in callee-saved
  ``$s0..$s7``; float scalars in ``$f20..$f31``; overflow goes to stack
  slots (keeping index variables in registers is what makes the paper's
  perfect-unrolling analysis applicable — see §4.2);
* expression temporaries come from caller-saved ``$t0..$t9`` /
  ``$f4..$f11`` and are spilled around calls;
* arguments are passed in ``$a0..$a3`` / ``$f12..$f15``; results return
  in ``$v0`` / ``$f0``;
* each function adjusts ``$sp`` in its prologue/epilogue and saves ``$ra``
  plus the callee-saved registers it uses — exactly the instructions the
  limit study's *perfect inlining* later removes or keeps, as in the paper.

Code shapes matter to the study and mirror MIPS compiler output:
``i = i + 1`` (and ``i++``, ``i += c``) on a register variable becomes a
single self-increment ``addi``; loop conditions compile to a compare
(``slt``-family, immediate form when possible) feeding a single conditional
branch, so the induction analysis recognizes loop overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import registers as R
from repro.lang.errors import CompileError
from repro.lang import nodes as N
from repro.lang.semantics import BUILTINS, CheckedUnit, GlobalVar, LocalVar
from repro.lang.types import FLOAT, INT

_WORD_MIN, _WORD_MAX = -(1 << 31), (1 << 31) - 1


def _reg_name(reg: int) -> str:
    return R.reg_name(reg)


# ---------------------------------------------------------------------------
# storage and register management


@dataclass(frozen=True)
class Storage:
    """Where a local lives: a callee-saved register or a frame slot.
    Arrays always get a frame range (``offset``..``offset+size``)."""

    kind: str  # 'reg' | 'slot' | 'array'
    reg: int | None = None
    offset: int | None = None


class Frame:
    """Stack-frame layout builder (word units, offsets from the new $sp)."""

    def __init__(self) -> None:
        self.size = 0

    def alloc(self, words: int = 1) -> int:
        offset = self.size
        self.size += words
        return offset


class RegPool:
    """Caller-saved temporary register pool.

    ``free`` ignores registers it does not own, so borrowed callee-saved
    variable registers can flow through expression evaluation safely.
    """

    def __init__(self, regs: tuple[int, ...], what: str):
        self._all = regs
        self._free = list(regs)
        self._in_use: set[int] = set()
        self._what = what

    def alloc(self, line: int = 0) -> int:
        if not self._free:
            raise CompileError(
                f"expression too complex: out of {self._what} temporaries", line
            )
        reg = self._free.pop(0)
        self._in_use.add(reg)
        return reg

    def free(self, reg: int) -> None:
        if reg in self._in_use:
            self._in_use.remove(reg)
            self._free.insert(0, reg)

    @property
    def live(self) -> tuple[int, ...]:
        return tuple(sorted(self._in_use))


# ---------------------------------------------------------------------------
# code generator


class CodeGen:
    def __init__(self, checked: CheckedUnit, if_convert: bool = False):
        self.checked = checked
        self.if_convert = if_convert
        self.lines: list[str] = []
        self._label_counter = 0
        self._string_labels: dict[str, str] = {}
        # per-function state
        self.frame = Frame()
        self.storage: dict[LocalVar, Storage] = {}
        self.int_pool = RegPool(R.INT_TEMP_REGS, "integer")
        self.float_pool = RegPool(R.FP_TEMP_REGS, "float")
        self.body: list[str] = []
        self.epilogue_label = ""
        self.break_labels: list[str] = []
        self.continue_labels: list[str] = []
        self.used_saved: set[int] = set()
        self.makes_calls = False
        self._jump_tables: list[tuple[str, list[str]]] = []

    # -- top level ------------------------------------------------------

    def generate(self) -> str:
        self._collect_strings()
        self._emit_data()
        self.lines.append(".text")
        self._emit_start_stub()
        for func in self.checked.unit.functions:
            self._gen_function(func)
        if self._jump_tables:
            # Switch dispatch tables of code-label addresses; the assembler
            # resolves these as forward references.
            self.lines.append(".data")
            for label, entries in self._jump_tables:
                rendered = ", ".join(entries)
                self.lines.append(f"{label}: .word {rendered}")
                self.lines.append(f".jumptable {label}, {len(entries)}")
        return "\n".join(self.lines) + "\n"

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{hint}{self._label_counter}"

    def _emit_start_stub(self) -> None:
        self.lines.append(".func __start")
        self.lines.append("__start:")
        self.lines.append("    jal main")
        self.lines.append("    halt")
        self.lines.append(".endfunc")

    # -- data segment ------------------------------------------------------

    def _collect_strings(self) -> None:
        def walk_expr(expr: N.Expr | None) -> None:
            if expr is None:
                return
            if isinstance(expr, N.StringLit):
                if expr.value not in self._string_labels:
                    label = f".str{len(self._string_labels)}"
                    self._string_labels[expr.value] = label
            for attr in vars(expr).values():
                if isinstance(attr, N.Expr):
                    walk_expr(attr)
                elif isinstance(attr, list):
                    for item in attr:
                        if isinstance(item, N.Expr):
                            walk_expr(item)

        def walk_stmt(stmt: N.Stmt | None) -> None:
            if stmt is None:
                return
            for attr in vars(stmt).values():
                if isinstance(attr, N.Expr):
                    walk_expr(attr)
                elif isinstance(attr, N.Stmt):
                    walk_stmt(attr)
                elif isinstance(attr, list):
                    for item in attr:
                        if isinstance(item, N.Stmt):
                            walk_stmt(item)
                        elif isinstance(item, N.Expr):
                            walk_expr(item)

        for func in self.checked.unit.functions:
            walk_stmt(func.body)
        for decl in self.checked.unit.globals:
            if isinstance(decl.init, N.StringLit):
                if decl.init.value not in self._string_labels:
                    label = f".str{len(self._string_labels)}"
                    self._string_labels[decl.init.value] = label

    def _emit_data(self) -> None:
        has_data = self._string_labels or self.checked.unit.globals
        if not has_data:
            return
        self.lines.append(".data")
        for text, label in self._string_labels.items():
            escaped = (
                text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\r", "\\r")
                .replace("\0", "\\0")
            )
            self.lines.append(f'{label}: .asciiz "{escaped}"')
        for decl in self.checked.unit.globals:
            self._emit_global(decl)

    def _emit_global(self, decl: N.GlobalDecl) -> None:
        symbol = self.checked.globals[decl.name]
        label = symbol.label
        var_type = decl.var_type
        if var_type.is_array:
            element = var_type.element  # type: ignore[attr-defined]
            values = decl.init if isinstance(decl.init, list) else []
            directive = ".float" if element.is_float else ".word"
            if values:
                rendered = ", ".join(str(v.value) for v in values)
                self.lines.append(f"{label}: {directive} {rendered}")
                remaining = var_type.size - len(values)  # type: ignore[attr-defined]
                if remaining > 0:
                    self.lines.append(f"    .space {remaining}")
            else:
                self.lines.append(f"{label}: .space {var_type.size}")  # type: ignore[attr-defined]
            return
        if isinstance(decl.init, N.StringLit):
            string_label = self._string_labels[decl.init.value]
            self.lines.append(f"{label}: .word {string_label}")
            return
        if isinstance(decl.init, N.AddrOf):
            # Address constant: `&g`, `arr`, or `&arr[K]`.
            target = self.checked.var_symbols[id(decl.init)]
            offset = getattr(decl.init, "const_offset", 0)
            suffix = f"+{offset}" if offset else ""
            self.lines.append(f"{label}: .word {target.label}{suffix}")
            return
        if var_type.is_float:
            value = decl.init.value if isinstance(decl.init, N.FloatLit) else 0.0
            self.lines.append(f"{label}: .float {value}")
        else:
            value = decl.init.value if isinstance(decl.init, (N.IntLit,)) else 0
            self.lines.append(f"{label}: .word {value}")

    # -- functions ---------------------------------------------------------

    def _gen_function(self, func: N.FuncDef) -> None:
        self.frame = Frame()
        self.storage = {}
        self.int_pool = RegPool(R.INT_TEMP_REGS, "integer")
        self.float_pool = RegPool(R.FP_TEMP_REGS, "float")
        self.body = []
        self.epilogue_label = self._new_label("ret")
        self.break_labels = []
        self.continue_labels = []
        self.used_saved = set()
        self.makes_calls = _has_calls(func.body, self.checked)

        locals_ = self.checked.func_locals[func.name]
        self._assign_storage(locals_)

        # Body first: the frame keeps growing (temp-save slots), so the
        # prologue is emitted afterwards with the final size.
        self._copy_params(func)
        self._gen_stmt(func.body)

        prologue: list[str] = [f".func {func.name}", f"{func.name}:"]
        save_slots: list[tuple[int, int]] = []
        ra_slot: int | None = None
        if self.makes_calls:
            ra_slot = self.frame.alloc()
        for reg in sorted(self.used_saved):
            save_slots.append((reg, self.frame.alloc()))
        frame_size = self.frame.size
        if frame_size:
            prologue.append(f"    addi $sp, $sp, -{frame_size}")
        if ra_slot is not None:
            prologue.append(f"    sw $ra, {ra_slot}($sp)")
        for reg, slot in save_slots:
            op = "fsw" if R.is_fp_reg(reg) else "sw"
            prologue.append(f"    {op} {_reg_name(reg)}, {slot}($sp)")

        epilogue: list[str] = [f"{self.epilogue_label}:"]
        for reg, slot in save_slots:
            op = "flw" if R.is_fp_reg(reg) else "lw"
            epilogue.append(f"    {op} {_reg_name(reg)}, {slot}($sp)")
        if ra_slot is not None:
            epilogue.append(f"    lw $ra, {ra_slot}($sp)")
        if frame_size:
            epilogue.append(f"    addi $sp, $sp, {frame_size}")
        epilogue.append("    jr $ra")
        epilogue.append(".endfunc")

        self.lines.extend(prologue)
        self.lines.extend(_remove_jumps_to_next(self.body + epilogue))

    def _assign_storage(self, locals_: list[LocalVar]) -> None:
        int_regs = list(R.INT_SAVED_REGS)
        float_regs = list(R.FP_SAVED_REGS)
        for var in locals_:
            if var.type.is_array:
                offset = self.frame.alloc(var.type.size)  # type: ignore[attr-defined]
                self.storage[var] = Storage("array", offset=offset)
            elif var.type.is_float:
                if float_regs:
                    reg = float_regs.pop(0)
                    self.used_saved.add(reg)
                    self.storage[var] = Storage("reg", reg=reg)
                else:
                    self.storage[var] = Storage("slot", offset=self.frame.alloc())
            else:  # int or pointer
                if int_regs:
                    reg = int_regs.pop(0)
                    self.used_saved.add(reg)
                    self.storage[var] = Storage("reg", reg=reg)
                else:
                    self.storage[var] = Storage("slot", offset=self.frame.alloc())

    def _copy_params(self, func: N.FuncDef) -> None:
        locals_ = self.checked.func_locals[func.name]
        int_idx = 0
        float_idx = 0
        for var in locals_:
            if not var.is_param:
                continue
            if var.type.is_float:
                arg_reg = R.FP_ARG_REGS[float_idx]
                float_idx += 1
            else:
                arg_reg = R.INT_ARG_REGS[int_idx]
                int_idx += 1
            storage = self.storage[var]
            if storage.kind == "reg":
                op = "fmov" if var.type.is_float else "mov"
                self._emit(f"{op} {_reg_name(storage.reg)}, {_reg_name(arg_reg)}")
            else:
                op = "fsw" if var.type.is_float else "sw"
                self._emit(f"{op} {_reg_name(arg_reg)}, {storage.offset}($sp)")

    def _emit(self, text: str) -> None:
        self.body.append(f"    {text}")

    def _emit_label(self, label: str) -> None:
        self.body.append(f"{label}:")

    # -- statements -----------------------------------------------------------

    def _gen_stmt(self, stmt: N.Stmt) -> None:
        if isinstance(stmt, N.Block):
            for inner in stmt.statements:
                self._gen_stmt(inner)
        elif isinstance(stmt, N.VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, N.ExprStmt):
            self._gen_expr_for_effect(stmt.expr)
        elif isinstance(stmt, N.If):
            self._gen_if(stmt)
        elif isinstance(stmt, N.While):
            self._gen_while(stmt)
        elif isinstance(stmt, N.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, N.For):
            self._gen_for(stmt)
        elif isinstance(stmt, N.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, N.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, N.Break):
            self._emit(f"j {self.break_labels[-1]}")
        elif isinstance(stmt, N.Continue):
            self._emit(f"j {self.continue_labels[-1]}")
        elif isinstance(stmt, N.Empty):
            pass
        else:  # pragma: no cover - parser produces only the above
            raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _gen_var_decl(self, decl: N.VarDecl) -> None:
        if decl.init is None:
            return
        var = self.checked.var_symbols[id(decl)]
        self._store_to_var(var, decl.init)

    def _gen_if(self, stmt: N.If) -> None:
        if self.if_convert and self._try_if_convert(stmt):
            return
        end_label = self._new_label("endif")
        if stmt.otherwise is None:
            self._gen_cond_branch(stmt.cond, end_label, jump_if=False)
            self._gen_stmt(stmt.then)
            self._emit_label(end_label)
        else:
            else_label = self._new_label("else")
            self._gen_cond_branch(stmt.cond, else_label, jump_if=False)
            self._gen_stmt(stmt.then)
            self._emit(f"j {end_label}")
            self._emit_label(else_label)
            self._gen_stmt(stmt.otherwise)
            self._emit_label(end_label)

    # -- if-conversion (guarded instructions, paper §6) --------------------

    def _try_if_convert(self, stmt: N.If) -> bool:
        """Convert ``if (c) v = e;`` (and two-armed variants) into guarded
        moves, eliminating the branch.

        The paper's §6 motivates guarded instructions: "they help increase
        the distance between mispredicted branches".  Conversion applies
        when every arm is a single side-effect-free assignment to a
        register-resident scalar.
        """
        then_assign = self._convertible_assignment(stmt.then)
        if then_assign is None or not self._is_safe_expr(stmt.cond):
            return False
        else_assign = None
        if stmt.otherwise is not None:
            else_assign = self._convertible_assignment(stmt.otherwise)
            if else_assign is None:
                return False

        guard = self._gen_expr_scalar(stmt.cond)
        self._emit_guarded_assign(then_assign, guard, when_true=True)
        if else_assign is not None:
            self._emit_guarded_assign(else_assign, guard, when_true=False)
        self.int_pool.free(guard)
        return True

    def _convertible_assignment(self, stmt: N.Stmt) -> N.Assign | None:
        """The single guardable assignment in *stmt*, or None."""
        while isinstance(stmt, N.Block):
            if len(stmt.statements) != 1:
                return None
            stmt = stmt.statements[0]
        if not isinstance(stmt, N.ExprStmt) or not isinstance(stmt.expr, N.Assign):
            return None
        assign = stmt.expr
        target = assign.target
        if not isinstance(target, N.VarRef):
            return None
        if self._var_reg(target) is None:
            return None  # memory-resident: a guarded store would be unsafe
        if not self._is_safe_expr(assign.value):
            return None
        return assign

    def _is_safe_expr(self, expr: N.Expr | None) -> bool:
        """Side-effect-free and branch-free: safe to evaluate unconditionally."""
        if expr is None:
            return False
        if isinstance(expr, (N.IntLit, N.FloatLit, N.StringLit, N.VarRef)):
            return True
        if isinstance(expr, N.Unary):
            return self._is_safe_expr(expr.operand)
        if isinstance(expr, N.Binary):
            return self._is_safe_expr(expr.left) and self._is_safe_expr(expr.right)
        if isinstance(expr, N.Index):
            return self._is_safe_expr(expr.base) and self._is_safe_expr(expr.index)
        if isinstance(expr, N.Deref):
            return self._is_safe_expr(expr.pointer)
        if isinstance(expr, N.AddrOf):
            return self._is_safe_expr(expr.operand)
        if isinstance(expr, N.Cast):
            return self._is_safe_expr(expr.operand)
        return False  # calls, assignments, ++/--, &&/||, ?: keep branches

    def _emit_guarded_assign(self, assign: N.Assign, guard: int, when_true: bool) -> None:
        target: N.VarRef = assign.target  # type: ignore[assignment]
        dest = self._var_reg(target)
        assert dest is not None
        value = assign.value
        if assign.op is not None:
            value = N.Binary(assign.op, self._clone_lvalue(target), value, line=assign.line)
            value.type = FLOAT if assign.type.is_float else (
                assign.type if assign.type.is_pointer else INT
            )
        value_reg = self._gen_expr(value)
        is_float = assign.type.is_float
        mnemonic = ("fmovn" if when_true else "fmovz") if is_float else (
            "movn" if when_true else "movz"
        )
        self._emit(
            f"{mnemonic} {_reg_name(dest)}, {_reg_name(value_reg)}, {_reg_name(guard)}"
        )
        pool = self.float_pool if is_float else self.int_pool
        pool.free(value_reg)

    def _gen_while(self, stmt: N.While) -> None:
        head = self._new_label("while")
        end = self._new_label("endwhile")
        self._emit_label(head)
        self._gen_cond_branch(stmt.cond, end, jump_if=False)
        self.break_labels.append(end)
        self.continue_labels.append(head)
        self._gen_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self._emit(f"j {head}")
        self._emit_label(end)

    def _gen_do_while(self, stmt: N.DoWhile) -> None:
        head = self._new_label("do")
        cond_label = self._new_label("docond")
        end = self._new_label("enddo")
        self._emit_label(head)
        self.break_labels.append(end)
        self.continue_labels.append(cond_label)
        self._gen_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self._emit_label(cond_label)
        self._gen_cond_branch(stmt.cond, head, jump_if=True)
        self._emit_label(end)

    def _gen_for(self, stmt: N.For) -> None:
        head = self._new_label("for")
        cont = self._new_label("forstep")
        end = self._new_label("endfor")
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        self._emit_label(head)
        if stmt.cond is not None:
            self._gen_cond_branch(stmt.cond, end, jump_if=False)
        self.break_labels.append(end)
        self.continue_labels.append(cont)
        self._gen_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self._emit_label(cont)
        if stmt.step is not None:
            self._gen_expr_for_effect(stmt.step)
        self._emit(f"j {head}")
        self._emit_label(end)

    def _gen_switch(self, stmt: N.Switch) -> None:
        """C switch: dense value sets dispatch through a jump table (a
        computed ``jr`` — the unpredicted control transfer of §4.4.2);
        sparse sets fall back to a compare-and-branch chain."""
        end_label = self._new_label("endsw")
        case_labels = {
            id(case): self._new_label("case") for case in stmt.cases
        }
        default_case = next((c for c in stmt.cases if c.value is None), None)
        default_label = (
            case_labels[id(default_case)] if default_case is not None else end_label
        )
        valued = [(c.value, case_labels[id(c)]) for c in stmt.cases if c.value is not None]

        selector = self._gen_expr(stmt.cond)
        if self._switch_is_dense(valued):
            self._gen_switch_table(selector, valued, default_label)
        else:
            for value, label in valued:
                temp = self.int_pool.alloc(stmt.line)
                self._emit(f"li {_reg_name(temp)}, {value}")
                self._emit(f"beq {_reg_name(selector)}, {_reg_name(temp)}, {label}")
                self.int_pool.free(temp)
            self._emit(f"j {default_label}")
            self.int_pool.free(selector)

        self.break_labels.append(end_label)
        for case in stmt.cases:
            self._emit_label(case_labels[id(case)])
            for inner in case.body:
                self._gen_stmt(inner)
            # C fallthrough: no jump between consecutive cases.
        self.break_labels.pop()
        self._emit_label(end_label)

    @staticmethod
    def _switch_is_dense(valued: list[tuple[int, str]]) -> bool:
        if len(valued) < 4:
            return False
        values = [value for value, _ in valued]
        span = max(values) - min(values) + 1
        return span <= 3 * len(valued) + 8

    def _gen_switch_table(
        self, selector: int, valued: list[tuple[int, str]], default_label: str
    ) -> None:
        values = [value for value, _ in valued]
        low, high = min(values), max(values)
        table_label = f".jt{len(self._jump_tables)}"
        entries = [default_label] * (high - low + 1)
        for value, label in valued:
            entries[value - low] = label
        self._jump_tables.append((table_label, entries))

        index = self.int_pool.alloc()
        if low != 0:
            self._emit(f"addi {_reg_name(index)}, {_reg_name(selector)}, {-low}")
        else:
            self._emit(f"mov {_reg_name(index)}, {_reg_name(selector)}")
        self.int_pool.free(selector)
        self._emit(f"bltz {_reg_name(index)}, {default_label}")
        bound = self.int_pool.alloc()
        self._emit(f"slti {_reg_name(bound)}, {_reg_name(index)}, {len(entries)}")
        self._emit(f"beq {_reg_name(bound)}, $zero, {default_label}")
        self.int_pool.free(bound)
        target = self.int_pool.alloc()
        self._emit(f"lw {_reg_name(target)}, {table_label}({_reg_name(index)})")
        self.int_pool.free(index)
        self._emit(f"jr {_reg_name(target)}")
        self.int_pool.free(target)

    def _gen_return(self, stmt: N.Return) -> None:
        if stmt.value is not None:
            if stmt.value.type.is_float:
                reg = self._gen_expr(stmt.value)
                self._emit(f"fmov $f0, {_reg_name(reg)}")
                self.float_pool.free(reg)
            else:
                reg = self._gen_expr(stmt.value)
                self._emit(f"mov $v0, {_reg_name(reg)}")
                self.int_pool.free(reg)
        self._emit(f"j {self.epilogue_label}")

    # -- conditions ---------------------------------------------------------------

    def _gen_cond_branch(self, cond: N.Expr, target: str, jump_if: bool) -> None:
        """Emit code that jumps to *target* iff bool(cond) == jump_if."""
        if isinstance(cond, N.Logical):
            if cond.op == "&&":
                if jump_if:
                    skip = self._new_label("and")
                    self._gen_cond_branch(cond.left, skip, jump_if=False)
                    self._gen_cond_branch(cond.right, target, jump_if=True)
                    self._emit_label(skip)
                else:
                    self._gen_cond_branch(cond.left, target, jump_if=False)
                    self._gen_cond_branch(cond.right, target, jump_if=False)
            else:  # '||'
                if jump_if:
                    self._gen_cond_branch(cond.left, target, jump_if=True)
                    self._gen_cond_branch(cond.right, target, jump_if=True)
                else:
                    skip = self._new_label("or")
                    self._gen_cond_branch(cond.left, skip, jump_if=True)
                    self._gen_cond_branch(cond.right, target, jump_if=False)
                    self._emit_label(skip)
            return
        if isinstance(cond, N.Unary) and cond.op == "!":
            self._gen_cond_branch(cond.operand, target, not jump_if)
            return
        if isinstance(cond, N.Binary) and cond.op in ("==", "!=", "<", ">", "<=", ">="):
            self._gen_comparison_branch(cond, target, jump_if)
            return
        if isinstance(cond, N.IntLit):
            truthy = bool(cond.value)
            if truthy == jump_if:
                self._emit(f"j {target}")
            return
        reg = self._gen_expr_scalar(cond)
        op = "bnez" if jump_if else "beqz"
        self._emit(f"{op} {_reg_name(reg)}, {target}")
        self.int_pool.free(reg)

    def _gen_comparison_branch(self, cond: N.Binary, target: str, jump_if: bool) -> None:
        left, right, op = cond.left, cond.right, cond.op
        if left.type.is_float:  # checker equalized both sides
            self._gen_float_comparison_branch(cond, target, jump_if)
            return
        # Equality against a register compares directly with beq/bne.
        if op in ("==", "!="):
            want_eq = (op == "==") == jump_if
            branch = "beq" if want_eq else "bne"
            left_reg = self._gen_expr(left)
            if isinstance(right, N.IntLit) and right.value == 0:
                self._emit(f"{branch} {_reg_name(left_reg)}, $zero, {target}")
            else:
                right_reg = self._gen_expr(right)
                self._emit(
                    f"{branch} {_reg_name(left_reg)}, {_reg_name(right_reg)}, {target}"
                )
                self.int_pool.free(right_reg)
            self.int_pool.free(left_reg)
            return
        # Orderings against zero use the MIPS compare-with-zero branches.
        if isinstance(right, N.IntLit) and right.value == 0:
            zero_branch = {"<": "bltz", ">": "bgtz", "<=": "blez", ">=": "bgez"}[op]
            if not jump_if:
                zero_branch = {
                    "bltz": "bgez", "bgtz": "blez", "blez": "bgtz", "bgez": "bltz",
                }[zero_branch]
            left_reg = self._gen_expr(left)
            self._emit(f"{zero_branch} {_reg_name(left_reg)}, {target}")
            self.int_pool.free(left_reg)
            return
        # General orderings: a set-compare feeding bnez/beqz.
        compare_reg = self._gen_int_comparison_value(left, right, op)
        branch = "bnez" if jump_if else "beqz"
        self._emit(f"{branch} {_reg_name(compare_reg)}, {target}")
        self.int_pool.free(compare_reg)

    def _gen_float_comparison_branch(self, cond: N.Binary, target: str, jump_if: bool) -> None:
        value = self._gen_float_comparison_value(cond.left, cond.right, cond.op)
        branch = "bnez" if jump_if else "beqz"
        self._emit(f"{branch} {_reg_name(value)}, {target}")
        self.int_pool.free(value)

    # -- expression values --------------------------------------------------------

    def _gen_expr_for_effect(self, expr: N.Expr) -> None:
        """Evaluate for side effects, avoiding dead result registers."""
        if isinstance(expr, N.Assign):
            self._gen_assign(expr, need_value=False)
            return
        if isinstance(expr, N.IncDec):
            self._gen_incdec(expr, need_value=False)
            return
        if isinstance(expr, N.Call):
            reg = self._gen_call(expr, need_value=False)
            if reg is not None:
                pool = self.float_pool if expr.type.is_float else self.int_pool
                pool.free(reg)
            return
        if isinstance(expr, (N.IntLit, N.FloatLit, N.VarRef, N.StringLit)):
            return  # pure, no effect
        reg = self._gen_expr(expr)
        pool = self.float_pool if expr.type.decay().is_float else self.int_pool
        pool.free(reg)

    def _gen_expr_scalar(self, expr: N.Expr) -> int:
        """Evaluate to an *int* register (converting float truthiness)."""
        if expr.type.decay().is_float:
            float_reg = self._gen_expr(expr)
            zero = self.float_pool.alloc(expr.line)
            self._emit(f"fli {_reg_name(zero)}, 0.0")
            result = self.int_pool.alloc(expr.line)
            self._emit(f"feq {_reg_name(result)}, {_reg_name(float_reg)}, {_reg_name(zero)}")
            self._emit(f"xori {_reg_name(result)}, {_reg_name(result)}, 1")
            self.float_pool.free(float_reg)
            self.float_pool.free(zero)
            return result
        return self._gen_expr(expr)

    def _gen_expr(self, expr: N.Expr) -> int:
        """Evaluate *expr*, returning the register holding its value.

        Integer/pointer values come back in an integer register, float
        values in a float register.  The caller frees the register (pool
        frees ignore borrowed variable registers).
        """
        if isinstance(expr, N.IntLit):
            reg = self.int_pool.alloc(expr.line)
            self._emit(f"li {_reg_name(reg)}, {self._clamp(expr.value)}")
            return reg
        if isinstance(expr, N.FloatLit):
            reg = self.float_pool.alloc(expr.line)
            self._emit(f"fli {_reg_name(reg)}, {expr.value!r}")
            return reg
        if isinstance(expr, N.StringLit):
            reg = self.int_pool.alloc(expr.line)
            self._emit(f"la {_reg_name(reg)}, {self._string_labels[expr.value]}")
            return reg
        if isinstance(expr, N.VarRef):
            return self._gen_var_ref(expr)
        if isinstance(expr, N.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, N.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, N.Logical):
            return self._gen_logical_value(expr)
        if isinstance(expr, N.Conditional):
            return self._gen_conditional_value(expr)
        if isinstance(expr, N.Assign):
            return self._gen_assign(expr, need_value=True)
        if isinstance(expr, N.IncDec):
            return self._gen_incdec(expr, need_value=True)
        if isinstance(expr, N.Call):
            reg = self._gen_call(expr, need_value=True)
            assert reg is not None
            return reg
        if isinstance(expr, N.Index):
            return self._gen_load(expr)
        if isinstance(expr, N.Deref):
            return self._gen_load(expr)
        if isinstance(expr, N.AddrOf):
            return self._gen_addr(expr.operand)
        if isinstance(expr, N.Cast):
            return self._gen_cast(expr)
        raise CompileError(
            f"unhandled expression {type(expr).__name__}", expr.line
        )  # pragma: no cover

    @staticmethod
    def _clamp(value: int) -> int:
        if value < _WORD_MIN or value > _WORD_MAX:
            value &= 0xFFFFFFFF
            if value > _WORD_MAX:
                value -= 1 << 32
        return value

    def _gen_var_ref(self, expr: N.VarRef) -> int:
        symbol = self.checked.var_symbols[id(expr)]
        if isinstance(symbol, GlobalVar):
            if symbol.type.is_array:
                reg = self.int_pool.alloc(expr.line)
                self._emit(f"la {_reg_name(reg)}, {symbol.label}")
                return reg
            if symbol.type.is_float:
                reg = self.float_pool.alloc(expr.line)
                self._emit(f"flw {_reg_name(reg)}, {symbol.label}($zero)")
                return reg
            reg = self.int_pool.alloc(expr.line)
            self._emit(f"lw {_reg_name(reg)}, {symbol.label}($zero)")
            return reg
        storage = self.storage[symbol]
        if storage.kind == "reg":
            return storage.reg  # borrowed: pool.free() ignores it
        if storage.kind == "array":
            reg = self.int_pool.alloc(expr.line)
            self._emit(f"addi {_reg_name(reg)}, $sp, {storage.offset}")
            return reg
        # stack slot
        if symbol.type.is_float:
            reg = self.float_pool.alloc(expr.line)
            self._emit(f"flw {_reg_name(reg)}, {storage.offset}($sp)")
            return reg
        reg = self.int_pool.alloc(expr.line)
        self._emit(f"lw {_reg_name(reg)}, {storage.offset}($sp)")
        return reg

    # -- addresses ------------------------------------------------------------

    def _gen_addr(self, expr: N.Expr) -> int:
        """Evaluate the address of an lvalue into an int register."""
        if isinstance(expr, N.VarRef):
            symbol = self.checked.var_symbols[id(expr)]
            if isinstance(symbol, GlobalVar):
                reg = self.int_pool.alloc(expr.line)
                self._emit(f"la {_reg_name(reg)}, {symbol.label}")
                return reg
            storage = self.storage[symbol]
            if storage.kind == "array":
                reg = self.int_pool.alloc(expr.line)
                self._emit(f"addi {_reg_name(reg)}, $sp, {storage.offset}")
                return reg
            raise CompileError(
                f"variable {expr.name!r} has no address", expr.line
            )  # pragma: no cover - checker rejects
        if isinstance(expr, N.Deref):
            return self._gen_expr(expr.pointer)
        if isinstance(expr, N.Index):
            base = self._gen_expr(expr.base)
            if isinstance(expr.index, N.IntLit):
                if expr.index.value == 0:
                    return base
                result = self.int_pool.alloc(expr.line)
                self._emit(
                    f"addi {_reg_name(result)}, {_reg_name(base)}, {expr.index.value}"
                )
                self.int_pool.free(base)
                return result
            index = self._gen_expr(expr.index)
            result = self.int_pool.alloc(expr.line)
            self._emit(
                f"add {_reg_name(result)}, {_reg_name(base)}, {_reg_name(index)}"
            )
            self.int_pool.free(base)
            self.int_pool.free(index)
            return result
        raise CompileError("expression has no address", expr.line)  # pragma: no cover

    def _global_array_label(self, expr: N.Expr) -> str | None:
        """The data label of a direct global-array reference, if any."""
        if isinstance(expr, N.VarRef):
            symbol = self.checked.var_symbols[id(expr)]
            if isinstance(symbol, GlobalVar) and symbol.type.is_array:
                return symbol.label
        return None

    def _mem_operand(self, expr: N.Expr) -> tuple[int, str]:
        """Base register + displacement text for an Index/Deref lvalue.

        Global arrays use label displacements (``lw $t0, g_a($s0)``), the
        single-instruction form MIPS compilers get from ``$gp``-relative
        addressing.
        """
        if isinstance(expr, N.Index):
            label = self._global_array_label(expr.base)
            if label is not None:
                if isinstance(expr.index, N.IntLit):
                    disp = label if expr.index.value == 0 else f"{label}+{expr.index.value}"
                    return R.ZERO, disp
                index = self._gen_expr(expr.index)
                return index, label
            if isinstance(expr.index, N.IntLit):
                base = self._gen_expr(expr.base)
                return base, str(expr.index.value)
        return self._gen_addr(expr), "0"

    def _gen_load(self, expr: N.Index | N.Deref, dest: int | None = None) -> int:
        base, disp = self._mem_operand(expr)
        if expr.type.is_float:
            reg = dest if dest is not None else self.float_pool.alloc(expr.line)
            self._emit(f"flw {_reg_name(reg)}, {disp}({_reg_name(base)})")
        else:
            reg = dest if dest is not None else self.int_pool.alloc(expr.line)
            self._emit(f"lw {_reg_name(reg)}, {disp}({_reg_name(base)})")
        self.int_pool.free(base)
        return reg

    # -- assignment -----------------------------------------------------------

    def _store_to_var(self, symbol: LocalVar | GlobalVar, value: N.Expr) -> int | None:
        """Assign *value* to a scalar variable; returns the value register if
        the caller wants it (always for register vars, else None means the
        caller should re-load)."""
        is_float = symbol.type.is_float
        pool = self.float_pool if is_float else self.int_pool
        if isinstance(symbol, LocalVar):
            storage = self.storage[symbol]
            if storage.kind == "reg":
                self._gen_into_reg(value, storage.reg, is_float)
                return storage.reg
            value_reg = self._gen_expr(value)
            op = "fsw" if is_float else "sw"
            self._emit(f"{op} {_reg_name(value_reg)}, {storage.offset}($sp)")
            return value_reg
        value_reg = self._gen_expr(value)
        op = "fsw" if is_float else "sw"
        self._emit(f"{op} {_reg_name(value_reg)}, {symbol.label}($zero)")
        return value_reg

    def _gen_into_reg(self, value: N.Expr, dest: int, is_float: bool) -> None:
        """Evaluate *value* directly into the variable register *dest*,
        using single-instruction forms where the ISA has them."""
        if not is_float:
            if isinstance(value, N.IntLit):
                self._emit(f"li {_reg_name(dest)}, {self._clamp(value.value)}")
                return
            if (
                isinstance(value, N.Binary)
                and value.op in ("+", "-")
                and isinstance(value.left, N.VarRef)
                and self._var_reg(value.left) == dest
                and isinstance(value.right, N.IntLit)
            ):
                # i = i + c  ->  addi i, i, c   (the induction idiom)
                delta = value.right.value if value.op == "+" else -value.right.value
                self._emit(f"addi {_reg_name(dest)}, {_reg_name(dest)}, {delta}")
                return
            if isinstance(value, N.VarRef):
                src = self._gen_expr(value)
                if src != dest:
                    self._emit(f"mov {_reg_name(dest)}, {_reg_name(src)}")
                self.int_pool.free(src)
                return
        elif isinstance(value, N.FloatLit):
            self._emit(f"fli {_reg_name(dest)}, {value.value!r}")
            return
        # Forward the destination into generators that can target it
        # directly, avoiding `op $tmp, ...; mov $var, $tmp` chains (which
        # would double the dependence height of reduction loops).
        if isinstance(value, N.Binary):
            self._gen_binary(value, dest=dest)
            return
        if isinstance(value, N.Unary):
            self._gen_unary(value, dest=dest)
            return
        if isinstance(value, (N.Index, N.Deref)):
            self._gen_load(value, dest=dest)
            return
        if isinstance(value, N.Cast):
            self._gen_cast(value, dest=dest)
            return
        pool = self.float_pool if is_float else self.int_pool
        move = "fmov" if is_float else "mov"
        reg = self._gen_expr(value)
        if reg != dest:
            self._emit(f"{move} {_reg_name(dest)}, {_reg_name(reg)}")
        pool.free(reg)

    def _var_reg(self, expr: N.VarRef) -> int | None:
        symbol = self.checked.var_symbols.get(id(expr))
        if isinstance(symbol, LocalVar):
            storage = self.storage.get(symbol)
            if storage is not None and storage.kind == "reg":
                return storage.reg
        return None

    def _gen_assign(self, expr: N.Assign, need_value: bool) -> int | None:
        target = expr.target
        value = expr.value
        if expr.op is not None:
            # Desugar compound assignment; re-reading the target is safe in
            # MiniC (no volatile), and duplicate address computation matches
            # what simple compilers emit.
            value = N.Binary(expr.op, self._clone_lvalue(target), value, line=expr.line)
            if expr.type.is_float:
                value.type = FLOAT
            elif expr.type.is_pointer:
                value.type = expr.type
            else:
                value.type = INT
        is_float = expr.type.is_float
        pool = self.float_pool if is_float else self.int_pool
        if isinstance(target, N.VarRef):
            symbol = self.checked.var_symbols[id(target)]
            result = self._store_to_var(symbol, value)
            if need_value:
                if result is not None:
                    return result
                return self._gen_expr(target)  # re-load (slot/global)
            if result is not None:
                pool.free(result)
            return None
        # Memory lvalue (Index or Deref).
        value_reg = self._gen_expr(value)
        base, disp = self._mem_operand(target)
        op = "fsw" if is_float else "sw"
        self._emit(f"{op} {_reg_name(value_reg)}, {disp}({_reg_name(base)})")
        self.int_pool.free(base)
        if need_value:
            return value_reg
        pool.free(value_reg)
        return None

    def _gen_incdec(self, expr: N.IncDec, need_value: bool) -> int | None:
        target = expr.target
        if isinstance(target, N.VarRef):
            dest = self._var_reg(target)
            if dest is not None:
                old: int | None = None
                if need_value and not expr.is_prefix:
                    old = self.int_pool.alloc(expr.line)
                    self._emit(f"mov {_reg_name(old)}, {_reg_name(dest)}")
                self._emit(f"addi {_reg_name(dest)}, {_reg_name(dest)}, {expr.delta}")
                if not need_value:
                    return None
                return dest if expr.is_prefix else old
        # Slot, global, or memory lvalue: load-modify-store.
        if isinstance(target, N.VarRef):
            symbol = self.checked.var_symbols[id(target)]
            value = self._gen_expr(target)
            if not expr.is_prefix and need_value:
                old = self.int_pool.alloc(expr.line)
                self._emit(f"mov {_reg_name(old)}, {_reg_name(value)}")
            else:
                old = None
            self._emit(f"addi {_reg_name(value)}, {_reg_name(value)}, {expr.delta}")
            if isinstance(symbol, GlobalVar):
                self._emit(f"sw {_reg_name(value)}, {symbol.label}($zero)")
            else:
                storage = self.storage[symbol]
                self._emit(f"sw {_reg_name(value)}, {storage.offset}($sp)")
            if not need_value:
                self.int_pool.free(value)
                return None
            if expr.is_prefix:
                return value
            self.int_pool.free(value)
            return old
        base, disp = self._mem_operand(target)
        value = self.int_pool.alloc(expr.line)
        self._emit(f"lw {_reg_name(value)}, {disp}({_reg_name(base)})")
        if not expr.is_prefix and need_value:
            old = self.int_pool.alloc(expr.line)
            self._emit(f"mov {_reg_name(old)}, {_reg_name(value)}")
        else:
            old = None
        self._emit(f"addi {_reg_name(value)}, {_reg_name(value)}, {expr.delta}")
        self._emit(f"sw {_reg_name(value)}, {disp}({_reg_name(base)})")
        self.int_pool.free(base)
        if not need_value:
            self.int_pool.free(value)
            return None
        if expr.is_prefix:
            return value
        self.int_pool.free(value)
        return old

    # -- operators ------------------------------------------------------------------

    def _gen_unary(self, expr: N.Unary, dest: int | None = None) -> int:
        if expr.op == "-":
            if expr.type.is_float:
                operand = self._gen_expr(expr.operand)
                result = dest if dest is not None else self.float_pool.alloc(expr.line)
                self._emit(f"fneg {_reg_name(result)}, {_reg_name(operand)}")
                self.float_pool.free(operand)
                return result
            operand = self._gen_expr(expr.operand)
            result = dest if dest is not None else self.int_pool.alloc(expr.line)
            self._emit(f"sub {_reg_name(result)}, $zero, {_reg_name(operand)}")
            self.int_pool.free(operand)
            return result
        if expr.op == "~":
            operand = self._gen_expr(expr.operand)
            result = dest if dest is not None else self.int_pool.alloc(expr.line)
            self._emit(f"nor {_reg_name(result)}, {_reg_name(operand)}, $zero")
            self.int_pool.free(operand)
            return result
        # '!'
        operand = self._gen_expr_scalar(expr.operand)
        result = dest if dest is not None else self.int_pool.alloc(expr.line)
        self._emit(f"seqi {_reg_name(result)}, {_reg_name(operand)}, 0")
        self.int_pool.free(operand)
        return result

    _INT_OPS = {
        "+": ("add", "addi"),
        "-": ("sub", None),
        "*": ("mul", None),
        "/": ("div", None),
        "%": ("rem", None),
        "&": ("and", "andi"),
        "|": ("or", "ori"),
        "^": ("xor", "xori"),
        "<<": ("sll", "slli"),
        ">>": ("sra", "srai"),
    }
    _CMP_OPS = {
        "<": ("slt", "slti", False),
        "<=": ("sle", "slei", False),
        ">": ("sgt", "sgti", False),
        ">=": ("sge", "sgei", False),
        "==": ("seq", "seqi", False),
        "!=": ("sne", "snei", False),
    }
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def _gen_binary(self, expr: N.Binary, dest: int | None = None) -> int:
        op = expr.op
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if expr.left.type.decay().is_float:
                return self._gen_float_comparison_value(expr.left, expr.right, op, dest)
            return self._gen_int_comparison_value(expr.left, expr.right, op, dest)
        if expr.type.is_float:
            left = self._gen_expr(expr.left)
            right = self._gen_expr(expr.right)
            result = dest if dest is not None else self.float_pool.alloc(expr.line)
            mnemonic = self._FLOAT_OPS[op]
            self._emit(
                f"{mnemonic} {_reg_name(result)}, {_reg_name(left)}, {_reg_name(right)}"
            )
            self.float_pool.free(left)
            self.float_pool.free(right)
            return result
        # Integer / pointer arithmetic.
        mnemonic, imm_mnemonic = self._INT_OPS[op]
        right = expr.right
        if isinstance(right, N.IntLit):
            value = right.value
            if op == "-" and _WORD_MIN <= -value <= _WORD_MAX:
                left_reg = self._gen_expr(expr.left)
                result = dest if dest is not None else self.int_pool.alloc(expr.line)
                self._emit(f"addi {_reg_name(result)}, {_reg_name(left_reg)}, {-value}")
                self.int_pool.free(left_reg)
                return result
            if op == "*" and value > 0 and value & (value - 1) == 0:
                shift = value.bit_length() - 1
                left_reg = self._gen_expr(expr.left)
                result = dest if dest is not None else self.int_pool.alloc(expr.line)
                self._emit(f"slli {_reg_name(result)}, {_reg_name(left_reg)}, {shift}")
                self.int_pool.free(left_reg)
                return result
            if imm_mnemonic is not None:
                left_reg = self._gen_expr(expr.left)
                result = dest if dest is not None else self.int_pool.alloc(expr.line)
                self._emit(
                    f"{imm_mnemonic} {_reg_name(result)}, {_reg_name(left_reg)}, {value}"
                )
                self.int_pool.free(left_reg)
                return result
        left_reg = self._gen_expr(expr.left)
        right_reg = self._gen_expr(expr.right)
        result = dest if dest is not None else self.int_pool.alloc(expr.line)
        self._emit(
            f"{mnemonic} {_reg_name(result)}, {_reg_name(left_reg)}, {_reg_name(right_reg)}"
        )
        self.int_pool.free(left_reg)
        self.int_pool.free(right_reg)
        return result

    def _gen_int_comparison_value(
        self, left: N.Expr, right: N.Expr, op: str, dest: int | None = None
    ) -> int:
        mnemonic, imm_mnemonic, _ = self._CMP_OPS[op]
        left_reg = self._gen_expr(left)
        if isinstance(right, N.IntLit):
            result = dest if dest is not None else self.int_pool.alloc(left.line)
            self._emit(
                f"{imm_mnemonic} {_reg_name(result)}, {_reg_name(left_reg)}, {right.value}"
            )
            self.int_pool.free(left_reg)
            return result
        right_reg = self._gen_expr(right)
        result = dest if dest is not None else self.int_pool.alloc(left.line)
        self._emit(
            f"{mnemonic} {_reg_name(result)}, {_reg_name(left_reg)}, {_reg_name(right_reg)}"
        )
        self.int_pool.free(left_reg)
        self.int_pool.free(right_reg)
        return result

    def _gen_float_comparison_value(
        self, left: N.Expr, right: N.Expr, op: str, dest: int | None = None
    ) -> int:
        # Map all six orderings onto feq/flt/fle (+ negation).
        table = {
            "==": ("feq", False, False),
            "!=": ("feq", False, True),
            "<": ("flt", False, False),
            "<=": ("fle", False, False),
            ">": ("flt", True, False),
            ">=": ("fle", True, False),
        }
        mnemonic, swap, negate = table[op]
        left_reg = self._gen_expr(left)
        right_reg = self._gen_expr(right)
        if swap:
            left_reg, right_reg = right_reg, left_reg
        result = dest if dest is not None else self.int_pool.alloc(left.line)
        self._emit(
            f"{mnemonic} {_reg_name(result)}, {_reg_name(left_reg)}, {_reg_name(right_reg)}"
        )
        if negate:
            self._emit(f"xori {_reg_name(result)}, {_reg_name(result)}, 1")
        self.float_pool.free(left_reg)
        self.float_pool.free(right_reg)
        return result

    def _gen_logical_value(self, expr: N.Logical) -> int:
        result = self.int_pool.alloc(expr.line)
        false_label = self._new_label("false")
        end_label = self._new_label("endbool")
        self._gen_cond_branch(expr, false_label, jump_if=False)
        self._emit(f"li {_reg_name(result)}, 1")
        self._emit(f"j {end_label}")
        self._emit_label(false_label)
        self._emit(f"li {_reg_name(result)}, 0")
        self._emit_label(end_label)
        return result

    def _gen_conditional_value(self, expr: N.Conditional) -> int:
        is_float = expr.type.is_float
        pool = self.float_pool if is_float else self.int_pool
        result = pool.alloc(expr.line)
        else_label = self._new_label("celse")
        end_label = self._new_label("cend")
        self._gen_cond_branch(expr.cond, else_label, jump_if=False)
        then_reg = self._gen_expr(expr.then)
        move = "fmov" if is_float else "mov"
        self._emit(f"{move} {_reg_name(result)}, {_reg_name(then_reg)}")
        pool.free(then_reg)
        self._emit(f"j {end_label}")
        self._emit_label(else_label)
        else_reg = self._gen_expr(expr.otherwise)
        self._emit(f"{move} {_reg_name(result)}, {_reg_name(else_reg)}")
        pool.free(else_reg)
        self._emit_label(end_label)
        return result

    def _gen_cast(self, expr: N.Cast, dest: int | None = None) -> int:
        source = expr.operand.type.decay()
        target = expr.target_type
        if target.is_float and not source.is_float:
            operand = self._gen_expr(expr.operand)
            result = dest if dest is not None else self.float_pool.alloc(expr.line)
            self._emit(f"cvtif {_reg_name(result)}, {_reg_name(operand)}")
            self.int_pool.free(operand)
            return result
        if not target.is_float and source.is_float:
            operand = self._gen_expr(expr.operand)
            result = dest if dest is not None else self.int_pool.alloc(expr.line)
            self._emit(f"cvtfi {_reg_name(result)}, {_reg_name(operand)}")
            self.float_pool.free(operand)
            return result
        value = self._gen_expr(expr.operand)  # pointer casts are free
        if dest is not None and value != dest:
            self._emit(f"mov {_reg_name(dest)}, {_reg_name(value)}")
            self.int_pool.free(value)
            return dest
        return value

    # -- calls -------------------------------------------------------------------

    def _gen_call(self, expr: N.Call, need_value: bool) -> int | None:
        sig = self.checked.functions.get(expr.name) or BUILTINS[expr.name]
        if sig.is_builtin:
            return self._gen_builtin(expr, sig.name)
        # Evaluate arguments into temporaries first.
        arg_regs: list[tuple[int, bool]] = []
        for arg in expr.args:
            is_float = arg.type.decay().is_float
            arg_regs.append((self._gen_expr(arg), is_float))
        # Spill every other live caller-saved temp around the call.
        arg_set = {reg for reg, _ in arg_regs}
        saved: list[tuple[int, int, bool]] = []
        for reg in self.int_pool.live:
            if reg not in arg_set:
                slot = self.frame.alloc()
                self._emit(f"sw {_reg_name(reg)}, {slot}($sp)")
                saved.append((reg, slot, False))
        for reg in self.float_pool.live:
            if reg not in arg_set:
                slot = self.frame.alloc()
                self._emit(f"fsw {_reg_name(reg)}, {slot}($sp)")
                saved.append((reg, slot, True))
        # Move arguments into the argument registers.
        int_idx = 0
        float_idx = 0
        for reg, is_float in arg_regs:
            if is_float:
                target = R.FP_ARG_REGS[float_idx]
                float_idx += 1
                self._emit(f"fmov {_reg_name(target)}, {_reg_name(reg)}")
                self.float_pool.free(reg)
            else:
                target = R.INT_ARG_REGS[int_idx]
                int_idx += 1
                self._emit(f"mov {_reg_name(target)}, {_reg_name(reg)}")
                self.int_pool.free(reg)
        self._emit(f"jal {expr.name}")
        for reg, slot, is_float in saved:
            op = "flw" if is_float else "lw"
            self._emit(f"{op} {_reg_name(reg)}, {slot}($sp)")
        if not need_value or sig.return_type.is_void:
            return None
        if sig.return_type.is_float:
            result = self.float_pool.alloc(expr.line)
            self._emit(f"fmov {_reg_name(result)}, $f0")
            return result
        result = self.int_pool.alloc(expr.line)
        self._emit(f"mov {_reg_name(result)}, $v0")
        return result

    def _gen_builtin(self, expr: N.Call, name: str) -> None:
        (arg,) = expr.args
        reg = self._gen_expr(arg)
        if name == "print_int":
            self._emit(f"print {_reg_name(reg)}")
            self.int_pool.free(reg)
        elif name == "print_float":
            self._emit(f"fprint {_reg_name(reg)}")
            self.float_pool.free(reg)
        else:  # put_char
            self._emit(f"putc {_reg_name(reg)}")
            self.int_pool.free(reg)
        return None


    def _clone_lvalue(self, expr: N.Expr) -> N.Expr:
        """Shallow-clone an lvalue for compound-assignment desugaring,
        registering cloned VarRef nodes in the symbol map."""
        if isinstance(expr, N.VarRef):
            clone: N.Expr = N.VarRef(expr.name, line=expr.line)
            clone.type = expr.type
            self.checked.var_symbols[id(clone)] = self.checked.var_symbols[id(expr)]
            return clone
        if isinstance(expr, N.Index):
            clone = N.Index(expr.base, expr.index, line=expr.line)
            clone.type = expr.type
            return clone
        if isinstance(expr, N.Deref):
            clone = N.Deref(expr.pointer, line=expr.line)
            clone.type = expr.type
            return clone
        raise CompileError(
            "bad compound assignment target", expr.line
        )  # pragma: no cover


# ---------------------------------------------------------------------------
# helpers


def _remove_jumps_to_next(lines: list[str]) -> list[str]:
    """Peephole: drop an unconditional ``j L`` whose target label starts the
    very next instruction (only labels in between)."""
    out: list[str] = []
    for i, line in enumerate(lines):
        text = line.strip()
        if text.startswith("j ") and " " not in text[2:].strip():
            target = text[2:].strip()
            j = i + 1
            redundant = False
            while j < len(lines):
                next_text = lines[j].strip()
                if next_text.endswith(":"):
                    if next_text[:-1] == target:
                        redundant = True
                        break
                    j += 1
                else:
                    break
            if redundant:
                continue
        out.append(line)
    return out


def _has_calls(stmt: N.Stmt, checked: CheckedUnit) -> bool:
    """Does the function body contain any non-builtin call?"""
    found = False

    def walk_expr(expr: N.Expr | None) -> None:
        nonlocal found
        if expr is None or found:
            return
        if isinstance(expr, N.Call) and expr.name not in BUILTINS:
            found = True
            return
        for attr in vars(expr).values():
            if isinstance(attr, N.Expr):
                walk_expr(attr)
            elif isinstance(attr, list):
                for item in attr:
                    if isinstance(item, N.Expr):
                        walk_expr(item)

    def walk_stmt(node: N.Stmt | None) -> None:
        if node is None or found:
            return
        for attr in vars(node).values():
            if isinstance(attr, N.Expr):
                walk_expr(attr)
            elif isinstance(attr, N.Stmt):
                walk_stmt(attr)
            elif isinstance(attr, list):
                for item in attr:
                    if isinstance(item, N.Stmt):
                        walk_stmt(item)
                    elif isinstance(item, N.Expr):
                        walk_expr(item)

    walk_stmt(stmt)
    return found


def generate(checked: CheckedUnit, if_convert: bool = False) -> str:
    """Generate assembly text for a checked translation unit.

    ``if_convert=True`` enables guarded-move if-conversion (paper §6).
    """
    return CodeGen(checked, if_convert=if_convert).generate()
