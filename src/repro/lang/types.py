"""MiniC's type system.

Three scalar types (``int``, ``float``, ``void``) plus pointers and arrays.
``char`` is an alias for ``int`` (memory is word-addressed: one character
per word).  All pointer arithmetic is in word units, so every element has
size 1.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for MiniC types (singletons for scalars)."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def is_int(self) -> bool:
        return isinstance(self, _IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, _FloatType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, _VoidType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_arithmetic(self) -> bool:
        return self.is_int or self.is_float

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or self.is_pointer

    def decay(self) -> "Type":
        """Array-to-pointer decay; other types unchanged."""
        if isinstance(self, ArrayType):
            return PointerType(self.element)
        return self


class _IntType(Type):
    def __str__(self) -> str:
        return "int"


class _FloatType(Type):
    def __str__(self) -> str:
        return "float"


class _VoidType(Type):
    def __str__(self) -> str:
        return "void"


INT = _IntType()
FLOAT = _FloatType()
VOID = _VoidType()


@dataclass(frozen=True)
class PointerType(Type):
    base: Type

    def __str__(self) -> str:
        return f"{self.base}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    size: int

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


def common_arithmetic_type(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions: float wins."""
    if a.is_float or b.is_float:
        return FLOAT
    return INT


def assignable(target: Type, value: Type) -> bool:
    """May a *value* of the given type be assigned to *target*?"""
    if target.is_arithmetic and value.is_arithmetic:
        return True  # implicit int<->float conversion
    if target.is_pointer and value.is_pointer:
        return target == value or PointerType(VOID) in (target, value)
    if target.is_pointer and value.is_int:
        return True  # allow `p = 0` and address literals
    return False
