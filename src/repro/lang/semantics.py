"""Semantic analysis for MiniC: symbol resolution, type checking, implicit
conversions, and constant folding.

The checker rewrites the AST (inserting :class:`~repro.lang.nodes.Cast`
nodes and folding constant subtrees), annotates every expression with its
type, and produces a :class:`CheckedUnit` carrying the symbol tables the
code generator needs.  Variable references are resolved to symbol objects in
``CheckedUnit.var_symbols``, keyed by node identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import CompileError
from repro.lang import nodes as N
from repro.lang.types import (
    ArrayType,
    FLOAT,
    INT,
    PointerType,
    Type,
    VOID,
    assignable,
    common_arithmetic_type,
)

# ---------------------------------------------------------------------------
# symbols


@dataclass(frozen=True)
class GlobalVar:
    name: str
    type: Type

    @property
    def label(self) -> str:
        return f"g_{self.name}"


@dataclass(frozen=True, eq=False)
class LocalVar:
    """One local variable or parameter.  Identity (not name) is the key:
    shadowing declarations produce distinct LocalVar objects."""

    name: str
    type: Type
    is_param: bool = False


@dataclass(frozen=True)
class FunctionSig:
    name: str
    return_type: Type
    param_types: tuple[Type, ...]
    is_builtin: bool = False


BUILTINS: dict[str, FunctionSig] = {
    "print_int": FunctionSig("print_int", VOID, (INT,), is_builtin=True),
    "print_float": FunctionSig("print_float", VOID, (FLOAT,), is_builtin=True),
    "put_char": FunctionSig("put_char", VOID, (INT,), is_builtin=True),
}


@dataclass
class CheckedUnit:
    """A type-checked translation unit plus its symbol tables."""

    unit: N.TranslationUnit
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    functions: dict[str, FunctionSig] = field(default_factory=dict)
    var_symbols: dict[int, GlobalVar | LocalVar] = field(default_factory=dict)
    func_locals: dict[str, list[LocalVar]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# checker


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, LocalVar] = {}

    def declare(self, var: LocalVar, line: int) -> None:
        if var.name in self.names:
            raise CompileError(f"redeclaration of {var.name!r}", line)
        self.names[var.name] = var

    def resolve(self, name: str) -> LocalVar | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Checker:
    def __init__(self, unit: N.TranslationUnit):
        self.unit = unit
        self.result = CheckedUnit(unit)
        self.scope: _Scope | None = None
        self.current_function: N.FuncDef | None = None
        self.current_locals: list[LocalVar] = []
        self.loop_depth = 0  # guards `continue`
        self.break_depth = 0  # guards `break` (loops and switches)

    # -- driver -----------------------------------------------------------

    def check(self) -> CheckedUnit:
        # Two-phase: register every global and function name first, so
        # initializers and bodies may reference later declarations
        # (`int *p = &g; int g;`, mutual recursion without prototypes).
        for decl in self.unit.globals:
            self._declare_global(decl)
        for func in self.unit.functions:
            self._declare_function(func)
        for decl in self.unit.globals:
            decl.init = self._check_global_init(decl)
        for func in self.unit.functions:
            self._check_function(func)
        return self.result

    # -- declarations ----------------------------------------------------

    def _declare_global(self, decl: N.GlobalDecl) -> None:
        if decl.name in self.result.globals or decl.name in self.result.functions:
            raise CompileError(f"redefinition of {decl.name!r}", decl.line)
        if decl.var_type.is_void:
            raise CompileError("global cannot be void", decl.line)
        self.result.globals[decl.name] = GlobalVar(decl.name, decl.var_type)

    def _check_global_init(self, decl: N.GlobalDecl):
        init = decl.init
        if init is None:
            return None
        if isinstance(init, list):
            if not decl.var_type.is_array:
                raise CompileError(
                    f"brace initializer on non-array {decl.name!r}", decl.line
                )
            array_type: ArrayType = decl.var_type  # type: ignore[assignment]
            if len(init) > array_type.size:
                raise CompileError(
                    f"too many initializers for {decl.name!r}", decl.line
                )
            return [
                self._const_value(item, array_type.element, decl) for item in init
            ]
        if decl.var_type.is_array:
            raise CompileError(f"array {decl.name!r} needs a brace initializer", decl.line)
        if decl.var_type.is_pointer and isinstance(init, N.StringLit):
            init.type = PointerType(INT)
            return init
        if decl.var_type.is_pointer:
            address = self._address_constant(init)
            if address is not None:
                return address
        return self._const_value(init, decl.var_type, decl)

    def _address_constant(self, expr: N.Expr) -> N.Expr | None:
        """Recognize `&global` / `array` / `&array[K]` initializers and
        annotate them for the code generator (link-time constants in C)."""
        inner = expr
        offset = 0
        if isinstance(inner, N.AddrOf):
            operand = inner.operand
            if isinstance(operand, N.Index) and isinstance(operand.base, N.VarRef):
                index = _fold(self.check_expr(operand.index))
                if not isinstance(index, N.IntLit):
                    return None
                offset = index.value
                inner = operand.base
            elif isinstance(operand, N.VarRef):
                inner = operand
            else:
                return None
        if not isinstance(inner, N.VarRef):
            return None
        symbol = self.result.globals.get(inner.name)
        if symbol is None:
            return None
        if isinstance(expr, N.VarRef) and not symbol.type.is_array:
            return None  # a plain scalar name is a value, not an address
        address = N.AddrOf(inner, line=expr.line)
        address.type = PointerType(
            symbol.type.element if symbol.type.is_array else symbol.type  # type: ignore[attr-defined]
        )
        self.result.var_symbols[id(inner)] = symbol
        self.result.var_symbols[id(address)] = symbol
        setattr(address, "const_offset", offset)
        return address

    def _const_value(self, expr: N.Expr, target: Type, decl: N.GlobalDecl) -> N.Expr:
        checked = self.check_expr(expr)
        checked = self._convert(checked, target, decl.line)
        checked = _fold(checked)
        if not isinstance(checked, (N.IntLit, N.FloatLit)):
            raise CompileError(
                f"initializer of {decl.name!r} is not a constant", decl.line
            )
        return checked

    def _declare_function(self, func: N.FuncDef) -> None:
        if func.name in self.result.functions or func.name in BUILTINS:
            raise CompileError(f"redefinition of function {func.name!r}", func.line)
        if func.name in self.result.globals:
            raise CompileError(
                f"{func.name!r} already declared as a variable", func.line
            )
        int_params = sum(1 for p in func.params if not p.type.is_float)
        float_params = sum(1 for p in func.params if p.type.is_float)
        if int_params > 4 or float_params > 4:
            raise CompileError(
                f"function {func.name!r}: at most 4 integer/pointer and 4 float "
                "parameters are supported",
                func.line,
            )
        self.result.functions[func.name] = FunctionSig(
            func.name,
            func.return_type,
            tuple(p.type for p in func.params),
        )

    # -- functions ----------------------------------------------------------

    def _check_function(self, func: N.FuncDef) -> None:
        self.current_function = func
        self.current_locals = []
        self.scope = _Scope()
        for param in func.params:
            var = LocalVar(param.name, param.type, is_param=True)
            self.scope.declare(var, param.line)
            self.current_locals.append(var)
        self._check_block(func.body, new_scope=False)
        self.result.func_locals[func.name] = self.current_locals
        self.scope = None
        self.current_function = None

    # -- statements ------------------------------------------------------------

    def _check_block(self, block: N.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scope = _Scope(self.scope)
        block.statements = [self._check_stmt(stmt) for stmt in block.statements]
        if new_scope:
            assert self.scope is not None
            self.scope = self.scope.parent

    def _check_stmt(self, stmt: N.Stmt) -> N.Stmt:
        if isinstance(stmt, N.Block):
            self._check_block(stmt)
            return stmt
        if isinstance(stmt, N.VarDecl):
            return self._check_var_decl(stmt)
        if isinstance(stmt, N.ExprStmt):
            stmt.expr = self.check_expr(stmt.expr)
            return stmt
        if isinstance(stmt, N.If):
            stmt.cond = self._check_condition(stmt.cond, stmt.line)
            stmt.then = self._check_stmt(stmt.then)
            if stmt.otherwise is not None:
                stmt.otherwise = self._check_stmt(stmt.otherwise)
            return stmt
        if isinstance(stmt, N.While):
            stmt.cond = self._check_condition(stmt.cond, stmt.line)
            self.loop_depth += 1
            self.break_depth += 1
            stmt.body = self._check_stmt(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
            return stmt
        if isinstance(stmt, N.DoWhile):
            self.loop_depth += 1
            self.break_depth += 1
            stmt.body = self._check_stmt(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
            stmt.cond = self._check_condition(stmt.cond, stmt.line)
            return stmt
        if isinstance(stmt, N.Switch):
            return self._check_switch(stmt)
        if isinstance(stmt, N.For):
            self.scope = _Scope(self.scope)
            if stmt.init is not None:
                stmt.init = self._check_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._check_condition(stmt.cond, stmt.line)
            if stmt.step is not None:
                stmt.step = self.check_expr(stmt.step)
            self.loop_depth += 1
            self.break_depth += 1
            stmt.body = self._check_stmt(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
            assert self.scope is not None
            self.scope = self.scope.parent
            return stmt
        if isinstance(stmt, N.Return):
            return self._check_return(stmt)
        if isinstance(stmt, N.Break):
            if self.break_depth == 0:
                raise CompileError("break outside a loop", stmt.line)
            return stmt
        if isinstance(stmt, N.Continue):
            if self.loop_depth == 0:
                raise CompileError("continue outside a loop", stmt.line)
            return stmt
        if isinstance(stmt, N.Empty):
            return stmt
        raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _check_var_decl(self, decl: N.VarDecl) -> N.Stmt:
        assert self.scope is not None
        var = LocalVar(decl.name, decl.var_type)
        self.scope.declare(var, decl.line)
        self.current_locals.append(var)
        self.result.var_symbols[id(decl)] = var
        if decl.init is not None:
            if decl.var_type.is_array:
                raise CompileError(
                    f"local array {decl.name!r} cannot have an initializer",
                    decl.line,
                )
            decl.init = self._convert(
                self.check_expr(decl.init), decl.var_type.decay(), decl.line
            )
        return decl

    def _check_switch(self, stmt: N.Switch) -> N.Stmt:
        cond = self.check_expr(stmt.cond)
        if not cond.type.decay().is_int:
            raise CompileError("switch condition must be int", stmt.line)
        stmt.cond = cond
        seen_values: set[int] = set()
        seen_default = False
        self.break_depth += 1
        self.scope = _Scope(self.scope)
        for case in stmt.cases:
            if case.value is None:
                if seen_default:
                    raise CompileError("duplicate default label", case.line)
                seen_default = True
            else:
                if case.value in seen_values:
                    raise CompileError(
                        f"duplicate case label {case.value}", case.line
                    )
                seen_values.add(case.value)
            case.body = [self._check_stmt(inner) for inner in case.body]
        assert self.scope is not None
        self.scope = self.scope.parent
        self.break_depth -= 1
        return stmt

    def _check_return(self, stmt: N.Return) -> N.Stmt:
        assert self.current_function is not None
        ret_type = self.current_function.return_type
        if stmt.value is None:
            if not ret_type.is_void:
                raise CompileError(
                    f"{self.current_function.name} must return a value", stmt.line
                )
            return stmt
        if ret_type.is_void:
            raise CompileError(
                f"void function {self.current_function.name} returns a value",
                stmt.line,
            )
        stmt.value = self._convert(self.check_expr(stmt.value), ret_type, stmt.line)
        return stmt

    def _check_condition(self, expr: N.Expr, line: int) -> N.Expr:
        checked = self.check_expr(expr)
        if not checked.type.decay().is_scalar:
            raise CompileError("condition must be a scalar value", line)
        return checked

    # -- expressions ---------------------------------------------------------

    def check_expr(self, expr: N.Expr) -> N.Expr:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise CompileError(f"unhandled expression {type(expr).__name__}", expr.line)
        return _fold(method(expr))

    def _expr_IntLit(self, expr: N.IntLit) -> N.Expr:
        expr.type = INT
        return expr

    def _expr_FloatLit(self, expr: N.FloatLit) -> N.Expr:
        expr.type = FLOAT
        return expr

    def _expr_StringLit(self, expr: N.StringLit) -> N.Expr:
        expr.type = PointerType(INT)
        return expr

    def _expr_VarRef(self, expr: N.VarRef) -> N.Expr:
        symbol = self.scope.resolve(expr.name) if self.scope else None
        if symbol is None:
            symbol = self.result.globals.get(expr.name)
        if symbol is None:
            raise CompileError(f"undefined variable {expr.name!r}", expr.line)
        self.result.var_symbols[id(expr)] = symbol
        expr.type = symbol.type
        return expr

    def _expr_Unary(self, expr: N.Unary) -> N.Expr:
        expr.operand = self.check_expr(expr.operand)
        operand_type = expr.operand.type.decay()
        if expr.op == "-":
            if not operand_type.is_arithmetic:
                raise CompileError("unary - needs an arithmetic operand", expr.line)
            expr.type = operand_type
        elif expr.op == "!":
            if not operand_type.is_scalar:
                raise CompileError("! needs a scalar operand", expr.line)
            expr.type = INT
        elif expr.op == "~":
            if not operand_type.is_int:
                raise CompileError("~ needs an int operand", expr.line)
            expr.type = INT
        else:  # pragma: no cover - parser produces only these
            raise CompileError(f"unknown unary operator {expr.op}", expr.line)
        return expr

    def _expr_Binary(self, expr: N.Binary) -> N.Expr:
        expr.left = self.check_expr(expr.left)
        expr.right = self.check_expr(expr.right)
        lt = expr.left.type.decay()
        rt = expr.right.type.decay()
        op = expr.op
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not (lt.is_int and rt.is_int):
                raise CompileError(f"operator {op} needs int operands", expr.line)
            expr.type = INT
            return expr
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if lt.is_pointer and rt.is_pointer:
                expr.type = INT
                return expr
            if lt.is_pointer and rt.is_int or lt.is_int and rt.is_pointer:
                expr.type = INT  # pointer vs. 0 comparisons
                return expr
            if not (lt.is_arithmetic and rt.is_arithmetic):
                raise CompileError(f"bad operands for {op}", expr.line)
            common = common_arithmetic_type(lt, rt)
            expr.left = self._convert(expr.left, common, expr.line)
            expr.right = self._convert(expr.right, common, expr.line)
            expr.type = INT
            return expr
        if op in ("+", "-"):
            if lt.is_pointer and rt.is_int:
                expr.type = lt
                return expr
            if op == "+" and lt.is_int and rt.is_pointer:
                expr.type = rt
                return expr
            if op == "-" and lt.is_pointer and rt.is_pointer:
                if lt != rt:
                    raise CompileError("pointer subtraction needs same type", expr.line)
                expr.type = INT
                return expr
        if op in ("+", "-", "*", "/"):
            if not (lt.is_arithmetic and rt.is_arithmetic):
                raise CompileError(f"bad operands for {op}", expr.line)
            common = common_arithmetic_type(lt, rt)
            expr.left = self._convert(expr.left, common, expr.line)
            expr.right = self._convert(expr.right, common, expr.line)
            expr.type = common
            return expr
        raise CompileError(f"unknown operator {op}", expr.line)  # pragma: no cover

    def _expr_Logical(self, expr: N.Logical) -> N.Expr:
        expr.left = self.check_expr(expr.left)
        expr.right = self.check_expr(expr.right)
        for side in (expr.left, expr.right):
            if not side.type.decay().is_scalar:
                raise CompileError(f"{expr.op} needs scalar operands", expr.line)
        expr.type = INT
        return expr

    def _expr_Conditional(self, expr: N.Conditional) -> N.Expr:
        expr.cond = self._check_condition(expr.cond, expr.line)
        expr.then = self.check_expr(expr.then)
        expr.otherwise = self.check_expr(expr.otherwise)
        tt = expr.then.type.decay()
        ot = expr.otherwise.type.decay()
        if tt.is_arithmetic and ot.is_arithmetic:
            common = common_arithmetic_type(tt, ot)
            expr.then = self._convert(expr.then, common, expr.line)
            expr.otherwise = self._convert(expr.otherwise, common, expr.line)
            expr.type = common
        elif tt == ot:
            expr.type = tt
        else:
            raise CompileError("?: branches have incompatible types", expr.line)
        return expr

    def _expr_Assign(self, expr: N.Assign) -> N.Expr:
        expr.target = self.check_expr(expr.target)
        target_type = expr.target.type
        if target_type.is_array:
            raise CompileError("cannot assign to an array", expr.line)
        self._require_lvalue(expr.target)
        expr.value = self.check_expr(expr.value)
        if expr.op is not None:
            # Compound assignment: type like `target op value`.
            value_type = expr.value.type.decay()
            if target_type.is_pointer:
                if expr.op not in ("+", "-") or not value_type.is_int:
                    raise CompileError(
                        f"bad compound assignment on pointer", expr.line
                    )
            elif not (target_type.is_arithmetic and value_type.is_arithmetic):
                raise CompileError("bad compound assignment operands", expr.line)
            if target_type.is_arithmetic:
                expr.value = self._convert(expr.value, target_type, expr.line)
        else:
            if not assignable(target_type, expr.value.type.decay()):
                raise CompileError(
                    f"cannot assign {expr.value.type} to {target_type}", expr.line
                )
            if target_type.is_arithmetic:
                expr.value = self._convert(expr.value, target_type, expr.line)
        expr.type = target_type
        return expr

    def _expr_IncDec(self, expr: N.IncDec) -> N.Expr:
        expr.target = self.check_expr(expr.target)
        self._require_lvalue(expr.target)
        target_type = expr.target.type
        if not (target_type.is_int or target_type.is_pointer):
            raise CompileError("++/-- needs an int or pointer operand", expr.line)
        expr.type = target_type
        return expr

    def _expr_Call(self, expr: N.Call) -> N.Expr:
        sig = self.result.functions.get(expr.name) or BUILTINS.get(expr.name)
        if sig is None:
            raise CompileError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(sig.param_types):
            raise CompileError(
                f"{expr.name} expects {len(sig.param_types)} arguments, "
                f"got {len(expr.args)}",
                expr.line,
            )
        checked_args: list[N.Expr] = []
        for arg, param_type in zip(expr.args, sig.param_types):
            checked = self.check_expr(arg)
            if not assignable(param_type.decay(), checked.type.decay()):
                raise CompileError(
                    f"argument type {checked.type} does not match {param_type}",
                    expr.line,
                )
            if param_type.is_arithmetic:
                checked = self._convert(checked, param_type, expr.line)
            checked_args.append(checked)
        expr.args = checked_args
        expr.type = sig.return_type
        return expr

    def _expr_Index(self, expr: N.Index) -> N.Expr:
        expr.base = self.check_expr(expr.base)
        expr.index = self.check_expr(expr.index)
        base_type = expr.base.type.decay()
        if not base_type.is_pointer:
            raise CompileError("indexing a non-pointer", expr.line)
        if not expr.index.type.decay().is_int:
            raise CompileError("array index must be int", expr.line)
        expr.type = base_type.base  # type: ignore[attr-defined]
        return expr

    def _expr_Deref(self, expr: N.Deref) -> N.Expr:
        expr.pointer = self.check_expr(expr.pointer)
        pointer_type = expr.pointer.type.decay()
        if not pointer_type.is_pointer:
            raise CompileError("dereferencing a non-pointer", expr.line)
        expr.type = pointer_type.base  # type: ignore[attr-defined]
        return expr

    def _expr_AddrOf(self, expr: N.AddrOf) -> N.Expr:
        expr.operand = self.check_expr(expr.operand)
        operand = expr.operand
        if isinstance(operand, (N.Index, N.Deref)):
            expr.type = PointerType(operand.type)
            return expr
        if isinstance(operand, N.VarRef):
            symbol = self.result.var_symbols[id(operand)]
            if isinstance(symbol, GlobalVar) or symbol.type.is_array:
                base = operand.type
                if base.is_array:
                    base = base.element  # type: ignore[attr-defined]
                    expr.type = PointerType(base)
                else:
                    expr.type = PointerType(base)
                return expr
            raise CompileError(
                f"cannot take the address of register variable {operand.name!r} "
                "(only globals, arrays, and dereferenced pointers have addresses)",
                expr.line,
            )
        raise CompileError("cannot take the address of this expression", expr.line)

    def _expr_Cast(self, expr: N.Cast) -> N.Expr:
        expr.operand = self.check_expr(expr.operand)
        source = expr.operand.type.decay()
        target = expr.target_type
        if target.is_void:
            raise CompileError("cannot cast to void", expr.line)
        if target.is_arithmetic and source.is_arithmetic:
            converted = self._convert(expr.operand, target, expr.line)
            converted.type = target
            return converted
        if target.is_pointer and (source.is_pointer or source.is_int):
            expr.type = target
            return expr
        if target.is_int and source.is_pointer:
            expr.type = INT
            return expr
        raise CompileError(f"cannot cast {source} to {target}", expr.line)

    # -- helpers --------------------------------------------------------------

    def _require_lvalue(self, expr: N.Expr) -> None:
        if isinstance(expr, (N.Index, N.Deref)):
            return
        if isinstance(expr, N.VarRef) and not expr.type.is_array:
            return
        raise CompileError("expression is not assignable", expr.line)

    def _convert(self, expr: N.Expr, target: Type, line: int) -> N.Expr:
        source = expr.type.decay()
        if source == target or not target.is_arithmetic:
            return expr
        if source.is_arithmetic and target.is_arithmetic and source != target:
            cast = N.Cast(target, expr, line=line)
            cast.type = target
            return _fold(cast)
        return expr


# ---------------------------------------------------------------------------
# constant folding


def _fold(expr: N.Expr) -> N.Expr:
    """Fold constant subtrees (safe arithmetic only; division by zero and
    anything non-literal is left for runtime)."""
    if isinstance(expr, N.Unary) and isinstance(expr.operand, (N.IntLit, N.FloatLit)):
        value = expr.operand.value
        if expr.op == "-":
            return _literal(-value, expr)
        if expr.op == "!" and isinstance(expr.operand, N.IntLit):
            return _literal(0 if value else 1, expr)
        if expr.op == "~" and isinstance(expr.operand, N.IntLit):
            return _literal(~value, expr)
    if (
        isinstance(expr, N.Binary)
        and isinstance(expr.left, (N.IntLit, N.FloatLit))
        and isinstance(expr.right, (N.IntLit, N.FloatLit))
    ):
        folded = _fold_binary(expr)
        if folded is not None:
            return folded
    if isinstance(expr, N.Cast) and isinstance(expr.operand, (N.IntLit, N.FloatLit)):
        if expr.target_type.is_int:
            return _literal(int(expr.operand.value), expr)
        if expr.target_type.is_float:
            return _literal(float(expr.operand.value), expr)
    return expr


def _fold_binary(expr: N.Binary) -> N.Expr | None:
    a = expr.left.value  # type: ignore[union-attr]
    b = expr.right.value  # type: ignore[union-attr]
    op = expr.op
    try:
        if op == "+":
            return _literal(a + b, expr)
        if op == "-":
            return _literal(a - b, expr)
        if op == "*":
            return _literal(a * b, expr)
        if op == "/":
            if b == 0:
                return None
            if isinstance(a, int) and isinstance(b, int):
                quotient = abs(a) // abs(b)
                return _literal(-quotient if (a < 0) != (b < 0) else quotient, expr)
            return _literal(a / b, expr)
        if op == "%" and isinstance(a, int) and isinstance(b, int):
            if b == 0:
                return None
            remainder = abs(a) % abs(b)
            return _literal(-remainder if a < 0 else remainder, expr)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            table = {
                "==": a == b, "!=": a != b, "<": a < b,
                ">": a > b, "<=": a <= b, ">=": a >= b,
            }
            return _literal(1 if table[op] else 0, expr)
        if isinstance(a, int) and isinstance(b, int):
            if op == "&":
                return _literal(a & b, expr)
            if op == "|":
                return _literal(a | b, expr)
            if op == "^":
                return _literal(a ^ b, expr)
            if op == "<<":
                return _literal(a << (b & 31), expr)
            if op == ">>":
                return _literal(a >> (b & 31), expr)
    except (OverflowError, ValueError):  # pragma: no cover - defensive
        return None
    return None


def _literal(value, template: N.Expr) -> N.Expr:
    if isinstance(value, float):
        lit: N.Expr = N.FloatLit(value, line=template.line)
        lit.type = FLOAT
    else:
        lit = N.IntLit(int(value), line=template.line)
        lit.type = INT
    return lit


def check(unit: N.TranslationUnit) -> CheckedUnit:
    """Type-check *unit* and return it with symbol tables attached."""
    return Checker(unit).check()
