"""Compiler error type with source positions."""

from __future__ import annotations


class CompileError(Exception):
    """Raised for any MiniC lexing, parsing, type, or codegen problem."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        location = ""
        if line is not None:
            location = f"line {line}"
            if col is not None:
                location += f", col {col}"
            location += ": "
        super().__init__(f"{location}{message}")
