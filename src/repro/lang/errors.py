"""Compiler error type with source positions."""

from __future__ import annotations


class CompileError(Exception):
    """Raised for any MiniC lexing, parsing, type, or codegen problem.

    ``message`` is the bare description; ``line``/``col`` (1-based, when
    known) position it in the source.  ``str(error)`` renders both, so
    diagnostics tooling should build from the parts, not the string.
    """

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.message = message
        self.line = line
        self.col = col
        location = ""
        if line is not None:
            location = f"line {line}"
            if col is not None:
                location += f", col {col}"
            location += ": "
        super().__init__(f"{location}{message}")
