"""MiniC lint passes (``MC1xx`` diagnostics) over the checked AST.

The headline pass is definite-assignment checking (``MC101``), built on the
same iterative dataflow machinery the object-code analyses use: we lower
each function body to a synthetic statement-level
:class:`~repro.analysis.cfg.FunctionCFG` (one block per flow point, edges
for structured control flow) and run :func:`repro.analysis.dataflow.
solve_forward` with facts meaning "this local may still be uninitialized".
A declaration without an initializer *generates* the fact; a definite
assignment *kills* it; assignments guarded by short-circuit evaluation
(``&&``/``||`` right operands, ``?:`` arms) kill nothing.  Any read whose
incoming fact set contains the variable is reported.

The cheaper companion passes walk the AST directly: unused locals
(``MC102``), unused parameters (``MC103``), statements unreachable after a
``return``/``break``/``continue`` (``MC104``), and ``if`` conditions the
checker folded to a constant (``MC105``).

Variables whose address is taken or whose type is an array are excluded
from the definite-assignment pass — they live in memory, and stores
through pointers are beyond a flow-insensitive alias-free analysis.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.analysis.cfg import BasicBlock, FunctionCFG
from repro.analysis.dataflow import solve_forward
from repro.diagnostics import Diagnostic, Severity
from repro.isa import FunctionSymbol
from repro.lang import nodes as N
from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.semantics import CheckedUnit, LocalVar, check

# One flow node's ordered event list.  Events:
#   ("use", var, line)  -- var read here
#   ("def", var)        -- var definitely assigned here
#   ("gen", var)        -- var becomes maybe-uninitialized here (its decl)
_Event = tuple


@dataclass
class _LoopCtx:
    break_nodes: list[int] = field(default_factory=list)
    continue_target: int | None = None


class _FlowGraph:
    """A statement-level flow graph shaped like a FunctionCFG.

    ``solve_forward`` only consults ``blocks``, ``block.id``,
    ``block.preds`` and ``entry``, so instruction ranges are left empty.
    """

    def __init__(self) -> None:
        self.events: list[list[_Event]] = []
        self.preds: list[list[int]] = []

    def new_node(self) -> int:
        self.events.append([])
        self.preds.append([])
        return len(self.events) - 1

    def edge(self, src: int, dst: int) -> None:
        if src not in self.preds[dst]:
            self.preds[dst].append(src)

    def as_cfg(self, name: str) -> FunctionCFG:
        blocks = [
            BasicBlock(id=i, start=0, end=0, preds=list(preds))
            for i, preds in enumerate(self.preds)
        ]
        return FunctionCFG(function=FunctionSymbol(name, 0, 0), blocks=blocks)


class _FunctionLinter:
    def __init__(self, checked: CheckedUnit, func: N.FuncDef, source_name: str):
        self.checked = checked
        self.func = func
        self.source_name = source_name
        self.diagnostics: list[Diagnostic] = []
        self.graph = _FlowGraph()
        self.loops: list[_LoopCtx] = []
        # Stack of break-target collectors: one list per enclosing loop or
        # switch; `break` appends its node to the innermost.
        self._break_stack: list[list[int]] = []
        # How many enclosing contexts make execution conditional within the
        # current flow node (&&/|| right operands, ?: arms): defs there are
        # "maybe" defs and must not kill the uninitialized fact.
        self.guard_depth = 0
        self.referenced: set[LocalVar] = set()
        self.address_taken: set[LocalVar] = set()
        self._collect_address_taken(func.body)
        self.tracked: set[LocalVar] = {
            var
            for var in checked.func_locals.get(func.name, [])
            if not var.is_param
            and not var.type.is_array
            and var not in self.address_taken
        }

    # -- symbol helpers ---------------------------------------------------

    def _local_of(self, node: N.Expr) -> LocalVar | None:
        symbol = self.checked.var_symbols.get(id(node))
        return symbol if isinstance(symbol, LocalVar) else None

    def _collect_address_taken(self, node) -> None:
        if isinstance(node, N.AddrOf):
            var = self._local_of(node.operand) if node.operand is not None else None
            if var is None and node.operand is not None:
                # checker-synthesized AddrOf registers itself in var_symbols
                symbol = self.checked.var_symbols.get(id(node))
                var = symbol if isinstance(symbol, LocalVar) else None
            if var is not None:
                self.address_taken.add(var)
        if dataclasses.is_dataclass(node):
            for f in dataclasses.fields(node):
                self._collect_address_taken(getattr(node, f.name))
        elif isinstance(node, list):
            for item in node:
                self._collect_address_taken(item)

    # -- expression events ------------------------------------------------

    def _emit(self, node: int, event: _Event) -> None:
        self.graph.events[node].append(event)

    def _use(self, node: int, expr: N.VarRef) -> None:
        var = self._local_of(expr)
        if var is not None:
            self.referenced.add(var)
            if var in self.tracked:
                self._emit(node, ("use", var, expr.line))

    def _def(self, node: int, expr: N.Expr) -> None:
        var = self._local_of(expr)
        if var is not None:
            self.referenced.add(var)
            if var in self.tracked and self.guard_depth == 0:
                self._emit(node, ("def", var))

    def walk_expr(self, expr, node: int) -> None:
        if expr is None:
            return
        if isinstance(expr, N.VarRef):
            self._use(node, expr)
        elif isinstance(expr, N.Assign):
            if isinstance(expr.target, N.VarRef):
                if expr.op is not None:
                    self._use(node, expr.target)  # compound: reads old value
                self.walk_expr(expr.value, node)
                self._def(node, expr.target)
            else:
                self.walk_expr(expr.target, node)
                self.walk_expr(expr.value, node)
        elif isinstance(expr, N.IncDec):
            if isinstance(expr.target, N.VarRef):
                self._use(node, expr.target)
                self._def(node, expr.target)
            else:
                self.walk_expr(expr.target, node)
        elif isinstance(expr, N.Logical):
            self.walk_expr(expr.left, node)
            self.guard_depth += 1
            self.walk_expr(expr.right, node)
            self.guard_depth -= 1
        elif isinstance(expr, N.Conditional):
            self.walk_expr(expr.cond, node)
            self.guard_depth += 1
            self.walk_expr(expr.then, node)
            self.walk_expr(expr.otherwise, node)
            self.guard_depth -= 1
        elif dataclasses.is_dataclass(expr):
            for f in dataclasses.fields(expr):
                value = getattr(expr, f.name)
                if isinstance(value, N.Expr):
                    self.walk_expr(value, node)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, N.Expr):
                            self.walk_expr(item, node)

    # -- statement flow ---------------------------------------------------

    def _report(self, code: str, message: str, line: int) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=Severity.WARNING,
                message=message,
                source=self.source_name,
                line=line or None,
                function=self.func.name,
            )
        )

    def fold_statements(self, statements: list[N.Stmt], current: int | None) -> int | None:
        reported_unreachable = False
        for stmt in statements:
            if current is None:
                if not reported_unreachable and not isinstance(stmt, N.Empty):
                    self._report("MC104", "statement is unreachable", stmt.line)
                    reported_unreachable = True
                # keep analyzing from a disconnected node so later defs/uses
                # inside the dead region stay internally consistent
                current = self.graph.new_node()
            current = self.visit_stmt(stmt, current)
        return current

    @staticmethod
    def _const_cond(expr) -> int | None:
        if isinstance(expr, N.IntLit):
            return expr.value
        if isinstance(expr, N.FloatLit):
            return 1 if expr.value else 0
        return None

    def visit_stmt(self, stmt: N.Stmt, current: int) -> int | None:
        if isinstance(stmt, N.Block):
            return self.fold_statements(stmt.statements, current)
        if isinstance(stmt, N.Empty):
            return current
        if isinstance(stmt, N.ExprStmt):
            self.walk_expr(stmt.expr, current)
            return current
        if isinstance(stmt, N.VarDecl):
            var = self._local_of(stmt)
            if stmt.init is not None:
                self.walk_expr(stmt.init, current)
                if var is not None and var in self.tracked:
                    self._emit(current, ("def", var))
            elif var is not None and var in self.tracked:
                self._emit(current, ("gen", var))
            return current
        if isinstance(stmt, N.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, N.While):
            return self._visit_while(stmt, current)
        if isinstance(stmt, N.DoWhile):
            return self._visit_do_while(stmt, current)
        if isinstance(stmt, N.For):
            return self._visit_for(stmt, current)
        if isinstance(stmt, N.Switch):
            return self._visit_switch(stmt, current)
        if isinstance(stmt, N.Return):
            self.walk_expr(stmt.value, current)
            return None
        if isinstance(stmt, N.Break):
            self._break_stack[-1].append(current)
            return None
        if isinstance(stmt, N.Continue):
            target = self.loops[-1].continue_target
            if target is not None:
                self.graph.edge(current, target)
            return None
        return current  # unknown statement kinds flow through

    def _visit_if(self, stmt: N.If, current: int) -> int | None:
        const = self._const_cond(stmt.cond)
        if const is not None:
            self._report(
                "MC105",
                f"if-condition is always {'true' if const else 'false'}",
                stmt.cond.line or stmt.line,
            )
        self.walk_expr(stmt.cond, current)
        then_entry = self.graph.new_node()
        self.graph.edge(current, then_entry)
        then_end = self.visit_stmt(stmt.then, then_entry)
        live_ends = [end for end in (then_end,) if end is not None]
        if stmt.otherwise is not None:
            else_entry = self.graph.new_node()
            self.graph.edge(current, else_entry)
            else_end = self.visit_stmt(stmt.otherwise, else_entry)
            if else_end is not None:
                live_ends.append(else_end)
        else:
            live_ends.append(current)
        if not live_ends:
            return None
        join = self.graph.new_node()
        for end in live_ends:
            self.graph.edge(end, join)
        return join

    def _visit_loop_body(
        self, body: N.Stmt, entry: int, continue_target: int
    ) -> tuple[int | None, list[int]]:
        ctx = _LoopCtx(continue_target=continue_target)
        self.loops.append(ctx)
        self._break_stack.append(ctx.break_nodes)
        end = self.visit_stmt(body, entry)
        self._break_stack.pop()
        self.loops.pop()
        return end, ctx.break_nodes

    def _visit_while(self, stmt: N.While, current: int) -> int | None:
        header = self.graph.new_node()
        self.graph.edge(current, header)
        self.walk_expr(stmt.cond, header)
        body_entry = self.graph.new_node()
        self.graph.edge(header, body_entry)
        body_end, breaks = self._visit_loop_body(stmt.body, body_entry, header)
        if body_end is not None:
            self.graph.edge(body_end, header)
        after = self.graph.new_node()
        const = self._const_cond(stmt.cond)
        if const is None or const == 0:
            self.graph.edge(header, after)  # loop may not be entered
        for node in breaks:
            self.graph.edge(node, after)
        return after

    def _visit_do_while(self, stmt: N.DoWhile, current: int) -> int | None:
        body_entry = self.graph.new_node()
        self.graph.edge(current, body_entry)
        cond_node = self.graph.new_node()  # `continue` target
        body_end, breaks = self._visit_loop_body(stmt.body, body_entry, cond_node)
        if body_end is not None:
            self.graph.edge(body_end, cond_node)
        self.walk_expr(stmt.cond, cond_node)
        self.graph.edge(cond_node, body_entry)
        after = self.graph.new_node()
        const = self._const_cond(stmt.cond)
        if const is None or const == 0:
            self.graph.edge(cond_node, after)
        for node in breaks:
            self.graph.edge(node, after)
        return after

    def _visit_for(self, stmt: N.For, current: int) -> int | None:
        cursor: int | None = current
        if stmt.init is not None:
            cursor = self.visit_stmt(stmt.init, current)
            if cursor is None:  # defensive; init cannot terminate flow
                cursor = self.graph.new_node()
        header = self.graph.new_node()
        self.graph.edge(cursor, header)
        if stmt.cond is not None:
            self.walk_expr(stmt.cond, header)
        body_entry = self.graph.new_node()
        self.graph.edge(header, body_entry)
        step_node = self.graph.new_node()  # `continue` target
        body_end, breaks = self._visit_loop_body(stmt.body, body_entry, step_node)
        if body_end is not None:
            self.graph.edge(body_end, step_node)
        if stmt.step is not None:
            self.walk_expr(stmt.step, step_node)
        self.graph.edge(step_node, header)
        after = self.graph.new_node()
        const = self._const_cond(stmt.cond) if stmt.cond is not None else 1
        if const is None or const == 0:
            self.graph.edge(header, after)
        for node in breaks:
            self.graph.edge(node, after)
        return after

    def _visit_switch(self, stmt: N.Switch, current: int) -> int | None:
        self.walk_expr(stmt.cond, current)
        breaks: list[int] = []
        self._break_stack.append(breaks)
        prev_end: int | None = None
        has_default = False
        for case in stmt.cases:
            if case.value is None:
                has_default = True
            entry = self.graph.new_node()
            self.graph.edge(current, entry)
            if prev_end is not None:  # C fallthrough from the previous case
                self.graph.edge(prev_end, entry)
            prev_end = self.fold_statements(case.body, entry)
        self._break_stack.pop()
        after = self.graph.new_node()
        if prev_end is not None:
            self.graph.edge(prev_end, after)
        if not has_default:
            self.graph.edge(current, after)
        for node in breaks:
            self.graph.edge(node, after)
        return after

    # -- driver -----------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        entry = self.graph.new_node()
        self.fold_statements(self.func.body.statements, entry)
        self._solve_and_report_uninit()
        self._report_unused()
        return self.diagnostics

    def _solve_and_report_uninit(self) -> None:
        cfg = self.graph.as_cfg(self.func.name)
        gen: list[set] = []
        kill: list[set] = []
        for events in self.graph.events:
            g: set = set()
            k: set = set()
            for event in events:
                if event[0] == "def":
                    k.add(event[1])
                    g.discard(event[1])
                elif event[0] == "gen":
                    g.add(event[1])
                    k.discard(event[1])
            gen.append(g)
            kill.append(k)
        solved = solve_forward(cfg, gen, kill)
        reported: set[tuple[LocalVar, int]] = set()
        for node, events in enumerate(self.graph.events):
            fact = set(solved.block_in[node])
            for event in events:
                if event[0] == "use":
                    _, var, line = event
                    if var in fact and (var, line) not in reported:
                        reported.add((var, line))
                        self._report(
                            "MC101",
                            f"variable {var.name!r} may be used before it is "
                            "initialized",
                            line,
                        )
                elif event[0] == "def":
                    fact.discard(event[1])
                elif event[0] == "gen":
                    fact.add(event[1])

    def _report_unused(self) -> None:
        decl_lines: dict[LocalVar, int] = {}
        self._collect_decl_lines(self.func.body, decl_lines)
        locals_ = self.checked.func_locals.get(self.func.name, [])
        param_by_name = {p.name: p for p in self.func.params}
        for var in locals_:
            if var in self.referenced:
                continue
            if var.is_param:
                param = param_by_name.get(var.name)
                line = param.line if param is not None else self.func.line
                self._report(
                    "MC103", f"parameter {var.name!r} is never used", line
                )
            else:
                line = decl_lines.get(var, self.func.line)
                self._report(
                    "MC102",
                    f"local variable {var.name!r} is declared but never used",
                    line,
                )

    def _collect_decl_lines(self, node, out: dict[LocalVar, int]) -> None:
        if isinstance(node, N.VarDecl):
            var = self._local_of(node)
            if var is not None:
                out[var] = node.line
        if dataclasses.is_dataclass(node):
            for f in dataclasses.fields(node):
                self._collect_decl_lines(getattr(node, f.name), out)
        elif isinstance(node, list):
            for item in node:
                self._collect_decl_lines(item, out)


def lint_checked(checked: CheckedUnit, name: str = "<minic>") -> list[Diagnostic]:
    """Run the MC1xx passes over an already-checked unit."""
    diagnostics: list[Diagnostic] = []
    for func in checked.unit.functions:
        diagnostics.extend(_FunctionLinter(checked, func, name).run())
    diagnostics.sort(
        key=lambda d: (d.line if d.line is not None else 0, d.code, d.message)
    )
    return diagnostics


def lint_minic(source: str, name: str = "<minic>") -> list[Diagnostic]:
    """Lint MiniC *source* text.  Lex/parse/check failures come back as a
    single ``MC100`` error diagnostic rather than an exception."""
    try:
        checked = check(parse(tokenize(source)))
    except CompileError as exc:
        return [
            Diagnostic(
                code="MC100",
                severity=Severity.ERROR,
                message=exc.message,
                source=name,
                line=exc.line,
                col=exc.col,
            )
        ]
    return lint_checked(checked, name=name)
