"""Recursive-descent parser for MiniC.

Grammar (C subset)::

    unit        : (func_def | global_decl)*
    func_def    : type IDENT '(' params? ')' block
    global_decl : type declarator ('=' initializer)? (',' ...)* ';'
    declarator  : '*'* IDENT ('[' INT ']')?
    initializer : const_expr | '{' const_expr (',' const_expr)* '}'
    block       : '{' (decl | stmt)* '}'
    stmt        : expr? ';' | if | while | do-while | for | return
                | break ';' | continue ';' | block

Expression precedence, loosest first: assignment, ?:, ||, &&, |, ^, &,
equality, relational, shift, additive, multiplicative, unary, postfix.
"""

from __future__ import annotations

from repro.lang.errors import CompileError
from repro.lang import nodes as N
from repro.lang.tokens import Token, TokenType as T
from repro.lang.types import ArrayType, PointerType, FLOAT, INT, Type, VOID

_TYPE_KEYWORDS = (T.KW_INT, T.KW_FLOAT, T.KW_VOID, T.KW_CHAR)

_COMPOUND_OPS = {
    T.PLUS_ASSIGN: "+",
    T.MINUS_ASSIGN: "-",
    T.STAR_ASSIGN: "*",
    T.SLASH_ASSIGN: "/",
    T.PERCENT_ASSIGN: "%",
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, *types: T) -> bool:
        return self._peek().type in types

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not T.EOF:
            self.pos += 1
        return token

    def _expect(self, type_: T, what: str | None = None) -> Token:
        token = self._peek()
        if token.type is not type_:
            expected = what or type_.value
            raise CompileError(
                f"expected {expected}, got {token.text or token.type.value!r}",
                token.line,
                token.col,
            )
        return self._advance()

    def _match(self, *types: T) -> Token | None:
        if self._at(*types):
            return self._advance()
        return None

    # -- top level ------------------------------------------------------

    def parse_unit(self) -> N.TranslationUnit:
        unit = N.TranslationUnit()
        while not self._at(T.EOF):
            base = self._parse_base_type()
            # Peek past pointer stars to see if this is a function.
            save = self.pos
            while self._match(T.STAR):
                pass
            name_token = self._expect(T.IDENT, "a name")
            is_function = self._at(T.LPAREN)
            self.pos = save
            if is_function:
                unit.functions.append(self._parse_function(base))
            else:
                unit.globals.extend(self._parse_global_decls(base))
            del name_token
        return unit

    def _parse_base_type(self) -> Type:
        token = self._peek()
        if token.type is T.KW_INT or token.type is T.KW_CHAR:
            self._advance()
            return INT
        if token.type is T.KW_FLOAT:
            self._advance()
            return FLOAT
        if token.type is T.KW_VOID:
            self._advance()
            return VOID
        raise CompileError(
            f"expected a type, got {token.text!r}", token.line, token.col
        )

    def _parse_declarator(self, base: Type) -> tuple[str, Type, int]:
        """Parse ``'*'* IDENT ('[' INT ']')?`` and return (name, type, line)."""
        decl_type = base
        while self._match(T.STAR):
            decl_type = PointerType(decl_type)
        name = self._expect(T.IDENT, "a name")
        if self._match(T.LBRACKET):
            size_token = self._expect(T.INT_LIT, "array size")
            self._expect(T.RBRACKET)
            size = int(size_token.value)  # type: ignore[arg-type]
            if size <= 0:
                raise CompileError(
                    "array size must be positive", size_token.line, size_token.col
                )
            decl_type = ArrayType(decl_type, size)
        return name.text, decl_type, name.line

    def _parse_global_decls(self, base: Type) -> list[N.GlobalDecl]:
        decls: list[N.GlobalDecl] = []
        while True:
            name, decl_type, line = self._parse_declarator(base)
            init: N.Expr | list[N.Expr] | None = None
            if self._match(T.ASSIGN):
                if self._match(T.LBRACE):
                    items = [self.parse_expr()]
                    while self._match(T.COMMA):
                        items.append(self.parse_expr())
                    self._expect(T.RBRACE)
                    init = items
                else:
                    init = self.parse_expr()
            decls.append(N.GlobalDecl(name, decl_type, init, line=line))
            if not self._match(T.COMMA):
                break
        self._expect(T.SEMI)
        return decls

    def _parse_function(self, return_type: Type) -> N.FuncDef:
        name = self._expect(T.IDENT)
        self._expect(T.LPAREN)
        params: list[N.Param] = []
        if not self._at(T.RPAREN):
            if self._at(T.KW_VOID) and self._peek(1).type is T.RPAREN:
                self._advance()
            else:
                params.append(self._parse_param())
                while self._match(T.COMMA):
                    params.append(self._parse_param())
        self._expect(T.RPAREN)
        body = self._parse_block()
        return N.FuncDef(name.text, return_type, params, body, line=name.line)

    def _parse_param(self) -> N.Param:
        base = self._parse_base_type()
        param_type = base
        while self._match(T.STAR):
            param_type = PointerType(param_type)
        name = self._expect(T.IDENT, "parameter name")
        # `int a[]` parameter syntax decays to a pointer.
        if self._match(T.LBRACKET):
            self._expect(T.RBRACKET)
            param_type = PointerType(param_type)
        if param_type.is_void:
            raise CompileError("parameter cannot be void", name.line, name.col)
        return N.Param(name.text, param_type, line=name.line)

    # -- statements ------------------------------------------------------

    def _parse_block(self) -> N.Block:
        open_brace = self._expect(T.LBRACE)
        statements: list[N.Stmt] = []
        while not self._at(T.RBRACE):
            if self._at(T.EOF):
                raise CompileError(
                    "unterminated block", open_brace.line, open_brace.col
                )
            statements.extend(self._parse_block_item())
        self._expect(T.RBRACE)
        return N.Block(statements, line=open_brace.line)

    def _parse_block_item(self) -> list[N.Stmt]:
        if self._at(*_TYPE_KEYWORDS):
            return self._parse_local_decls()
        return [self._parse_stmt()]

    def _parse_local_decls(self) -> list[N.Stmt]:
        base = self._parse_base_type()
        decls: list[N.Stmt] = []
        while True:
            name, decl_type, line = self._parse_declarator(base)
            if decl_type.is_void:
                raise CompileError("variable cannot be void", line)
            init = self.parse_expr() if self._match(T.ASSIGN) else None
            decls.append(N.VarDecl(name, decl_type, init, line=line))
            if not self._match(T.COMMA):
                break
        self._expect(T.SEMI)
        return decls

    def _parse_stmt(self) -> N.Stmt:
        token = self._peek()
        if token.type is T.LBRACE:
            return self._parse_block()
        if token.type is T.SEMI:
            self._advance()
            return N.Empty(line=token.line)
        if token.type is T.KW_IF:
            return self._parse_if()
        if token.type is T.KW_WHILE:
            return self._parse_while()
        if token.type is T.KW_DO:
            return self._parse_do_while()
        if token.type is T.KW_FOR:
            return self._parse_for()
        if token.type is T.KW_SWITCH:
            return self._parse_switch()
        if token.type is T.KW_RETURN:
            self._advance()
            value = None if self._at(T.SEMI) else self.parse_expr()
            self._expect(T.SEMI)
            return N.Return(value, line=token.line)
        if token.type is T.KW_BREAK:
            self._advance()
            self._expect(T.SEMI)
            return N.Break(line=token.line)
        if token.type is T.KW_CONTINUE:
            self._advance()
            self._expect(T.SEMI)
            return N.Continue(line=token.line)
        expr = self.parse_expr()
        self._expect(T.SEMI)
        return N.ExprStmt(expr, line=token.line)

    def _parse_if(self) -> N.Stmt:
        token = self._advance()
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        then = self._parse_stmt()
        otherwise = self._parse_stmt() if self._match(T.KW_ELSE) else None
        return N.If(cond, then, otherwise, line=token.line)

    def _parse_while(self) -> N.Stmt:
        token = self._advance()
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        body = self._parse_stmt()
        return N.While(cond, body, line=token.line)

    def _parse_do_while(self) -> N.Stmt:
        token = self._advance()
        body = self._parse_stmt()
        self._expect(T.KW_WHILE)
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        self._expect(T.SEMI)
        return N.DoWhile(body, cond, line=token.line)

    def _parse_switch(self) -> N.Stmt:
        token = self._advance()
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        self._expect(T.LBRACE)
        cases: list[N.SwitchCase] = []
        while not self._at(T.RBRACE):
            label_token = self._peek()
            if label_token.type is T.KW_CASE:
                self._advance()
                sign = -1 if self._match(T.MINUS) else 1
                value_token = self._peek()
                if value_token.type not in (T.INT_LIT, T.CHAR_LIT):
                    raise CompileError(
                        "case label must be an integer constant",
                        value_token.line,
                        value_token.col,
                    )
                self._advance()
                self._expect(T.COLON)
                cases.append(
                    N.SwitchCase(sign * int(value_token.value), line=label_token.line)
                )
            elif label_token.type is T.KW_DEFAULT:
                self._advance()
                self._expect(T.COLON)
                cases.append(N.SwitchCase(None, line=label_token.line))
            elif not cases:
                raise CompileError(
                    "statement before the first case label",
                    label_token.line,
                    label_token.col,
                )
            else:
                cases[-1].body.extend(self._parse_block_item())
        self._expect(T.RBRACE)
        return N.Switch(cond, cases, line=token.line)

    def _parse_for(self) -> N.Stmt:
        token = self._advance()
        self._expect(T.LPAREN)
        init: N.Stmt | None = None
        if self._at(*_TYPE_KEYWORDS):
            (init,) = self._parse_local_decls()  # one declaration only
        elif not self._at(T.SEMI):
            init = N.ExprStmt(self.parse_expr(), line=token.line)
            self._expect(T.SEMI)
        else:
            self._advance()
        cond = None if self._at(T.SEMI) else self.parse_expr()
        self._expect(T.SEMI)
        step = None if self._at(T.RPAREN) else self.parse_expr()
        self._expect(T.RPAREN)
        body = self._parse_stmt()
        return N.For(init, cond, step, body, line=token.line)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> N.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> N.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.type is T.ASSIGN:
            self._advance()
            value = self._parse_assignment()
            return N.Assign(left, value, None, line=token.line)
        if token.type in _COMPOUND_OPS:
            self._advance()
            value = self._parse_assignment()
            return N.Assign(left, value, _COMPOUND_OPS[token.type], line=token.line)
        return left

    def _parse_conditional(self) -> N.Expr:
        cond = self._parse_logic_or()
        token = self._match(T.QUESTION)
        if not token:
            return cond
        then = self.parse_expr()
        self._expect(T.COLON)
        otherwise = self._parse_conditional()
        return N.Conditional(cond, then, otherwise, line=token.line)

    def _parse_logic_or(self) -> N.Expr:
        left = self._parse_logic_and()
        while True:
            token = self._match(T.OR_OR)
            if not token:
                return left
            right = self._parse_logic_and()
            left = N.Logical("||", left, right, line=token.line)

    def _parse_logic_and(self) -> N.Expr:
        left = self._parse_bit_or()
        while True:
            token = self._match(T.AND_AND)
            if not token:
                return left
            right = self._parse_bit_or()
            left = N.Logical("&&", left, right, line=token.line)

    def _binary_level(self, sub, table: dict[T, str]):
        left = sub()
        while True:
            token = self._peek()
            op = table.get(token.type)
            if op is None:
                return left
            self._advance()
            right = sub()
            left = N.Binary(op, left, right, line=token.line)

    def _parse_bit_or(self) -> N.Expr:
        return self._binary_level(self._parse_bit_xor, {T.PIPE: "|"})

    def _parse_bit_xor(self) -> N.Expr:
        return self._binary_level(self._parse_bit_and, {T.CARET: "^"})

    def _parse_bit_and(self) -> N.Expr:
        return self._binary_level(self._parse_equality, {T.AMP: "&"})

    def _parse_equality(self) -> N.Expr:
        return self._binary_level(
            self._parse_relational, {T.EQ: "==", T.NE: "!="}
        )

    def _parse_relational(self) -> N.Expr:
        return self._binary_level(
            self._parse_shift, {T.LT: "<", T.GT: ">", T.LE: "<=", T.GE: ">="}
        )

    def _parse_shift(self) -> N.Expr:
        return self._binary_level(self._parse_additive, {T.SHL: "<<", T.SHR: ">>"})

    def _parse_additive(self) -> N.Expr:
        return self._binary_level(
            self._parse_multiplicative, {T.PLUS: "+", T.MINUS: "-"}
        )

    def _parse_multiplicative(self) -> N.Expr:
        return self._binary_level(
            self._parse_unary, {T.STAR: "*", T.SLASH: "/", T.PERCENT: "%"}
        )

    def _parse_unary(self) -> N.Expr:
        token = self._peek()
        if token.type is T.MINUS:
            self._advance()
            return N.Unary("-", self._parse_unary(), line=token.line)
        if token.type is T.NOT:
            self._advance()
            return N.Unary("!", self._parse_unary(), line=token.line)
        if token.type is T.TILDE:
            self._advance()
            return N.Unary("~", self._parse_unary(), line=token.line)
        if token.type is T.STAR:
            self._advance()
            return N.Deref(self._parse_unary(), line=token.line)
        if token.type is T.AMP:
            self._advance()
            return N.AddrOf(self._parse_unary(), line=token.line)
        if token.type is T.PLUS_PLUS:
            self._advance()
            return N.IncDec(self._parse_unary(), 1, True, line=token.line)
        if token.type is T.MINUS_MINUS:
            self._advance()
            return N.IncDec(self._parse_unary(), -1, True, line=token.line)
        if token.type is T.LPAREN and self._peek(1).type in _TYPE_KEYWORDS:
            self._advance()
            cast_type = self._parse_base_type()
            while self._match(T.STAR):
                cast_type = PointerType(cast_type)
            self._expect(T.RPAREN)
            return N.Cast(cast_type, self._parse_unary(), line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> N.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.type is T.LBRACKET:
                self._advance()
                index = self.parse_expr()
                self._expect(T.RBRACKET)
                expr = N.Index(expr, index, line=token.line)
            elif token.type is T.LPAREN:
                if not isinstance(expr, N.VarRef):
                    raise CompileError(
                        "only named functions can be called", token.line, token.col
                    )
                self._advance()
                args: list[N.Expr] = []
                if not self._at(T.RPAREN):
                    args.append(self.parse_expr())
                    while self._match(T.COMMA):
                        args.append(self.parse_expr())
                self._expect(T.RPAREN)
                expr = N.Call(expr.name, args, line=token.line)
            elif token.type is T.PLUS_PLUS:
                self._advance()
                expr = N.IncDec(expr, 1, False, line=token.line)
            elif token.type is T.MINUS_MINUS:
                self._advance()
                expr = N.IncDec(expr, -1, False, line=token.line)
            else:
                return expr

    def _parse_primary(self) -> N.Expr:
        token = self._advance()
        if token.type is T.INT_LIT or token.type is T.CHAR_LIT:
            return N.IntLit(int(token.value), line=token.line)  # type: ignore[arg-type]
        if token.type is T.FLOAT_LIT:
            return N.FloatLit(float(token.value), line=token.line)  # type: ignore[arg-type]
        if token.type is T.STRING_LIT:
            return N.StringLit(str(token.value), line=token.line)
        if token.type is T.IDENT:
            return N.VarRef(token.text, line=token.line)
        if token.type is T.LPAREN:
            expr = self.parse_expr()
            self._expect(T.RPAREN)
            return expr
        raise CompileError(
            f"unexpected token {token.text or token.type.value!r}",
            token.line,
            token.col,
        )


def parse(source_tokens: list[Token]) -> N.TranslationUnit:
    """Parse a token stream into a translation unit."""
    return Parser(source_tokens).parse_unit()
