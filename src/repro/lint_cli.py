"""``repro-lint`` — run the diagnostics passes from the command line.

Usage::

    repro-lint prog.c other.s            # lint files (MiniC or assembly)
    repro-lint --bench all               # lint + verify every benchmark
    repro-lint --bench eqntott --trace   # also sanitize a dynamic trace
    repro-lint --examples examples       # lint sources embedded in examples
    repro-lint --fail-on error ...       # only errors affect the exit code
    repro-lint --format json ...         # machine-readable output

Files ending in ``.s``/``.asm`` are assembled and run through the
object-code verifier (``OBJ2xx``) and the whole-program static engine
(``STA40x`` notes); everything else is treated as MiniC and additionally
linted (``MC1xx``).  ``--trace`` executes each successfully compiled
program, replays the trace against the static analysis (``TR3xx``), and
runs the static-vs-dynamic differential gate (``STA41x``).

``--examples`` extracts module-level string constants from example
scripts: constants containing ``int main`` are linted as MiniC, constants
that look like assembly (``.text`` / ``.func`` directives) are assembled
and verified.  This keeps every program the documentation ships under the
same gate as the benchmark suite.

Exit status (documented contract, see ``docs/diagnostics.md``): 0 when no
diagnostic at or above the ``--fail-on`` severity (default: warning) was
reported, 1 when at least one was, 2 on usage or input errors (argparse).
``--format json`` emits one JSON object on stdout with the stable fields
``diagnostics`` (list of :meth:`~repro.diagnostics.Diagnostic.to_json`
objects, sorted), ``checked``, ``summary`` (counts per severity label),
and ``exit`` (the status the process then exits with).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

from repro.analysis import verify_program
from repro.asm import AsmError, assemble
from repro.diagnostics import Diagnostic, Severity, render_all, sort_diagnostics
from repro.lang import CompileError, compile_source, lint_minic


def _lint_assembly(text: str, name: str, trace: bool, max_steps: int) -> list[Diagnostic]:
    try:
        program = assemble(text, name=name)
    except AsmError as exc:
        return [
            Diagnostic(
                code="OBJ200",
                severity=Severity.ERROR,
                message=exc.message,
                source=name,
                line=exc.line,
            )
        ]
    diagnostics = verify_program(program, name=name)
    diagnostics += _static_passes(program, name, trace, max_steps)
    return diagnostics


def _lint_minic_source(
    text: str, name: str, trace: bool, max_steps: int
) -> list[Diagnostic]:
    diagnostics = lint_minic(text, name=name)
    if any(d.code == "MC100" for d in diagnostics):
        return diagnostics  # did not compile; nothing further to check
    try:
        program = compile_source(text, name=name)
    except (CompileError, AsmError) as exc:
        # The front end accepted the program but codegen/assembly failed.
        code = "OBJ200" if isinstance(exc, AsmError) else "MC100"
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=exc.message,
                source=name,
                line=exc.line,
            )
        )
        return diagnostics
    diagnostics += verify_program(program, name=name)
    diagnostics += _static_passes(program, name, trace, max_steps)
    return diagnostics


def _static_passes(
    program, name: str, trace: bool, max_steps: int
) -> list[Diagnostic]:
    """The whole-program static engine (``STA40x``), plus — with *trace* —
    the trace sanitizer (``TR3xx``) and the static-vs-dynamic differential
    gate (``STA41x``) over one execution of the program."""
    from repro.analysis.static import analyze_static
    from repro.analysis.static.lint import lint_static

    facts = analyze_static(program)
    diagnostics = lint_static(program, name=name, facts=facts)
    if not trace:
        return diagnostics

    from repro.analysis.static.differential import check_static_vs_dynamic
    from repro.core.analyzer import LimitAnalyzer
    from repro.core.models import MachineModel
    from repro.vm import VM, sanitize_trace

    run = VM(program).run(max_steps=max_steps)
    diagnostics += sanitize_trace(run.trace, analysis=facts.analysis, name=name)
    result = LimitAnalyzer(program, facts.analysis).analyze(
        run.trace, models=[MachineModel.ORACLE]
    )
    diagnostics += check_static_vs_dynamic(
        facts, run.trace, result=result, halted=run.halted, name=name
    )
    return diagnostics


def _looks_like_minic(text: str) -> bool:
    return "int main" in text and "{" in text


def _looks_like_assembly(text: str) -> bool:
    return any(
        directive in text for directive in (".text", ".func", ".data")
    )


def _example_sources(path: Path) -> list[tuple[str, str, str]]:
    """(label, kind, text) for each embedded program in a ``.py`` file."""
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError:
        return []
    found: list[tuple[str, str, str]] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Constant):
            continue
        if not isinstance(node.value.value, str):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not targets:
            continue
        text = node.value.value
        label = f"{path}:{targets[0]}"
        if _looks_like_minic(text):
            found.append((label, "minic", text))
        elif _looks_like_assembly(text):
            found.append((label, "asm", text))
    return found


def _bench_targets(names: list[str]) -> list[str]:
    from repro.bench import SUITE

    if names == ["all"]:
        return sorted(SUITE)
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        raise SystemExit(
            f"repro-lint: unknown benchmark(s): {', '.join(unknown)} "
            f"(choices: {', '.join(sorted(SUITE))})"
        )
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static verifier for MiniC sources, object code, and "
        "dynamic traces.",
    )
    parser.add_argument("paths", nargs="*", metavar="FILE",
                        help="MiniC or assembly files to check")
    parser.add_argument(
        "--bench",
        nargs="+",
        metavar="NAME",
        default=[],
        help="benchmark(s) to lint and verify, or 'all'",
    )
    parser.add_argument(
        "--examples",
        metavar="DIR",
        help="lint program sources embedded in the .py files of DIR",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also execute each program and sanitize its trace",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=50_000,
        help="trace budget per program with --trace (default 50000)",
    )
    parser.add_argument(
        "--fail-on",
        choices=["error", "warning", "never"],
        default="warning",
        help="minimum severity that makes the exit status 1 "
        "(default: warning)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)

    if not args.paths and not args.bench and not args.examples:
        parser.error("nothing to lint: pass FILEs, --bench, or --examples")

    diagnostics: list[Diagnostic] = []
    checked = 0

    for path in args.paths:
        try:
            text = Path(path).read_text()
        except OSError as exc:
            parser.error(f"cannot read {path}: {exc.strerror or exc}")
        checked += 1
        if path.endswith((".s", ".asm")):
            diagnostics += _lint_assembly(text, path, args.trace, args.max_steps)
        else:
            diagnostics += _lint_minic_source(
                text, path, args.trace, args.max_steps
            )

    if args.bench:
        from repro.bench import SUITE

        for name in _bench_targets(args.bench):
            spec = SUITE[name]
            checked += 1
            diagnostics += _lint_minic_source(
                spec.source(spec.default_scale),
                f"bench:{name}",
                args.trace,
                args.max_steps,
            )

    if args.examples:
        for path in sorted(Path(args.examples).glob("*.py")):
            for label, kind, text in _example_sources(path):
                checked += 1
                if kind == "asm":
                    diagnostics += _lint_assembly(
                        text, label, args.trace, args.max_steps
                    )
                else:
                    diagnostics += _lint_minic_source(
                        text, label, args.trace, args.max_steps
                    )

    diagnostics = sort_diagnostics(diagnostics)
    errors = sum(1 for d in diagnostics if d.severity >= Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity == Severity.WARNING)
    notes = sum(1 for d in diagnostics if d.severity == Severity.NOTE)

    threshold = {
        "error": Severity.ERROR,
        "warning": Severity.WARNING,
        "never": None,
    }[args.fail_on]
    exit_code = (
        1
        if threshold is not None
        and any(d.severity >= threshold for d in diagnostics)
        else 0
    )

    if args.format == "json":
        print(
            json.dumps(
                {
                    "diagnostics": [d.to_json() for d in diagnostics],
                    "checked": checked,
                    "summary": {
                        "error": errors,
                        "warning": warnings,
                        "note": notes,
                    },
                    "exit": exit_code,
                },
                indent=2,
            )
        )
    else:
        if diagnostics:
            print(render_all(diagnostics))
        print(
            f"repro-lint: {checked} program(s) checked, "
            f"{errors} error(s), {warnings} warning(s)"
        )
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
