"""Register-file definition and calling conventions for the repro ISA.

The ISA models a MIPS-R3000-like machine with 32 integer registers and 32
floating-point registers.  Both files share one flat register-id namespace so
that dependence analysis can treat every register uniformly: integer register
``$n`` has id ``n`` (0..31) and floating-point register ``$fn`` has id
``32 + n`` (32..63).

The software conventions follow the MIPS o32 ABI closely; the names matter to
the limit study because the paper's *perfect inlining* transformation removes
every instruction that writes the stack pointer (``$sp``).
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

FP_BASE = NUM_INT_REGS
"""Flat register id of ``$f0``."""

# Integer register aliases (MIPS o32 names).
ZERO = 0  # hardwired zero
AT = 1  # assembler temporary
V0, V1 = 2, 3  # function results
A0, A1, A2, A3 = 4, 5, 6, 7  # arguments
T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15  # caller-saved
S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23  # callee-saved
T8, T9 = 24, 25  # more caller-saved
K0, K1 = 26, 27  # reserved for the "kernel" (unused here)
GP = 28  # global pointer
SP = 29  # stack pointer
FP = 30  # frame pointer
RA = 31  # return address

_INT_ALIASES = {
    "zero": ZERO, "at": AT, "v0": V0, "v1": V1,
    "a0": A0, "a1": A1, "a2": A2, "a3": A3,
    "t0": T0, "t1": T1, "t2": T2, "t3": T3,
    "t4": T4, "t5": T5, "t6": T6, "t7": T7,
    "s0": S0, "s1": S1, "s2": S2, "s3": S3,
    "s4": S4, "s5": S5, "s6": S6, "s7": S7,
    "t8": T8, "t9": T9, "k0": K0, "k1": K1,
    "gp": GP, "sp": SP, "fp": FP, "ra": RA,
}

# Floating-point register ids in the flat namespace.
F0 = FP_BASE + 0  # FP function result
F12 = FP_BASE + 12  # first FP argument

#: FP argument registers ($f12..$f15), o32 style.
FP_ARG_REGS = tuple(FP_BASE + n for n in range(12, 16))
#: Integer argument registers ($a0..$a3).
INT_ARG_REGS = (A0, A1, A2, A3)

#: Caller-saved (temporary) integer registers available to expression
#: evaluation in the MiniC code generator.
INT_TEMP_REGS = (T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)
#: Callee-saved integer registers used for register-allocated local scalars.
INT_SAVED_REGS = (S0, S1, S2, S3, S4, S5, S6, S7)

#: Caller-saved FP temporaries ($f4..$f11).
FP_TEMP_REGS = tuple(FP_BASE + n for n in range(4, 12))
#: Callee-saved FP registers ($f20..$f31), used for FP local scalars.
FP_SAVED_REGS = tuple(FP_BASE + n for n in range(20, 32))


def is_fp_reg(reg: int) -> bool:
    """Return True if flat register id *reg* names a floating-point register."""
    return FP_BASE <= reg < NUM_REGS


def is_int_reg(reg: int) -> bool:
    """Return True if flat register id *reg* names an integer register."""
    return 0 <= reg < FP_BASE


def reg_name(reg: int) -> str:
    """Render a flat register id using its conventional assembly name."""
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if is_fp_reg(reg):
        return f"$f{reg - FP_BASE}"
    for name, number in _INT_ALIASES.items():
        if number == reg:
            return f"${name}"
    return f"${reg}"


def parse_reg(text: str) -> int:
    """Parse an assembly register name into a flat register id.

    Accepts ``$sp``-style aliases, ``$7``-style numbers and ``$f5``-style
    floating-point names (with or without the leading ``$``).

    >>> parse_reg("$sp")
    29
    >>> parse_reg("f1")
    33
    """
    name = text.strip().lower().lstrip("$")
    if not name:
        raise ValueError(f"empty register name: {text!r}")
    if name in _INT_ALIASES:
        return _INT_ALIASES[name]
    if name.startswith("f") and name[1:].isdigit():
        n = int(name[1:])
        if not 0 <= n < NUM_FP_REGS:
            raise ValueError(f"FP register out of range: {text!r}")
        return FP_BASE + n
    if name.startswith("r") and name[1:].isdigit():
        name = name[1:]
    if name.isdigit():
        n = int(name)
        if not 0 <= n < NUM_INT_REGS:
            raise ValueError(f"integer register out of range: {text!r}")
        return n
    raise ValueError(f"unknown register name: {text!r}")
