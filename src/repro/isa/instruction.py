"""The :class:`Instruction` container used across the whole toolkit.

An instruction is a fully-resolved machine operation: register operands are
flat register ids (see :mod:`repro.isa.registers`), and control-transfer
targets are instruction indices into the owning :class:`repro.isa.Program`.

Dependence analysis never interprets mnemonics: it relies only on the
``reads``/``writes`` register sets and the classification properties
(:attr:`is_cond_branch`, :attr:`is_call`, ...), which in turn derive from the
opcode metadata in :mod:`repro.isa.opcodes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import registers
from repro.isa.opcodes import Opcode, OpKind, info


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Fields that are not used by the opcode are ``None``.  FP operands share
    the integer operand slots (``rd``/``rs``/``rt``) using flat register ids
    in ``32..63``.

    For memory operations the base register lives in ``rs`` and the
    displacement in ``imm``; the value register of a store lives in ``rt``.
    """

    opcode: Opcode
    rd: int | None = None
    rs: int | None = None
    rt: int | None = None
    imm: int | float | None = None
    target: int | None = None  # resolved code index for label operands
    label: str | None = None  # symbolic form of `target`, for rendering
    reads: tuple[int, ...] = field(default=(), compare=False)
    writes: tuple[int, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        spec = info(self.opcode)
        reads: list[int] = []
        writes: list[int] = []
        for code in spec.operands:
            if code in ("rd", "fd", "rd!", "fd!"):
                self._require(self.rd is not None, "missing destination register")
                writes.append(self.rd)  # type: ignore[arg-type]
                if code.endswith("!"):
                    reads.append(self.rd)  # type: ignore[arg-type]
            elif code in ("rs", "fs"):
                self._require(self.rs is not None, "missing first source register")
                reads.append(self.rs)  # type: ignore[arg-type]
            elif code in ("rt", "ft"):
                self._require(self.rt is not None, "missing second source register")
                reads.append(self.rt)  # type: ignore[arg-type]
            elif code == "mem":
                self._require(self.rs is not None, "missing base register")
                self._require(self.imm is not None, "missing displacement")
                reads.append(self.rs)  # type: ignore[arg-type]
            elif code in ("imm", "fimm"):
                self._require(self.imm is not None, "missing immediate")
            elif code == "label":
                self._require(
                    self.target is not None or self.label is not None,
                    "missing control-transfer target",
                )
        # Calls implicitly write the return-address register.
        if spec.kind in (OpKind.CALL, OpKind.JALR):
            writes.append(registers.RA)
        object.__setattr__(self, "reads", tuple(reads))
        object.__setattr__(self, "writes", tuple(writes))

    def _require(self, cond: bool, message: str) -> None:
        if not cond:
            raise ValueError(f"{self.opcode.value}: {message}")

    # -- classification -------------------------------------------------

    @property
    def kind(self) -> OpKind:
        return info(self.opcode).kind

    @property
    def is_cond_branch(self) -> bool:
        """Conditional branch: the only opcode class with a data-dependent
        two-way control transfer."""
        return self.kind is OpKind.BRANCH

    @property
    def is_direct_jump(self) -> bool:
        return self.kind is OpKind.JUMP

    @property
    def is_call(self) -> bool:
        """Direct or indirect call (removed from traces by perfect inlining)."""
        return self.kind in (OpKind.CALL, OpKind.JALR)

    @property
    def is_return(self) -> bool:
        """``jr $ra`` — a procedure return (removed by perfect inlining)."""
        return self.kind is OpKind.JR and self.rs == registers.RA

    @property
    def is_computed_jump(self) -> bool:
        """``jr`` through a non-$ra register: an unpredicted computed jump."""
        return self.kind is OpKind.JR and self.rs != registers.RA

    @property
    def is_control(self) -> bool:
        return info(self.opcode).is_control

    @property
    def is_load(self) -> bool:
        return self.kind is OpKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is OpKind.STORE

    @property
    def is_mem(self) -> bool:
        return info(self.opcode).is_mem

    @property
    def writes_sp(self) -> bool:
        """True for stack-pointer manipulation (removed by perfect inlining)."""
        return registers.SP in self.writes

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """Render the instruction in assembly syntax."""
        spec = info(self.opcode)
        parts: list[str] = []
        for code in spec.operands:
            if code in ("rd", "fd", "rd!", "fd!"):
                parts.append(registers.reg_name(self.rd))  # type: ignore[arg-type]
            elif code in ("rs", "fs"):
                parts.append(registers.reg_name(self.rs))  # type: ignore[arg-type]
            elif code in ("rt", "ft"):
                parts.append(registers.reg_name(self.rt))  # type: ignore[arg-type]
            elif code == "mem":
                base = registers.reg_name(self.rs)  # type: ignore[arg-type]
                parts.append(f"{self.imm}({base})")
            elif code in ("imm", "fimm"):
                parts.append(repr(self.imm))
            elif code == "label":
                if self.label is not None:
                    parts.append(self.label)
                else:
                    parts.append(f"@{self.target}")
        operand_text = ", ".join(parts)
        return f"{self.opcode.value} {operand_text}".rstrip()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
