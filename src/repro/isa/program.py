"""The :class:`Program` object-file container.

A :class:`Program` is the unit that flows between the subsystems:

* produced by the assembler (:mod:`repro.asm`) — possibly from MiniC via
  :mod:`repro.lang`;
* executed and traced by the VM (:mod:`repro.vm`);
* statically analyzed (CFG, control dependence, loops) by
  :mod:`repro.analysis`;
* consumed, together with a trace, by the limit analyzer in
  :mod:`repro.core`.

Code addresses are instruction indices (one instruction per "word").  Data
memory is a separate word-addressed space whose initial image is carried in
:attr:`Program.data`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpKind

#: First data address handed out to globals; low addresses are kept free so
#: that accidental null-pointer dereferences are recognizable in tests.
GLOBALS_BASE = 0x1000

#: Default initial stack pointer (stack grows down, word addressed).
STACK_TOP = 1 << 22


class ProgramError(Exception):
    """Raised for malformed programs (bad targets, overlapping symbols...)."""


@dataclass(frozen=True)
class FunctionSymbol:
    """Half-open code range ``[start, end)`` of one procedure."""

    name: str
    start: int
    end: int

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


@dataclass(frozen=True)
class Program:
    """An assembled program: code, symbols, and the initial data image."""

    instructions: tuple[Instruction, ...]
    functions: tuple[FunctionSymbol, ...] = ()
    code_labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int | float] = field(default_factory=dict)
    data_labels: dict[str, int] = field(default_factory=dict)
    data_break: int = GLOBALS_BASE  # first data address past the globals
    entry: int = 0
    name: str = "a.out"
    # Switch dispatch tables: table base address -> possible code targets.
    # Lets the CFG builder give computed jumps their real successor sets
    # (the paper's tooling likewise decoded MIPS jump tables).
    jump_tables: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()
        starts = [f.start for f in self.functions]
        object.__setattr__(self, "_func_starts", starts)

    # -- validation -------------------------------------------------------

    def _validate(self) -> None:
        n = len(self.instructions)
        if not 0 <= self.entry < max(n, 1):
            raise ProgramError(f"entry point {self.entry} outside code [0, {n})")
        for pc, instr in enumerate(self.instructions):
            if instr.target is not None and not 0 <= instr.target < n:
                raise ProgramError(
                    f"instruction {pc} ({instr.render()}) targets {instr.target}, "
                    f"outside code [0, {n})"
                )
        prev_end = 0
        for func in sorted(self.functions, key=lambda f: f.start):
            if func.start < prev_end:
                raise ProgramError(f"function {func.name} overlaps a previous function")
            if not func.start < func.end <= n:
                raise ProgramError(
                    f"function {func.name} has bad range [{func.start}, {func.end})"
                )
            prev_end = func.end
        for label, pc in self.code_labels.items():
            if not 0 <= pc <= n:
                raise ProgramError(f"code label {label} -> {pc} outside code")
        for base, targets in self.jump_tables.items():
            for target in targets:
                if not 0 <= target < n:
                    raise ProgramError(
                        f"jump table at {base} targets {target}, outside code"
                    )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def function_at(self, pc: int) -> FunctionSymbol | None:
        """Return the function containing *pc*, or None for orphan code."""
        idx = bisect.bisect_right(self._func_starts, pc) - 1  # type: ignore[attr-defined]
        if idx < 0:
            return None
        func = self.functions[idx]
        return func if pc in func else None

    def call_sites(self) -> list[tuple[int, int]]:
        """All direct call sites, as ``(call pc, callee entry pc)`` pairs.

        Indirect calls (``jalr``) have no static target and are not listed;
        see :attr:`has_indirect_calls`.
        """
        sites: list[tuple[int, int]] = []
        for pc, instr in enumerate(self.instructions):
            if instr.kind is OpKind.CALL and instr.target is not None:
                sites.append((pc, instr.target))
        return sites

    @property
    def has_indirect_calls(self) -> bool:
        """True if any instruction is an indirect call (``jalr``)."""
        return any(i.kind is OpKind.JALR for i in self.instructions)

    def function_named(self, name: str) -> FunctionSymbol:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def label_for(self, pc: int) -> str | None:
        """Return some label placed exactly at *pc*, if any."""
        for label, at in self.code_labels.items():
            if at == pc:
                return label
        return None

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """Disassemble the whole program, one instruction per line."""
        label_at: dict[int, list[str]] = {}
        for label, pc in sorted(self.code_labels.items()):
            label_at.setdefault(pc, []).append(label)
        lines: list[str] = []
        for pc, instr in enumerate(self.instructions):
            for label in label_at.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"    {pc:6d}  {instr.render()}")
        return "\n".join(lines)
