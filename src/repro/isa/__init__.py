"""A MIPS-R3000-like instruction set architecture.

This package defines the machine language shared by the assembler, the MiniC
compiler, the tracing VM, and the static analyses.  See
:mod:`repro.isa.opcodes` for the opcode inventory and
:mod:`repro.isa.registers` for the register conventions.
"""

from repro.isa import registers
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONICS, OPCODE_INFO, Opcode, OpcodeInfo, OpKind, info
from repro.isa.program import (
    GLOBALS_BASE,
    STACK_TOP,
    FunctionSymbol,
    Program,
    ProgramError,
)

__all__ = [
    "GLOBALS_BASE",
    "STACK_TOP",
    "FunctionSymbol",
    "Instruction",
    "MNEMONICS",
    "OPCODE_INFO",
    "OpKind",
    "Opcode",
    "OpcodeInfo",
    "Program",
    "ProgramError",
    "info",
    "registers",
]
