"""Opcode definitions and static metadata for the repro ISA.

Every opcode carries an :class:`OpcodeInfo` record describing its operand
signature, so the assembler, the VM, and the dependence analyzer never have
to special-case individual mnemonics: the operand signature says which fields
are read, which are written, and whether the instruction touches memory or
transfers control.

Operand signature codes
-----------------------

========  =======================================================
code      meaning
========  =======================================================
``rd``    integer destination register (written)
``rd!``   integer destination register (read **and** written —
          guarded moves retain the old value when the guard fails)
``fd!``   FP destination register (read and written)
``rs``    first integer source register (read)
``rt``    second integer source register (read)
``fd``    floating-point destination register (written)
``fs``    first floating-point source register (read)
``ft``    second floating-point source register (read)
``imm``   integer immediate
``fimm``  floating-point immediate
``mem``   memory operand ``imm(base)`` — reads the integer base
          register; the effective address is ``base + imm``
``label`` code label (branch/jump/call target)
========  =======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    """Coarse classification of an opcode.

    The limit analyzer keys its control-flow constraints off this
    classification (conditional branches, computed jumps, calls/returns) and
    the inlining/unrolling filters use it to decide which trace records are
    dropped.
    """

    ALU = "alu"  # integer computational, moves, immediates
    FPU = "fpu"  # floating-point computational, converts, FP compares
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional branch
    JUMP = "jump"  # direct unconditional jump
    CALL = "call"  # direct call (jal)
    JR = "jr"  # jump-register: a return when the operand is $ra
    JALR = "jalr"  # indirect call
    NOP = "nop"
    HALT = "halt"
    IO = "io"  # debug output; executes like an ALU op with no result


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    mnemonic: str
    kind: OpKind
    operands: tuple[str, ...]

    @property
    def has_imm(self) -> bool:
        return "imm" in self.operands or "fimm" in self.operands or "mem" in self.operands

    @property
    def has_label(self) -> bool:
        return "label" in self.operands

    @property
    def is_mem(self) -> bool:
        return "mem" in self.operands

    @property
    def is_control(self) -> bool:
        """True if the opcode may transfer control."""
        return self.kind in (
            OpKind.BRANCH, OpKind.JUMP, OpKind.CALL, OpKind.JR, OpKind.JALR, OpKind.HALT,
        )


class Opcode(enum.Enum):
    """All machine opcodes.  Values are the assembly mnemonics."""

    # -- integer three-register ALU -------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"  # truncating signed division (traps-free; x/0 -> 0)
    REM = "rem"  # remainder with the sign of the dividend (x%0 -> x)
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    SGT = "sgt"
    SGE = "sge"
    # -- integer register-immediate ALU ---------------------------------
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLEI = "slei"
    SGTI = "sgti"
    SGEI = "sgei"
    SEQI = "seqi"
    SNEI = "snei"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    # -- constants and moves ---------------------------------------------
    LI = "li"
    MOV = "mov"
    # -- guarded (conditional) moves: MIPS-IV style, used by if-conversion.
    # The destination is read *and* written: when the guard fails the old
    # value is retained, so dependence analysis sees a read of rd.
    MOVZ = "movz"  # rd = rs if rt == 0
    MOVN = "movn"  # rd = rs if rt != 0
    FMOVZ = "fmovz"  # fd = fs if rt == 0
    FMOVN = "fmovn"  # fd = fs if rt != 0
    # -- memory -----------------------------------------------------------
    LW = "lw"
    SW = "sw"
    FLW = "flw"
    FSW = "fsw"
    # -- floating point ----------------------------------------------------
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FABS = "fabs"
    FSQRT = "fsqrt"
    FMOV = "fmov"
    FLI = "fli"
    CVTIF = "cvtif"  # int register -> FP register
    CVTFI = "cvtfi"  # FP register -> int register (truncate toward zero)
    FEQ = "feq"
    FLT = "flt"
    FLE = "fle"
    # -- control transfer ---------------------------------------------------
    BEQ = "beq"
    BNE = "bne"
    BLEZ = "blez"
    BGTZ = "bgtz"
    BLTZ = "bltz"
    BGEZ = "bgez"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"
    # -- miscellaneous --------------------------------------------------------
    NOP = "nop"
    HALT = "halt"
    PRINT = "print"  # debug: print integer register
    FPRINT = "fprint"  # debug: print FP register
    PUTC = "putc"  # debug: print character code in integer register


def _info(mnemonic: str, kind: OpKind, *operands: str) -> OpcodeInfo:
    return OpcodeInfo(mnemonic, kind, operands)


_R3 = ("rd", "rs", "rt")
_R2I = ("rd", "rs", "imm")

OPCODE_INFO: dict[Opcode, OpcodeInfo] = {
    Opcode.ADD: _info("add", OpKind.ALU, *_R3),
    Opcode.SUB: _info("sub", OpKind.ALU, *_R3),
    Opcode.MUL: _info("mul", OpKind.ALU, *_R3),
    Opcode.DIV: _info("div", OpKind.ALU, *_R3),
    Opcode.REM: _info("rem", OpKind.ALU, *_R3),
    Opcode.AND: _info("and", OpKind.ALU, *_R3),
    Opcode.OR: _info("or", OpKind.ALU, *_R3),
    Opcode.XOR: _info("xor", OpKind.ALU, *_R3),
    Opcode.NOR: _info("nor", OpKind.ALU, *_R3),
    Opcode.SLL: _info("sll", OpKind.ALU, *_R3),
    Opcode.SRL: _info("srl", OpKind.ALU, *_R3),
    Opcode.SRA: _info("sra", OpKind.ALU, *_R3),
    Opcode.SLT: _info("slt", OpKind.ALU, *_R3),
    Opcode.SLE: _info("sle", OpKind.ALU, *_R3),
    Opcode.SEQ: _info("seq", OpKind.ALU, *_R3),
    Opcode.SNE: _info("sne", OpKind.ALU, *_R3),
    Opcode.SGT: _info("sgt", OpKind.ALU, *_R3),
    Opcode.SGE: _info("sge", OpKind.ALU, *_R3),
    Opcode.ADDI: _info("addi", OpKind.ALU, *_R2I),
    Opcode.ANDI: _info("andi", OpKind.ALU, *_R2I),
    Opcode.ORI: _info("ori", OpKind.ALU, *_R2I),
    Opcode.XORI: _info("xori", OpKind.ALU, *_R2I),
    Opcode.SLTI: _info("slti", OpKind.ALU, *_R2I),
    Opcode.SLEI: _info("slei", OpKind.ALU, *_R2I),
    Opcode.SGTI: _info("sgti", OpKind.ALU, *_R2I),
    Opcode.SGEI: _info("sgei", OpKind.ALU, *_R2I),
    Opcode.SEQI: _info("seqi", OpKind.ALU, *_R2I),
    Opcode.SNEI: _info("snei", OpKind.ALU, *_R2I),
    Opcode.SLLI: _info("slli", OpKind.ALU, *_R2I),
    Opcode.SRLI: _info("srli", OpKind.ALU, *_R2I),
    Opcode.SRAI: _info("srai", OpKind.ALU, *_R2I),
    Opcode.LI: _info("li", OpKind.ALU, "rd", "imm"),
    Opcode.MOV: _info("mov", OpKind.ALU, "rd", "rs"),
    Opcode.MOVZ: _info("movz", OpKind.ALU, "rd!", "rs", "rt"),
    Opcode.MOVN: _info("movn", OpKind.ALU, "rd!", "rs", "rt"),
    Opcode.FMOVZ: _info("fmovz", OpKind.FPU, "fd!", "fs", "rt"),
    Opcode.FMOVN: _info("fmovn", OpKind.FPU, "fd!", "fs", "rt"),
    Opcode.LW: _info("lw", OpKind.LOAD, "rd", "mem"),
    Opcode.SW: _info("sw", OpKind.STORE, "rt", "mem"),
    Opcode.FLW: _info("flw", OpKind.LOAD, "fd", "mem"),
    Opcode.FSW: _info("fsw", OpKind.STORE, "ft", "mem"),
    Opcode.FADD: _info("fadd", OpKind.FPU, "fd", "fs", "ft"),
    Opcode.FSUB: _info("fsub", OpKind.FPU, "fd", "fs", "ft"),
    Opcode.FMUL: _info("fmul", OpKind.FPU, "fd", "fs", "ft"),
    Opcode.FDIV: _info("fdiv", OpKind.FPU, "fd", "fs", "ft"),
    Opcode.FNEG: _info("fneg", OpKind.FPU, "fd", "fs"),
    Opcode.FABS: _info("fabs", OpKind.FPU, "fd", "fs"),
    Opcode.FSQRT: _info("fsqrt", OpKind.FPU, "fd", "fs"),
    Opcode.FMOV: _info("fmov", OpKind.FPU, "fd", "fs"),
    Opcode.FLI: _info("fli", OpKind.FPU, "fd", "fimm"),
    Opcode.CVTIF: _info("cvtif", OpKind.FPU, "fd", "rs"),
    Opcode.CVTFI: _info("cvtfi", OpKind.FPU, "rd", "fs"),
    Opcode.FEQ: _info("feq", OpKind.FPU, "rd", "fs", "ft"),
    Opcode.FLT: _info("flt", OpKind.FPU, "rd", "fs", "ft"),
    Opcode.FLE: _info("fle", OpKind.FPU, "rd", "fs", "ft"),
    Opcode.BEQ: _info("beq", OpKind.BRANCH, "rs", "rt", "label"),
    Opcode.BNE: _info("bne", OpKind.BRANCH, "rs", "rt", "label"),
    Opcode.BLEZ: _info("blez", OpKind.BRANCH, "rs", "label"),
    Opcode.BGTZ: _info("bgtz", OpKind.BRANCH, "rs", "label"),
    Opcode.BLTZ: _info("bltz", OpKind.BRANCH, "rs", "label"),
    Opcode.BGEZ: _info("bgez", OpKind.BRANCH, "rs", "label"),
    Opcode.J: _info("j", OpKind.JUMP, "label"),
    Opcode.JAL: _info("jal", OpKind.CALL, "label"),
    Opcode.JR: _info("jr", OpKind.JR, "rs"),
    Opcode.JALR: _info("jalr", OpKind.JALR, "rs"),
    Opcode.NOP: _info("nop", OpKind.NOP),
    Opcode.HALT: _info("halt", OpKind.HALT),
    Opcode.PRINT: _info("print", OpKind.IO, "rs"),
    Opcode.FPRINT: _info("fprint", OpKind.IO, "fs"),
    Opcode.PUTC: _info("putc", OpKind.IO, "rs"),
}

#: Mnemonic text -> opcode, for the assembler.
MNEMONICS: dict[str, Opcode] = {op.value: op for op in Opcode}


def info(opcode: Opcode) -> OpcodeInfo:
    """Return the :class:`OpcodeInfo` for *opcode*."""
    return OPCODE_INFO[opcode]


def _check_table_complete() -> None:
    missing = [op for op in Opcode if op not in OPCODE_INFO]
    if missing:  # pragma: no cover - guarded by import-time check
        raise AssertionError(f"OPCODE_INFO missing entries: {missing}")


_check_table_complete()
