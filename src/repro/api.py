"""High-level convenience API tying the subsystems together.

These helpers cover the common end-to-end paths:

* MiniC source → :class:`~repro.isa.Program` (:func:`compile_minic`);
* program → dynamic trace (:func:`trace_program`);
* program/trace → limit-study results (:func:`analyze_program`);
* one-call versions starting from assembly (:func:`analyze_source`) or
  MiniC (:func:`compile_and_analyze`).
"""

from __future__ import annotations

from typing import Sequence

from repro.asm import assemble
from repro.core import ALL_MODELS, AnalysisResult, LimitAnalyzer, MachineModel
from repro.isa import Program
from repro.prediction import BranchPredictor
from repro.vm import VM, RunResult


def compile_minic(source: str, name: str = "a.out") -> Program:
    """Compile MiniC *source* to a :class:`~repro.isa.Program`."""
    from repro.lang import compile_source  # deferred: keep leaf imports light

    return compile_source(source, name=name)


def trace_program(program: Program, max_steps: int = 1_000_000) -> RunResult:
    """Execute *program* on a fresh VM and return the traced run."""
    return VM(program).run(max_steps=max_steps)


def analyze_program(
    program: Program,
    max_steps: int = 1_000_000,
    models: Sequence[MachineModel] = ALL_MODELS,
    predictor: BranchPredictor | None = None,
    perfect_inlining: bool = True,
    perfect_unrolling: bool = True,
    collect_misprediction_stats: bool = False,
) -> AnalysisResult:
    """Trace *program* and compute its parallelism limits.

    Uses the paper's defaults: perfect inlining and unrolling on, profile
    predictor trained on the analyzed trace.
    """
    run = trace_program(program, max_steps=max_steps)
    analyzer = LimitAnalyzer(program)
    return analyzer.analyze(
        run.trace,
        models=models,
        predictor=predictor,
        perfect_inlining=perfect_inlining,
        perfect_unrolling=perfect_unrolling,
        collect_misprediction_stats=collect_misprediction_stats,
    )


def analyze_source(asm_source: str, name: str = "a.out", **kwargs) -> AnalysisResult:
    """Assemble, trace, and analyze assembly text (kwargs as
    :func:`analyze_program`)."""
    return analyze_program(assemble(asm_source, name=name), **kwargs)


def compile_and_analyze(minic_source: str, name: str = "a.out", **kwargs) -> AnalysisResult:
    """Compile MiniC, trace, and analyze (kwargs as :func:`analyze_program`)."""
    return analyze_program(compile_minic(minic_source, name=name), **kwargs)
