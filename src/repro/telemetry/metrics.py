"""Process-wide counters, gauges, and histograms.

One :data:`METRICS` registry per process.  Metrics are created (or
fetched — creation is idempotent) by name::

    METRICS.counter("repro_jobs_cache_hits_total", "...", ("stage",)).inc(stage="trace")
    METRICS.gauge("repro_analyzer_instructions_per_second", "...", ("program", "engine"))

and exported in two formats: a JSON document (``metrics.json``) for the
``repro-stats`` CLI, and the Prometheus text exposition format
(``metrics.prom``) for scrape-style consumers.  Every update is a couple
of dict operations, so hot code samples values at stage or segment
boundaries and hands them over — never per instruction.

The standard pipeline metrics are registered eagerly at import (see
:data:`STANDARD_METRICS`), so both export files always contain the full
registry of names even for stages that did not run.
"""

from __future__ import annotations

from pathlib import Path
import json

#: Default histogram buckets (seconds-flavored, Prometheus-style).
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, float):
        # The Prometheus exposition format spells non-finite values
        # +Inf / -Inf / NaN; Python's repr ("inf", "nan") is rejected by
        # conforming parsers.
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _label_key(labelnames: tuple[str, ...], labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(labelnames: tuple[str, ...], key: tuple, extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, key)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Metric:
    """Base: a named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._samples: dict[tuple, float] = {}

    def samples(self) -> list[tuple[dict, float]]:
        """``(labels, value)`` pairs in deterministic (sorted-key) order."""
        return [
            (dict(zip(self.labelnames, key)), value)
            for key, value in sorted(self._samples.items())
        ]

    def clear(self) -> None:
        self._samples.clear()

    # -- exports -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": [
                {"labels": labels, "value": value}
                for labels, value in self.samples()
            ],
        }

    def render_prometheus(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, value in sorted(self._samples.items()):
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return "\n".join(lines)


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._samples.get(_label_key(self.labelnames, labels), 0)


class Gauge(Metric):
    """A point-in-time sampled value."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._samples[_label_key(self.labelnames, labels)] = value

    def set_max(self, value: float, **labels: object) -> None:
        """Keep the largest value ever observed (peak tracking)."""
        key = _label_key(self.labelnames, labels)
        if value > self._samples.get(key, float("-inf")):
            self._samples[key] = value

    def value(self, **labels: object) -> float:
        return self._samples.get(_label_key(self.labelnames, labels), 0)


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        # per label key: [bucket counts..., +Inf count, sum]
        self._hist: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(self.labelnames, labels)
        cells = self._hist.get(key)
        if cells is None:
            cells = [0.0] * (len(self.buckets) + 2)
            self._hist[key] = cells
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cells[i] += 1
        cells[-2] += 1  # +Inf
        cells[-1] += value

    def clear(self) -> None:
        self._hist.clear()

    def samples(self) -> list[tuple[dict, float]]:
        """``(labels, count)`` pairs — the observation counts per series."""
        return [
            (dict(zip(self.labelnames, key)), cells[-2])
            for key, cells in sorted(self._hist.items())
        ]

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": {
                        str(bound): cells[i]
                        for i, bound in enumerate(self.buckets)
                    },
                    "count": cells[-2],
                    "sum": cells[-1],
                }
                for key, cells in sorted(self._hist.items())
            ],
        }

    def render_prometheus(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, cells in sorted(self._hist.items()):
            for i, bound in enumerate(self.buckets):
                labels = _render_labels(
                    self.labelnames, key, f'le="{_format_value(float(bound))}"'
                )
                lines.append(
                    f"{self.name}_bucket{labels} {_format_value(cells[i])}"
                )
            inf_labels = _render_labels(self.labelnames, key, 'le="+Inf"')
            lines.append(
                f"{self.name}_bucket{inf_labels} {_format_value(cells[-2])}"
            )
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(cells[-1])}")
            lines.append(f"{self.name}_count{plain} {_format_value(cells[-2])}")
        return "\n".join(lines)


class MetricsRegistry:
    """All metrics of one process, by name."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Clear every sample, keeping the registered metric families."""
        for metric in self._metrics.values():
            metric.clear()

    # -- exports -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "metrics": [
                self._metrics[name].to_json() for name in sorted(self._metrics)
            ]
        }

    def render_prometheus(self) -> str:
        blocks = [
            self._metrics[name].render_prometheus()
            for name in sorted(self._metrics)
        ]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def write(self, directory: str | Path) -> tuple[Path, Path]:
        """Write ``metrics.json`` and ``metrics.prom`` under *directory*."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / "metrics.json"
        prom_path = directory / "metrics.prom"
        json_path.write_text(
            json.dumps(self.to_json(), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        prom_path.write_text(self.render_prometheus(), encoding="utf-8")
        return json_path, prom_path


METRICS = MetricsRegistry()

#: The standard pipeline metrics — the registry of names documented in
#: ``docs/telemetry.md``.  ``(kind, name, help, labelnames)``.
STANDARD_METRICS: tuple[tuple[str, str, str, tuple[str, ...]], ...] = (
    (
        "gauge",
        "repro_vm_instructions_per_second",
        "Interpreter throughput of the most recent VM.run, per program",
        ("program",),
    ),
    (
        "gauge",
        "repro_analyzer_instructions_per_second",
        "Trace records swept per second by the most recent analyze call",
        ("program", "engine"),
    ),
    (
        "gauge",
        "repro_analyzer_cd_cache_hit_ratio",
        "Fused-kernel control-dependence winner-cache hit ratio (0..1)",
        ("program",),
    ),
    (
        "gauge",
        "repro_analyzer_value_state_entries",
        "Entries in an analyzer value-state map after a sweep",
        ("program", "state"),
    ),
    (
        "gauge",
        "repro_analyzer_flow_ledger_peak",
        "Peak live entries in the per-cycle branch-retirement ledger",
        ("program", "model", "flows"),
    ),
    (
        "counter",
        "repro_jobs_cache_hits_total",
        "Farm jobs satisfied from the artifact cache, per stage",
        ("stage",),
    ),
    (
        "counter",
        "repro_jobs_cache_misses_total",
        "Farm jobs that had to execute, per stage",
        ("stage",),
    ),
    (
        "counter",
        "repro_jobs_stage_seconds_total",
        "CPU-ish seconds spent executing farm jobs, per stage",
        ("stage",),
    ),
    (
        "gauge",
        "repro_jobs_queue_depth_peak",
        "Peak number of farm jobs pending or running at once",
        (),
    ),
    (
        "counter",
        "repro_jobs_retries_total",
        "Farm job attempts that failed and were requeued, per stage",
        ("stage",),
    ),
    (
        "counter",
        "repro_jobs_timeouts_total",
        "Farm job attempts that exceeded their wall-clock budget, per stage",
        ("stage",),
    ),
    (
        "counter",
        "repro_jobs_dead_total",
        "Farm jobs quarantined after exhausting their retry budget, per stage",
        ("stage",),
    ),
    (
        "counter",
        "repro_jobs_corrupt_artifacts_total",
        "Cache artifacts that failed integrity verification and were "
        "quarantined, per artifact kind",
        ("kind",),
    ),
    (
        "counter",
        "repro_trace_bytes_written_total",
        "Uncompressed RTRC payload bytes written by save_trace",
        (),
    ),
    (
        "counter",
        "repro_trace_bytes_read_total",
        "Uncompressed RTRC payload bytes read by load_trace",
        (),
    ),
    (
        "counter",
        "repro_profile_branches_total",
        "Dynamic conditional branches folded into branch profiles",
        ("program",),
    ),
    (
        "histogram",
        "repro_compile_seconds",
        "Wall seconds per MiniC compile (source to Program)",
        (),
    ),
    (
        "counter",
        "repro_static_analysis_seconds",
        "Wall seconds spent in whole-program static analysis, per program",
        ("program",),
    ),
    (
        "counter",
        "repro_serve_requests_total",
        "HTTP requests handled by repro-serve, per method/route/status",
        ("method", "route", "status"),
    ),
    (
        "histogram",
        "repro_serve_request_seconds",
        "Wall seconds spent handling one repro-serve HTTP request, per route",
        ("route",),
    ),
    (
        "counter",
        "repro_serve_jobs_total",
        "repro-serve job submissions, per outcome (accepted, coalesced, "
        "rejected, completed, failed)",
        ("outcome",),
    ),
    (
        "gauge",
        "repro_serve_queue_depth",
        "Submissions waiting in the repro-serve fair queue (sampled)",
        (),
    ),
    (
        "counter",
        "repro_serve_backpressure_total",
        "Submissions rejected with 429 because the repro-serve queue was full",
        (),
    ),
    (
        "gauge",
        "repro_serve_draining",
        "1 while repro-serve is draining for graceful shutdown, else 0",
        (),
    ),
    (
        "counter",
        "repro_serve_tenant_submissions_total",
        "Job submissions received by repro-serve, per tenant",
        ("tenant",),
    ),
    (
        "counter",
        "repro_vm_blocks_compiled_total",
        "Basic blocks compiled into specialized VM dispatch handlers, "
        "per program",
        ("program",),
    ),
    (
        "counter",
        "repro_vm_legacy_tail_total",
        "FastVM runs that handed off to the legacy interpreter tail, "
        "per program",
        ("program",),
    ),
    (
        "counter",
        "repro_trace_chunks_written_total",
        "RTRC v2 frames written by TraceWriter",
        (),
    ),
    (
        "counter",
        "repro_trace_chunks_read_total",
        "RTRC v2 frames read by TraceReader",
        (),
    ),
    (
        "counter",
        "repro_remote_jobs_shipped_total",
        "Farm jobs shipped to remote repro-worker daemons, per worker",
        ("worker",),
    ),
    (
        "counter",
        "repro_remote_jobs_stolen_total",
        "Farm jobs stolen from a busy home worker by an idle one, per worker",
        ("worker",),
    ),
    (
        "counter",
        "repro_remote_bytes_pulled_total",
        "Input artifact bytes served to remote workers, per artifact kind",
        ("kind",),
    ),
    (
        "counter",
        "repro_remote_bytes_pushed_total",
        "Produced artifact bytes received from remote workers, per kind",
        ("kind",),
    ),
    (
        "counter",
        "repro_remote_worker_losses_total",
        "Remote worker connections condemned mid-run, per worker",
        ("worker",),
    ),
)


def _register_standard(registry: MetricsRegistry) -> None:
    for kind, name, help_text, labelnames in STANDARD_METRICS:
        getattr(registry, kind)(name, help_text, labelnames)


_register_standard(METRICS)
