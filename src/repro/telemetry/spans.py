"""Hierarchical spans: context-manager and decorator timing.

A span measures one named region of work with a monotonic clock and
emits a JSON record when it closes::

    with telemetry.span("runner.analyze", benchmark="gcc") as sp:
        result = ...
        sp.set(counted=result.counted_instructions)

Records carry ``name``, ``id``, ``parent`` (the enclosing span's id, or
None at the root), ``pid``, ``ts`` (wall-clock start, seconds since the
epoch), ``dur`` (monotonic duration, seconds), and an ``attrs`` object of
JSON-serializable attributes.  Nesting uses a per-thread stack: the batch
pipeline is single-threaded within a process (farm workers each get their
own process and sink file), while ``repro-serve`` records request spans
on its event-loop thread concurrently with farm spans from the executor
thread that retires job graphs — separate stacks keep both consistent.

When telemetry is disabled, :func:`span` returns a shared no-op object
without allocating, so instrumentation sites cost one call and a bool
test.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from typing import Any, Callable

from repro.telemetry import state

_local = threading.local()
_ids = itertools.count(1)


def _stack() -> list["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class _NullSpan:
    """The disabled span: enters, exits, and records nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Span:
    """One live timed region; emitted to the sink when it exits."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start", "_ts")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = f"{os.getpid():x}-{next(_ids):x}"
        self.parent_id: str | None = None
        self._start = 0.0
        self._ts = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        state.STATE.sink.emit(
            {
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "pid": os.getpid(),
                "ts": self._ts,
                "dur": duration,
                "attrs": self.attrs,
            }
        )

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    @property
    def elapsed(self) -> float:
        """Monotonic seconds since the span was entered."""
        return time.perf_counter() - self._start


def span(name: str, **attrs: Any):
    """A context manager timing one named region (no-op when disabled)."""
    if not state.STATE.sink.enabled:
        return NULL_SPAN
    return Span(name, attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span`; defaults to the function's name."""

    def decorate(func: Callable) -> Callable:
        span_name = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not state.STATE.sink.enabled:
                return func(*args, **kwargs)
            with Span(span_name, dict(attrs)):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def record_span(name: str, duration: float, **attrs: Any) -> None:
    """Emit a completed span with an externally measured duration.

    For hot regions that time themselves with a plain ``perf_counter``
    pair instead of entering a context manager (e.g. the VM interpreter
    loop).  The record is parented to the innermost open span.
    """
    if not state.STATE.sink.enabled:
        return
    stack = _stack()
    state.STATE.sink.emit(
        {
            "name": name,
            "id": f"{os.getpid():x}-{next(_ids):x}",
            "parent": stack[-1].span_id if stack else None,
            "pid": os.getpid(),
            "ts": time.time() - duration,
            "dur": duration,
            "attrs": attrs,
        }
    )


def current_span() -> Span | _NullSpan:
    """The innermost open span of this thread (the null span when none)."""
    stack = _stack()
    return stack[-1] if stack else NULL_SPAN


def reset() -> None:
    """Drop this thread's open spans (test isolation after an abort)."""
    _stack().clear()
