"""Hierarchical spans: context-manager and decorator timing.

A span measures one named region of work with a monotonic clock and
emits a JSON record when it closes::

    with telemetry.span("runner.analyze", benchmark="gcc") as sp:
        result = ...
        sp.set(counted=result.counted_instructions)

Records carry ``name``, ``id``, ``parent`` (the enclosing span's id, or
None at the root), ``pid``, ``ts`` (wall-clock start, seconds since the
epoch), ``dur`` (monotonic duration, seconds), and an ``attrs`` object of
JSON-serializable attributes.  Nesting uses a per-process stack — the
pipeline is single-threaded within a process, and farm workers each get
their own process and sink file.

When telemetry is disabled, :func:`span` returns a shared no-op object
without allocating, so instrumentation sites cost one call and a bool
test.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Callable

from repro.telemetry import state

_stack: list["Span"] = []
_next_id = 0


class _NullSpan:
    """The disabled span: enters, exits, and records nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Span:
    """One live timed region; emitted to the sink when it exits."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start", "_ts")

    def __init__(self, name: str, attrs: dict[str, Any]):
        global _next_id
        _next_id += 1
        self.name = name
        self.attrs = attrs
        self.span_id = f"{os.getpid():x}-{_next_id:x}"
        self.parent_id: str | None = None
        self._start = 0.0
        self._ts = 0.0

    def __enter__(self) -> "Span":
        if _stack:
            self.parent_id = _stack[-1].span_id
        _stack.append(self)
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if _stack and _stack[-1] is self:
            _stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        state.STATE.sink.emit(
            {
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "pid": os.getpid(),
                "ts": self._ts,
                "dur": duration,
                "attrs": self.attrs,
            }
        )

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    @property
    def elapsed(self) -> float:
        """Monotonic seconds since the span was entered."""
        return time.perf_counter() - self._start


def span(name: str, **attrs: Any):
    """A context manager timing one named region (no-op when disabled)."""
    if not state.STATE.sink.enabled:
        return NULL_SPAN
    return Span(name, attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span`; defaults to the function's name."""

    def decorate(func: Callable) -> Callable:
        span_name = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not state.STATE.sink.enabled:
                return func(*args, **kwargs)
            with Span(span_name, dict(attrs)):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def record_span(name: str, duration: float, **attrs: Any) -> None:
    """Emit a completed span with an externally measured duration.

    For hot regions that time themselves with a plain ``perf_counter``
    pair instead of entering a context manager (e.g. the VM interpreter
    loop).  The record is parented to the innermost open span.
    """
    if not state.STATE.sink.enabled:
        return
    global _next_id
    _next_id += 1
    state.STATE.sink.emit(
        {
            "name": name,
            "id": f"{os.getpid():x}-{_next_id:x}",
            "parent": _stack[-1].span_id if _stack else None,
            "pid": os.getpid(),
            "ts": time.time() - duration,
            "dur": duration,
            "attrs": attrs,
        }
    )


def current_span() -> Span | _NullSpan:
    """The innermost open span (the null span when none is open)."""
    return _stack[-1] if _stack else NULL_SPAN


def reset() -> None:
    """Drop any open spans (test isolation after an aborted run)."""
    _stack.clear()
