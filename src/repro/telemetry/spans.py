"""Hierarchical spans: context-manager and decorator timing.

A span measures one named region of work with a monotonic clock and
emits a JSON record when it closes::

    with telemetry.span("runner.analyze", benchmark="gcc") as sp:
        result = ...
        sp.set(counted=result.counted_instructions)

Records carry ``name``, ``id``, ``parent`` (the enclosing span's id, or
None at the root), ``trace`` (the distributed trace id the span belongs
to, or None), ``pid``, ``ts`` (wall-clock start, seconds since the
epoch), ``dur`` (monotonic duration, seconds), and an ``attrs`` object of
JSON-serializable attributes.  Nesting uses a per-thread stack: the batch
pipeline is single-threaded within a process (farm workers each get their
own process and sink file), while ``repro-serve`` records request spans
on its event-loop thread concurrently with farm spans from the executor
thread that retires job graphs — separate stacks keep both consistent.

A *root* span (empty stack) consults :mod:`repro.telemetry.context` for
an active :class:`~repro.telemetry.context.TraceContext`: when one is
set, the root span adopts its ``trace_id`` and parents to its remote
``parent_id``, which is how spans emitted in a pool worker process
stitch under the coordinator's span that dispatched the job.  Nested
spans inherit ``trace`` from the enclosing span.

When telemetry is disabled, :func:`span` returns a shared no-op object
without allocating, so instrumentation sites cost one call and a bool
test.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from typing import Any, Callable

from repro.telemetry import context, state

_local = threading.local()
_ids = itertools.count(1)


def mint_span_id() -> str:
    """A fresh span id (``<pid hex>-<counter hex>``).

    Exposed for callers that must know a span's id *before* the span
    record is emitted — e.g. ``repro-serve`` mints the request span's id
    up front so child work scheduled on other threads can parent to it,
    then emits the request span via :func:`record_span` at the end.
    """
    return f"{os.getpid():x}-{next(_ids):x}"


def _stack() -> list["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class _NullSpan:
    """The disabled span: enters, exits, and records nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass

    def link(self, trace_id: str | None, parent_id: str | None) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Span:
    """One live timed region; emitted to the sink when it exits."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "trace_id", "_start", "_ts"
    )

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = mint_span_id()
        self.parent_id: str | None = None
        self.trace_id: str | None = None
        self._start = 0.0
        self._ts = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.parent_id = stack[-1].span_id
            self.trace_id = stack[-1].trace_id
        else:
            ctx = context.current()
            if ctx is not None:
                self.parent_id = ctx.parent_id
                self.trace_id = ctx.trace_id
        stack.append(self)
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        state.STATE.sink.emit(
            {
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "trace": self.trace_id,
                "pid": os.getpid(),
                "ts": self._ts,
                "dur": duration,
                "attrs": self.attrs,
            }
        )

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def link(self, trace_id: str | None, parent_id: str | None) -> None:
        """Explicitly re-parent this span into a distributed trace.

        Overrides whatever linkage ``__enter__`` derived from the stack
        or the ambient context; spans nested *inside* this one inherit
        the new ``trace_id`` as usual.  Used by farm workers whose job
        payload carries a ``trace_ctx`` from the submitting process.
        """
        self.trace_id = trace_id
        self.parent_id = parent_id

    @property
    def elapsed(self) -> float:
        """Monotonic seconds since the span was entered."""
        return time.perf_counter() - self._start


def span(name: str, **attrs: Any):
    """A context manager timing one named region (no-op when disabled)."""
    if not state.STATE.sink.enabled:
        return NULL_SPAN
    return Span(name, attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span`; defaults to the function's name."""

    def decorate(func: Callable) -> Callable:
        span_name = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not state.STATE.sink.enabled:
                return func(*args, **kwargs)
            with Span(span_name, dict(attrs)):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def record_span(
    name: str,
    duration: float,
    *,
    span_id: str | None = None,
    parent_id: str | None = None,
    trace_id: str | None = None,
    **attrs: Any,
) -> None:
    """Emit a completed span with an externally measured duration.

    For hot regions that time themselves with a plain ``perf_counter``
    pair instead of entering a context manager (e.g. the VM interpreter
    loop).  By default the record is parented to the innermost open span
    (inheriting its trace), falling back to the ambient
    :class:`~repro.telemetry.context.TraceContext` when the stack is
    empty.  ``span_id``/``parent_id``/``trace_id`` override the linkage
    explicitly — ``repro-serve`` pre-mints the request span's id so work
    scheduled on other threads can parent to it before it is emitted.
    """
    if not state.STATE.sink.enabled:
        return
    if parent_id is None or trace_id is None:
        stack = _stack()
        if stack:
            parent_id = stack[-1].span_id if parent_id is None else parent_id
            trace_id = stack[-1].trace_id if trace_id is None else trace_id
        else:
            ctx = context.current()
            if ctx is not None:
                parent_id = ctx.parent_id if parent_id is None else parent_id
                trace_id = ctx.trace_id if trace_id is None else trace_id
    state.STATE.sink.emit(
        {
            "name": name,
            "id": span_id if span_id is not None else mint_span_id(),
            "parent": parent_id,
            "trace": trace_id,
            "pid": os.getpid(),
            "ts": time.time() - duration,
            "dur": duration,
            "attrs": attrs,
        }
    )


def current_span() -> Span | _NullSpan:
    """The innermost open span of this thread (the null span when none)."""
    stack = _stack()
    return stack[-1] if stack else NULL_SPAN


def reset() -> None:
    """Drop this thread's open spans (test isolation after an abort)."""
    _stack().clear()
